"""Project-wide, import-resolved call graph with hot-region propagation.

The PERF4xx rules need to know *where the engine spends its time* before
they can complain about an allocation: a comprehension in a report
formatter is fine, the same comprehension inside the link's refresh tick
is a per-tick allocation.  "Hot" is therefore a property of the call
graph, not of a single module:

1. **Seeds.**  A function or method whose ``def`` line (or the line
   directly above it) carries a ``# repro: hotpath`` pragma is a hot
   seed.  The pragma is a *contract*: the author promises the function
   runs on the per-event/per-lookup path, and in exchange every function
   it can reach inherits the hot-path rules (see ARCHITECTURE.md, "The
   hot-path contract").
2. **Edges.**  Calls are resolved statically, best-effort, never by
   executing code: plain names to module functions (through ``import``
   / ``from .. import`` aliases), ``self.method()`` / ``cls.method()``
   to the enclosing class, ``Class()`` to ``Class.__init__``, and
   ``module.func()`` through module aliases.
3. **Dynamic dispatch fallback.**  ``obj.method()`` with an unknown
   receiver falls back to *every* project class method of that name —
   hotness must over-approximate or a one-line indirection would hide a
   hot callee.  Ubiquitous container-method names (``get``, ``pop``,
   ``append``, ...) are excluded from the fallback, or every dict
   lookup in the tree would pull unrelated classes into the hot set.
4. **Propagation.**  Hotness is the transitive closure of the seeds
   over the edges; cycles are fine (the walk is a plain BFS with a
   visited set) and each hot function remembers the chain that heated
   it, so a finding can say *why* the region is hot.

Graphs are cached in-process keyed on every source file's
``(path, mtime, size)``: rule families and repeated ``lint_package``
calls (the test suite runs dozens) share one build per tree state.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

_HOTPATH_PRAGMA = re.compile(r"#\s*repro:\s*hotpath\b")

#: Method names too generic for the dynamic-dispatch fallback: they are
#: overwhelmingly builtin container/str operations, and linking every
#: ``d.get(...)`` to every project class that happens to define ``get``
#: would melt the hot set into "everything".
UBIQUITOUS_METHODS = frozenset(
    {
        "add", "append", "clear", "copy", "count", "discard", "extend",
        "get", "index", "insert", "items", "join", "keys", "pop",
        "popitem", "remove", "replace", "setdefault", "sort", "split",
        "start", "startswith", "endswith", "strip", "update", "values",
        "write", "read", "close", "encode", "decode", "format", "lower",
        "upper", "run",
    }
)


@dataclass
class ModuleInfo:
    """One parsed module, shared by every rule family."""

    path: str  # posix path relative to the package root
    module: str  # dotted module name, e.g. ``repro.net.link``
    source: str
    tree: ast.Module


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    qualname: str  # ``module:func`` or ``module:Class.method``
    path: str
    line: int
    node: ast.AST
    class_name: Optional[str] = None
    hot_seed: bool = False


@dataclass
class ClassInfo:
    """One class definition (for PERF405's ``__slots__`` check)."""

    qualname: str  # ``module:Class``
    name: str
    path: str
    line: int
    has_slots: bool
    is_exception: bool
    #: Decorator spelling like ``dataclass`` / ``dataclass(frozen=True)``.
    is_dataclass: bool = False


@dataclass
class CallGraph:
    """The resolved project call graph plus the propagated hot set."""

    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: caller qualname -> callee qualnames (deterministic order).
    edges: Dict[str, List[str]] = field(default_factory=dict)
    #: hot qualname -> human chain, e.g. ``seeded`` or ``via A <- B``.
    hot: Dict[str, str] = field(default_factory=dict)
    #: class simple name -> [class qualnames] (dispatch fallback index).
    methods_by_name: Dict[str, List[str]] = field(default_factory=dict)
    #: module -> local alias -> dotted module (``import x.y as z``).
    module_aliases: Dict[str, Dict[str, str]] = field(default_factory=dict)
    #: module -> local name -> (module, symbol) (``from m import s``).
    from_imports: Dict[str, Dict[str, Tuple[str, str]]] = field(
        default_factory=dict
    )
    #: module -> class simple name -> class qualname (locally defined).
    classes_by_module: Dict[str, Dict[str, str]] = field(default_factory=dict)

    def is_hot(self, qualname: str) -> bool:
        return qualname in self.hot

    def hot_functions(self) -> List[FunctionInfo]:
        # Hot names can include bare class qualnames (``Class()`` calls
        # on classes with no explicit ``__init__``) — only function
        # bodies are scannable.
        return [
            self.functions[name]
            for name in sorted(self.hot)
            if name in self.functions
        ]

    def resolve_class(
        self, module: str, func: ast.expr
    ) -> Optional[ClassInfo]:
        """The project class a call target names, if any.

        Handles local classes, ``from``-imported classes, and
        ``module.Class`` through import aliases.  Returns ``None`` for
        anything that is not (knowably) a project class.
        """
        local_classes = self.classes_by_module.get(module, {})
        from_imports = self.from_imports.get(module, {})
        aliases = self.module_aliases.get(module, {})

        def lookup(target_module: str, symbol: str) -> Optional[ClassInfo]:
            qualname = self.classes_by_module.get(target_module, {}).get(
                symbol
            )
            return self.classes.get(qualname) if qualname else None

        if isinstance(func, ast.Name):
            if func.id in local_classes:
                return self.classes.get(local_classes[func.id])
            if func.id in from_imports:
                return lookup(*from_imports[func.id])
            return None
        dotted = _dotted(func)
        if dotted is None or "." not in dotted:
            return None
        base, _, symbol = dotted.rpartition(".")
        head, _, rest = base.partition(".")
        if head in aliases:
            target_module = aliases[head] + (f".{rest}" if rest else "")
            return lookup(target_module, symbol)
        if head in from_imports and not rest:
            origin_module, origin_symbol = from_imports[head]
            return lookup(f"{origin_module}.{origin_symbol}", symbol)
        return lookup(base, symbol)


def parse_package(package_root: Path, package: str = "repro") -> List[ModuleInfo]:
    """Parse every module under ``package_root`` exactly once."""
    package_root = Path(package_root)
    modules: List[ModuleInfo] = []
    for path in sorted(package_root.rglob("*.py")):
        relative = path.relative_to(package_root).as_posix()
        dotted = relative[:-3].replace("/", ".")
        if dotted.endswith(".__init__"):
            dotted = dotted[: -len(".__init__")]
        module = package if dotted == "__init__" else f"{package}.{dotted}"
        source = path.read_text()
        modules.append(
            ModuleInfo(
                path=relative,
                module=module,
                source=source,
                tree=ast.parse(source, filename=relative),
            )
        )
    return modules


def _pragma_lines(source: str) -> Set[int]:
    """Line numbers carrying a ``# repro: hotpath`` pragma."""
    out: Set[int] = set()
    for number, text in enumerate(source.splitlines(), start=1):
        if _HOTPATH_PRAGMA.search(text):
            out.add(number)
    return out


def _dotted(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


class _ModuleCollector(ast.NodeVisitor):
    """First pass over one module: definitions, imports, pragma seeds."""

    def __init__(self, info: ModuleInfo, hot_lines: Set[int]):
        self.info = info
        self.hot_lines = hot_lines
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: local alias -> dotted module (``import repro.net.link as l``).
        self.module_aliases: Dict[str, str] = {}
        #: local name -> (module, symbol) (``from repro.net import link``).
        self.from_imports: Dict[str, Tuple[str, str]] = {}
        self._class_stack: List[str] = []

    def _is_hot_def(self, node: ast.AST) -> bool:
        line = getattr(node, "lineno", 0)
        return line in self.hot_lines or (line - 1) in self.hot_lines

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.module_aliases[alias.asname or alias.name.partition(".")[0]] = (
                alias.name if alias.asname else alias.name.partition(".")[0]
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None:
            return
        if node.level:
            # Relative import: anchor it at this module's package.
            parts = self.info.module.split(".")
            base = ".".join(parts[: len(parts) - node.level])
            module = f"{base}.{node.module}" if base else node.module
        else:
            module = node.module
        for alias in node.names:
            self.from_imports[alias.asname or alias.name] = (module, alias.name)

    def _visit_def(self, node) -> None:
        if self._class_stack:
            name = f"{self._class_stack[-1]}.{node.name}"
            class_name: Optional[str] = self._class_stack[-1]
        else:
            name = node.name
            class_name = None
        qualname = f"{self.info.module}:{name}"
        # First definition wins (redefinitions are vanishingly rare and
        # keeping the first matches source order everywhere else).
        if qualname not in self.functions:
            self.functions[qualname] = FunctionInfo(
                qualname=qualname,
                path=self.info.path,
                line=node.lineno,
                node=node,
                class_name=class_name,
                hot_seed=self._is_hot_def(node),
            )
        # Do not recurse: nested defs belong to their enclosing function's
        # region and are scanned as part of its body.

    visit_FunctionDef = _visit_def
    visit_AsyncFunctionDef = _visit_def

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._class_stack:
            return  # nested classes: out of scope
        has_slots = any(
            isinstance(stmt, ast.Assign)
            and any(
                isinstance(target, ast.Name) and target.id == "__slots__"
                for target in stmt.targets
            )
            for stmt in node.body
        )
        is_dataclass = False
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            name = _dotted(target) or ""
            if name.split(".")[-1] == "dataclass":
                is_dataclass = True
                if isinstance(decorator, ast.Call):
                    for keyword in decorator.keywords:
                        if (
                            keyword.arg == "slots"
                            and isinstance(keyword.value, ast.Constant)
                            and keyword.value.value is True
                        ):
                            has_slots = True
        base_names = [_dotted(base) or "" for base in node.bases]
        is_exception = any(
            name.endswith("Error") or name.endswith("Exception")
            or name.endswith("Warning")
            for name in base_names
        )
        qualname = f"{self.info.module}:{node.name}"
        self.classes[qualname] = ClassInfo(
            qualname=qualname,
            name=node.name,
            path=self.info.path,
            line=node.lineno,
            has_slots=has_slots,
            is_exception=is_exception,
            is_dataclass=is_dataclass,
        )
        self._class_stack.append(node.name)
        for stmt in node.body:
            self.visit(stmt)
        self._class_stack.pop()


def _collect_calls(node: ast.AST) -> List[ast.Call]:
    """Every call expression inside a function body, nested defs included.

    Nested functions and lambdas stay in their enclosing function's
    region: a closure scheduled from a hot function runs on the hot path.
    """
    return [n for n in ast.walk(node) if isinstance(n, ast.Call)]


def build_call_graph(
    modules: List[ModuleInfo], package: str = "repro"
) -> CallGraph:
    """Resolve definitions, edges and hotness over parsed modules."""
    graph = CallGraph()
    collectors: List[_ModuleCollector] = []
    for info in modules:
        collector = _ModuleCollector(info, _pragma_lines(info.source))
        collector.visit(info.tree)
        collectors.append(collector)
        graph.functions.update(collector.functions)
        graph.classes.update(collector.classes)
        graph.module_aliases[info.module] = collector.module_aliases
        graph.from_imports[info.module] = collector.from_imports
        graph.classes_by_module[info.module] = {
            cls.name: cls.qualname for cls in collector.classes.values()
        }

    #: simple function name -> qualnames, per module, for local calls.
    module_functions: Dict[str, Dict[str, str]] = {}
    module_classes: Dict[str, Dict[str, str]] = {}
    for info, collector in zip(modules, collectors):
        module_functions[info.module] = {
            fn.qualname.partition(":")[2]: fn.qualname
            for fn in collector.functions.values()
            if fn.class_name is None
        }
        module_classes[info.module] = {
            cls.name: cls.qualname for cls in collector.classes.values()
        }
    for name, info in graph.functions.items():
        if info.class_name is not None:
            method = name.rpartition(".")[2]
            # Dunders are excluded too: ``super().__init__`` would
            # otherwise dispatch to every constructor in the project.
            if method not in UBIQUITOUS_METHODS and not method.startswith(
                "__"
            ):
                graph.methods_by_name.setdefault(method, []).append(name)

    def resolve_symbol(module: str, symbol: str) -> Optional[str]:
        """A ``module.symbol`` reference to a function/class qualname."""
        functions = module_functions.get(module, {})
        if symbol in functions:
            return functions[symbol]
        classes = module_classes.get(module, {})
        if symbol in classes:
            qualname = classes[symbol]
            if graph.classes[qualname].is_exception:
                # Constructing an exception is the raise path — cold by
                # definition; do not let it heat the handler machinery.
                return None
            init = f"{qualname.partition(':')[0]}:{symbol}.__init__"
            return init if init in graph.functions else qualname
        return None

    for info, collector in zip(modules, collectors):
        local_functions = module_functions[info.module]
        local_classes = module_classes[info.module]
        for fn in collector.functions.values():
            callees: List[str] = []
            seen: Set[str] = set()

            def link(target: Optional[str]) -> None:
                if target is not None and target not in seen:
                    seen.add(target)
                    callees.append(target)

            for call in _collect_calls(fn.node):
                func = call.func
                if isinstance(func, ast.Name):
                    symbol = func.id
                    if symbol in collector.from_imports:
                        module, name = collector.from_imports[symbol]
                        link(resolve_symbol(module, name))
                    elif symbol in local_functions:
                        link(local_functions[symbol])
                    elif symbol in local_classes:
                        link(resolve_symbol(info.module, symbol))
                elif isinstance(func, ast.Attribute):
                    base = _dotted(func.value)
                    method = func.attr
                    if base in ("self", "cls") and fn.class_name is not None:
                        target = (
                            f"{info.module}:{fn.class_name}.{method}"
                        )
                        if target in graph.functions:
                            link(target)
                            continue
                    if base is not None:
                        # ``module.func()`` through an import alias, or
                        # ``pkg.mod.func()`` spelled in full.
                        head, _, rest = base.partition(".")
                        dotted_module = None
                        if head in collector.module_aliases:
                            dotted_module = collector.module_aliases[head]
                            if rest:
                                dotted_module += f".{rest}"
                        elif head in collector.from_imports and not rest:
                            module, name = collector.from_imports[head]
                            dotted_module = f"{module}.{name}"
                        elif base.startswith(package + "."):
                            dotted_module = base
                        if dotted_module is not None:
                            resolved = resolve_symbol(dotted_module, method)
                            if resolved is not None:
                                link(resolved)
                                continue
                        if base in ("self", "cls"):
                            continue
                    # Unknown receiver: dynamic dispatch fallback.
                    for target in graph.methods_by_name.get(method, ()):
                        link(target)
            graph.edges[fn.qualname] = callees

    # -- propagate hotness (BFS; cycles terminate via the visited set) ----
    frontier: List[str] = []
    for name in sorted(graph.functions):
        if graph.functions[name].hot_seed:
            graph.hot[name] = "seeded by # repro: hotpath"
            frontier.append(name)
    while frontier:
        next_frontier: List[str] = []
        for caller in frontier:
            for callee in graph.edges.get(caller, ()):
                if callee in graph.hot:
                    continue
                graph.hot[callee] = f"called from {_short(caller)}"
                next_frontier.append(callee)
        frontier = next_frontier
    return graph


def _short(qualname: str) -> str:
    """``repro.net.link:AccessLink._tick`` -> ``AccessLink._tick``."""
    return qualname.partition(":")[2]


# -- caching ----------------------------------------------------------------

_CacheKey = Tuple[Tuple[str, int, int], ...]
_GRAPH_CACHE: Dict[str, Tuple[_CacheKey, List[ModuleInfo], CallGraph]] = {}

#: Cache outcomes of the most recent :func:`cached_project` call, for
#: the runner's ``--stats`` line.
LAST_CACHE_HIT = False


def _tree_signature(package_root: Path) -> _CacheKey:
    entries: List[Tuple[str, int, int]] = []
    for path in sorted(package_root.rglob("*.py")):
        stat = path.stat()
        entries.append(
            (path.relative_to(package_root).as_posix(), stat.st_mtime_ns,
             stat.st_size)
        )
    return tuple(entries)


def cached_project(
    package_root: Path, package: str = "repro"
) -> Tuple[List[ModuleInfo], CallGraph]:
    """Parsed modules + call graph, rebuilt only when sources change."""
    global LAST_CACHE_HIT
    package_root = Path(package_root)
    key = str(package_root.resolve())
    signature = _tree_signature(package_root)
    cached = _GRAPH_CACHE.get(key)
    if cached is not None and cached[0] == signature:
        LAST_CACHE_HIT = True
        return cached[1], cached[2]
    LAST_CACHE_HIT = False
    modules = parse_package(package_root, package)
    graph = build_call_graph(modules, package)
    _GRAPH_CACHE[key] = (signature, modules, graph)
    return modules, graph

"""ReplayStore / RecordedResponse round-trip behaviour."""

import pickle

from repro.pages.resources import ResourceType
from repro.replay.recorder import record_snapshot
from repro.replay.store import RecordedResponse, ReplayStore


class TestRecordedResponse:
    def test_carries_resource_back_pointer(self, snapshot):
        store = record_snapshot(snapshot)
        for resource in snapshot.all_resources():
            recorded = store.lookup(resource.url)
            assert recorded is not None
            assert recorded.resource is resource
            assert recorded.url == resource.url
            assert recorded.size == resource.size

    def test_html_flag_matches_resource_type(self, snapshot):
        store = record_snapshot(snapshot)
        for resource in snapshot.all_resources():
            recorded = store.lookup(resource.url)
            assert recorded.is_html == (
                resource.spec.rtype is ResourceType.HTML
            )

    def test_defaults(self):
        response = RecordedResponse(
            url="x.com/a.js", domain="x.com", size=10, is_html=False
        )
        assert response.body == ""
        assert response.resource is None


class TestReplayStoreRoundTrip:
    def _store(self):
        store = ReplayStore(page="p")
        first = RecordedResponse(
            url="a.com/", domain="a.com", size=100, is_html=True, body="<p>"
        )
        second = RecordedResponse(
            url="a.com/x.js", domain="a.com", size=50, is_html=False
        )
        third = RecordedResponse(
            url="b.com/y.css", domain="b.com", size=25, is_html=False
        )
        store.add(first, rtt=0.03)
        store.add(second, rtt=0.99)  # same domain: must not overwrite
        store.add(third, rtt=0.05)
        return store

    def test_add_lookup_round_trip(self):
        store = self._store()
        assert store.urls() == ["a.com/", "a.com/x.js", "b.com/y.css"]
        assert store.lookup("a.com/").body == "<p>"
        assert store.lookup("a.com/x.js").size == 50
        assert store.lookup("missing") is None
        assert store.total_bytes() == 175

    def test_per_domain_rtt_first_wins(self):
        store = self._store()
        assert store.domains() == ["a.com", "b.com"]
        # The second a.com exchange carried rtt=0.99; setdefault keeps
        # the first observation.
        assert store.domain_rtts["a.com"] == 0.03
        assert store.domain_rtts["b.com"] == 0.05

    def test_re_adding_a_url_replaces_the_response(self):
        store = self._store()
        replacement = RecordedResponse(
            url="a.com/x.js", domain="a.com", size=75, is_html=False
        )
        store.add(replacement, rtt=0.01)
        assert store.lookup("a.com/x.js").size == 75
        assert store.total_bytes() == 200
        assert store.domain_rtts["a.com"] == 0.03

    def test_pickle_round_trip_preserves_back_pointers(self, snapshot):
        store = record_snapshot(snapshot)
        clone = pickle.loads(pickle.dumps(store))
        assert clone.page == store.page
        assert clone.urls() == store.urls()
        assert clone.domain_rtts == store.domain_rtts
        for url in store.urls():
            original = store.lookup(url)
            copied = clone.lookup(url)
            assert copied.size == original.size
            assert copied.is_html == original.is_html
            assert copied.body == original.body
            # The back-pointer survives and still matches its exchange.
            assert copied.resource is not None
            assert copied.resource.url == url

"""Content-addressed cache of materialised snapshots and recorded stores.

``PageBlueprint.materialize`` and ``record_snapshot`` are pure functions of
(blueprint, stamp): identical inputs always produce byte-identical
snapshots and stores.  Every figure bench and sweep re-derives the same
snapshots, so a session-wide cache keyed on a *content fingerprint* of the
blueprint plus the stamp lets all configurations — and all benchmarks in a
process — share one snapshot/store pair per (page, stamp).

The key is content-addressed rather than identity-based: two blueprint
objects with identical structure hit the same entry, and any change to any
spec field changes the fingerprint.  Cached ``(PageSnapshot, ReplayStore)``
pairs are plain dataclass trees, so they pickle cleanly to worker
processes (the parallel sweep engine ships prebuilt stores instead of
having each worker re-record them).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, fields
from typing import Optional, Tuple

from repro.pages.dynamics import LoadStamp
from repro.pages.page import PageBlueprint, PageSnapshot
from repro.replay.recorder import record_snapshot
from repro.replay.store import ReplayStore


def blueprint_fingerprint(page: PageBlueprint) -> str:
    """Stable content hash of a blueprint's full structure.

    Covers the page name, root, the spec-map keys, and every field of
    every spec, so any structural edit — size, domain, flux flags,
    parentage, or re-keying the spec map — produces a different
    fingerprint while identically-built blueprints collide (which is
    exactly what a content-addressed cache wants).

    Every component is length-prefixed before hashing, so no value can
    bleed into its neighbour (``("ab", "c")`` vs ``("a", "bc")``) and no
    field boundary depends on the values containing no delimiters.
    """
    digest = hashlib.sha256()

    def put(text: str) -> None:
        data = text.encode()
        digest.update(str(len(data)).encode())
        digest.update(b":")
        digest.update(data)

    put(page.name)
    put(page.root)
    for name in sorted(page.specs):
        put(name)
        spec = page.specs[name]
        for spec_field in fields(spec):
            put(spec_field.name)
            put(str(getattr(spec, spec_field.name)))
    return digest.hexdigest()


def stamp_key(stamp: LoadStamp) -> Tuple[float, str, str, int]:
    """The stamp fields that feed URL/size resolution, as a hashable key."""
    return (stamp.when_hours, stamp.device, stamp.user, stamp.nonce)


@dataclass
class CacheStats:
    """Hit/miss counters for one cache (or a whole session)."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class SnapshotCache:
    """LRU cache of ``(snapshot, store)`` keyed on (blueprint, stamp).

    Entries are returned *shared*: loads never mutate a snapshot or store
    (the serial sweep has always reused one snapshot across configs), so
    sharing across benchmarks and across configs is safe and is the point.
    """

    def __init__(self, max_entries: Optional[int] = 512):
        if max_entries is not None and max_entries <= 0:
            raise ValueError("max_entries must be positive or None")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: "OrderedDict[tuple, Tuple[PageSnapshot, ReplayStore]]" = (
            OrderedDict()
        )
        #: Fingerprints memoised per blueprint object (id-keyed weak-ish
        #: memo; recomputing the content hash on every lookup would defeat
        #: the purpose for large corpora).
        self._fingerprints: "OrderedDict[int, Tuple[PageBlueprint, str]]" = (
            OrderedDict()
        )

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        # An *empty* cache must still be truthy: callers distinguish "no
        # cache supplied" (None) from "private empty cache" (instance).
        return True

    def clear(self) -> None:
        self._entries.clear()
        self._fingerprints.clear()
        self.stats = CacheStats()

    def _fingerprint(self, page: PageBlueprint) -> str:
        memo = self._fingerprints.get(id(page))
        # Guard against id() reuse after garbage collection: the memo also
        # pins the blueprint object, so a live hit is always genuine.
        if memo is not None and memo[0] is page:
            return memo[1]
        fingerprint = blueprint_fingerprint(page)
        self._fingerprints[id(page)] = (page, fingerprint)  # repro: allow[DET105] memo key only; never ordered or persisted, and the stored object pin guards id() reuse
        if len(self._fingerprints) > 4096:
            self._fingerprints.popitem(last=False)
        return fingerprint

    def key(self, page: PageBlueprint, stamp: LoadStamp) -> tuple:
        return (self._fingerprint(page), stamp_key(stamp))

    def materialized(
        self, page: PageBlueprint, stamp: LoadStamp
    ) -> Tuple[PageSnapshot, ReplayStore]:
        """The ``(snapshot, store)`` for (page, stamp), cached.

        A miss materialises the snapshot and records it; a hit returns the
        previously built pair, promoted to most-recently-used.
        """
        key = self.key(page, stamp)
        entry = self._entries.get(key)
        if entry is not None:
            self.stats.hits += 1
            self._entries.move_to_end(key)
            return entry
        self.stats.misses += 1
        snapshot = page.materialize(stamp)
        store = record_snapshot(snapshot)
        self._entries[key] = (snapshot, store)
        if self.max_entries is not None and len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return snapshot, store


#: Session-wide default cache: every sweep and benchmark in a process
#: shares snapshots through this instance unless told otherwise.
DEFAULT_CACHE = SnapshotCache()


def materialize_cached(
    page: PageBlueprint,
    stamp: LoadStamp,
    cache: Optional[SnapshotCache] = None,
) -> Tuple[PageSnapshot, ReplayStore]:
    """Materialise and record through ``cache`` (default: session cache)."""
    if cache is None:
        cache = DEFAULT_CACHE
    return cache.materialized(page, stamp)

"""Offline server-side dependency resolution (Sec 4.1.2).

A Vroom-compliant server loads each page it serves once an hour (in our
replay world: materialises the page's snapshot at past hours under the
server's own identity and a fresh nonce per load).  The *stable set* at any
moment is the set of URLs seen in **all** loads inside the recent window —
intersection filters out nonce URLs and anything that rotated mid-window.

Device-specific customisation is handled with equivalence classes: the
server loads each page once per device class (phone, tablet, ...) rather
than per device model, using emulation (Sec 4.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.calibration import (
    OFFLINE_LOAD_PERIOD_HOURS,
    OFFLINE_WINDOW_LOADS,
)
from repro.pages.dynamics import LoadStamp, stable_nonce
from repro.pages.page import PageBlueprint, PageSnapshot
from repro.pages.resources import Resource

#: Identity used for server-side loads (its cookies are the server's own,
#: never a user's — the whole point of the design).
SERVER_USER = "__vroom_server__"

#: Device model used to emulate each equivalence class.
CLASS_EMULATION_DEVICE = {"phone": "nexus6", "tablet": "nexus10"}


@dataclass
class StableSet:
    """URLs observed in every load of the recent offline window."""

    page: str
    device_class: str
    as_of_hours: float
    urls: Set[str] = field(default_factory=set)
    #: url -> representative Resource from the latest offline load.
    exemplars: Dict[str, Resource] = field(default_factory=dict)

    def __contains__(self, url: str) -> bool:
        return url in self.urls

    def __len__(self) -> int:
        return len(self.urls)


class OfflineResolver:
    """Periodic offline loads and stable-set computation for one page."""

    def __init__(
        self,
        page: PageBlueprint,
        *,
        period_hours: float = OFFLINE_LOAD_PERIOD_HOURS,
        window_loads: int = OFFLINE_WINDOW_LOADS,
    ):
        if period_hours <= 0:
            raise ValueError("offline load period must be positive")
        if window_loads < 1:
            raise ValueError("window must contain at least one load")
        self.page = page
        self.period_hours = period_hours
        self.window_loads = window_loads
        self._cache: Dict[tuple, StableSet] = {}

    def offline_loads(
        self, as_of_hours: float, device_class: str
    ) -> List[PageSnapshot]:
        """The server's own recent loads of the page, newest last.

        Loads happen at the period boundary: for a 1-hour period and a
        3-load window, the loads are at 1, 2 and 3 hours before ``as_of``
        (matching the paper's evaluation, Sec 6.1 methodology).
        """
        device = CLASS_EMULATION_DEVICE.get(device_class)
        if device is None:
            raise ValueError(f"unknown device class {device_class!r}")
        snapshots = []
        for age in range(self.window_loads, 0, -1):
            when = as_of_hours - age * self.period_hours
            stamp = LoadStamp(
                when_hours=when,
                device=device,
                user=SERVER_USER,
                nonce=stable_nonce(self.page.name, age),
            )
            snapshots.append(self.page.materialize(stamp))
        return snapshots

    def prime(self, stable: StableSet) -> None:
        """Install a precomputed stable set into the resolver's cache.

        A hint-serving backend persists stable sets and serves them
        later; priming lets a resolver answer ``stable_set`` queries at
        the set's own ``as_of_hours`` from the *stored* record instead
        of recomputing — which is how the service's accuracy bridge
        replays exactly the hints the store held at lookup time.
        """
        if stable.page != self.page.name:
            raise ValueError(
                f"stable set for {stable.page!r} cannot prime a resolver "
                f"for {self.page.name!r}"
            )
        key = (round(stable.as_of_hours, 6), stable.device_class)
        self._cache[key] = stable

    def trim_cache(self, keep: int = 0) -> int:
        """Drop memoised stable sets, keeping the ``keep`` most recent.

        The memo table is keyed by (rounded hour, device class); a
        long-horizon run resolves at ever-new hours, so without
        trimming the table grows linearly in simulated time for zero
        hit-rate benefit.  Returns the number of entries dropped.
        """
        if keep <= 0:
            dropped = len(self._cache)
            self._cache.clear()
            return dropped
        keys = sorted(self._cache)
        drop = keys[:-keep] if keep < len(keys) else []
        for key in drop:
            del self._cache[key]
        return len(drop)

    def stable_set(
        self, as_of_hours: float, device_class: str = "phone"
    ) -> StableSet:
        """Intersection of the recent offline loads for a device class."""
        key = (round(as_of_hours, 6), device_class)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        snapshots = self.offline_loads(as_of_hours, device_class)
        url_sets = [set(snapshot.urls()) for snapshot in snapshots]
        stable_urls = set.intersection(*url_sets) if url_sets else set()
        exemplars: Dict[str, Resource] = {}
        latest = snapshots[-1]
        for resource in latest.all_resources():
            if resource.url in stable_urls:
                exemplars[resource.url] = resource
        result = StableSet(
            page=self.page.name,
            device_class=device_class,
            as_of_hours=as_of_hours,
            urls=stable_urls,
            exemplars=exemplars,
        )
        self._cache[key] = result
        return result

    def single_prior_load(
        self, as_of_hours: float, device_class: str = "phone"
    ) -> StableSet:
        """Strawman for Fig 17: everything seen in the most recent load."""
        latest = self.offline_loads(as_of_hours, device_class)[-1]
        exemplars = {
            resource.url: resource for resource in latest.all_resources()
        }
        return StableSet(
            page=self.page.name,
            device_class=device_class,
            as_of_hours=as_of_hours,
            urls=set(exemplars),
            exemplars=exemplars,
        )


def stable_set_to_dict(stable: StableSet) -> dict:
    """Serialise a stable set (what a production server would persist)."""
    return {
        "page": stable.page,
        "device_class": stable.device_class,
        "as_of_hours": stable.as_of_hours,
        "urls": sorted(stable.urls),
        "exemplars": {
            url: {
                "name": exemplar.name,
                "size": exemplar.size,
                "rtype": exemplar.rtype.value,
                "process_order": exemplar.process_order,
            }
            for url, exemplar in stable.exemplars.items()
        },
    }


def stable_set_from_dict(data: dict, page: PageBlueprint) -> StableSet:
    """Rehydrate a persisted stable set against its page blueprint.

    Exemplars are re-resolved from the blueprint's specs: the persisted
    record stores the stable *facts* (URL, name, size, order); the spec
    supplies the behaviourally relevant attributes.
    """
    from repro.pages.resources import Resource

    exemplars = {}
    for url, record in data["exemplars"].items():
        spec = page.specs.get(record["name"])
        if spec is None:
            raise ValueError(
                f"persisted exemplar {record['name']!r} unknown to page "
                f"{page.name!r}"
            )
        resource = Resource(spec=spec, url=url, size=record["size"])
        resource.process_order = record["process_order"]
        exemplars[url] = resource
    return StableSet(
        page=data["page"],
        device_class=data["device_class"],
        as_of_hours=data["as_of_hours"],
        urls=set(data["urls"]),
        exemplars=exemplars,
    )


def device_equivalence_classes(
    page: PageBlueprint,
    devices: List[str],
    as_of_hours: float,
    similarity_threshold: float = 0.8,
) -> Dict[str, List[str]]:
    """Bin devices whose stable sets overlap heavily (Sec 4.1.2, Fig 9).

    Returns class-representative -> member devices.  Overlap is measured
    as intersection-over-union of the URLs of one load per device.
    """
    url_sets: Dict[str, Set[str]] = {}
    for device in devices:
        stamp = LoadStamp(
            when_hours=as_of_hours, device=device, user=SERVER_USER
        )
        url_sets[device] = set(page.materialize(stamp).urls())

    classes: Dict[str, List[str]] = {}
    for device in devices:
        placed = False
        for representative in classes:
            union = url_sets[device] | url_sets[representative]
            inter = url_sets[device] & url_sets[representative]
            if union and len(inter) / len(union) >= similarity_threshold:
                classes[representative].append(device)
                placed = True
                break
        if not placed:
            classes[device] = [device]
    return classes

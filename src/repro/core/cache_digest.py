"""Cache digests: telling servers what the client already has.

The paper (Sec 3.1, footnote 2) notes that PUSH's classic
bandwidth-wastage problem — pushing content the client has cached — can
be solved by the client summarising its cache to servers, e.g. in a
cookie, the way H2O's CASPer does.  This module implements that summary
as a Golomb-ish hashed set (a simplified cache digest per the IETF
``draft-ietf-httpbis-cache-digest`` design): compact, probabilistic, with
one-sided error — a digest hit may be a false positive, a miss never is.

The engine consults the digest through ``HttpClient.is_cached``; servers
then skip pushes for digest hits.  A false positive therefore suppresses
a useful push (costing a round trip later), never corrupts a load — the
same failure mode as the real mechanism.
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable, List, Set


class CacheDigest:
    """A compact probabilistic summary of cached URLs."""

    def __init__(self, urls: Iterable[str], bits_per_entry: int = 8):
        """Build a digest over ``urls``.

        ``bits_per_entry`` trades size for false-positive rate: the FP
        probability is ~2**-bits_per_entry (the draft's P parameter).
        """
        if bits_per_entry < 1 or bits_per_entry > 32:
            raise ValueError("bits_per_entry must be in [1, 32]")
        self.bits_per_entry = bits_per_entry
        url_list = list(urls)
        self.entry_count = len(url_list)
        # Hash space scales with N * 2^P, as in the draft.
        self._space = max(1, self.entry_count) * (2 ** bits_per_entry)
        self._hashes: Set[int] = {self._hash(url) for url in url_list}

    def _hash(self, url: str) -> int:
        digest = hashlib.sha256(url.encode()).digest()
        return int.from_bytes(digest[:8], "big") % self._space

    def __contains__(self, url: str) -> bool:
        return self._hash(url) in self._hashes

    def __len__(self) -> int:
        return len(self._hashes)

    @property
    def size_bytes(self) -> int:
        """Wire size estimate: ~(P + log2-overhead) bits per entry."""
        if self.entry_count == 0:
            return 2
        per_entry_bits = self.bits_per_entry + 2  # Golomb-Rice overhead
        return 2 + math.ceil(self.entry_count * per_entry_bits / 8)

    @property
    def false_positive_rate(self) -> float:
        return 2.0 ** (-self.bits_per_entry)


def digest_from_cache(cache, when_hours: float, **kwargs) -> CacheDigest:
    """Digest of every URL fresh in a BrowserCache at ``when_hours``."""
    return CacheDigest(cache.fresh_urls(when_hours).keys(), **kwargs)


def filter_pushes(
    pushes: List[str], digest: CacheDigest
) -> List[str]:
    """Drop pushes the digest claims the client already holds."""
    return [url for url in pushes if url not in digest]

"""Lint orchestration: file walking, pragmas, reports.

``lint_package`` runs every AST rule plus the layering checker over a
package tree, applies inline pragmas and the baseline, and returns a
:class:`LintReport` that renders as human text or JSON (for CI).

Inline suppression::

    value = risky_thing()  # repro: allow[DET105] reason for the waiver

waives the named rule(s) on that line only.  Pragmas are for cases the
surrounding code explains; cross-cutting debt belongs in the baseline
file, where a ``reason`` is mandatory.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.devtools.astrules import scan_source
from repro.devtools.baseline import Baseline, BaselineEntry
from repro.devtools.findings import Finding
from repro.devtools.layering import PURE_LAYERS, check_layering, layer_of

_PRAGMA = re.compile(r"#\s*repro:\s*allow\[([A-Z0-9_,\s]+)\]")


def _pragmas(source: str) -> Dict[int, frozenset]:
    """line number -> rule codes waived on that line."""
    out: Dict[int, frozenset] = {}
    for number, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(text)
        if match:
            out[number] = frozenset(
                code.strip() for code in match.group(1).split(",")
            )
    return out


@dataclass
class LintReport:
    """Outcome of one lint run."""

    #: Violations not covered by a pragma or the baseline: these fail CI.
    findings: List[Finding] = field(default_factory=list)
    #: Violations waived by an inline ``# repro: allow[...]`` pragma.
    waived: List[Finding] = field(default_factory=list)
    #: Violations matched by a baseline entry.
    suppressed: List[Finding] = field(default_factory=list)
    #: Baseline entries that matched nothing: the debt was paid, remove
    #: the entry.  These fail CI too, to keep the baseline exact.
    stale: List[BaselineEntry] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings and not self.stale

    @property
    def exit_code(self) -> int:
        return 0 if self.clean else 1

    def render_human(self) -> str:
        lines: List[str] = []
        for finding in self.findings:
            lines.append(finding.render())
        for entry in self.stale:
            lines.append(
                f"{entry.path}: stale baseline entry {entry.code} "
                f"({entry.message!r}) — the violation is gone; remove it"
            )
        lines.append(
            f"{len(self.findings)} finding(s), {len(self.stale)} stale "
            f"baseline entr(ies), {len(self.suppressed)} baselined, "
            f"{len(self.waived)} waived by pragma; "
            f"{self.files_scanned} file(s) scanned"
        )
        return "\n".join(lines)

    def render_json(self) -> str:
        payload = {
            "findings": [finding.as_dict() for finding in self.findings],
            "stale_baseline": [entry.as_dict() for entry in self.stale],
            "summary": {
                "findings": len(self.findings),
                "stale_baseline": len(self.stale),
                "suppressed": len(self.suppressed),
                "waived": len(self.waived),
                "files_scanned": self.files_scanned,
                "clean": self.clean,
            },
        }
        return json.dumps(payload, indent=2, sort_keys=True)


def _assign_occurrences(findings: List[Finding]) -> List[Finding]:
    """Number duplicate (path, code, message) findings in source order."""
    counts: Dict[Tuple[str, str, str], int] = {}
    out: List[Finding] = []
    for finding in sorted(findings, key=lambda f: (f.path, f.line, f.code)):
        key = (finding.path, finding.code, finding.message)
        index = counts.get(key, 0)
        counts[key] = index + 1
        out.append(
            Finding(
                code=finding.code,
                path=finding.path,
                line=finding.line,
                message=finding.message,
                occurrence=index,
            )
        )
    return out


def lint_package(
    package_root: Path,
    baseline: Optional[Baseline] = None,
    package: str = "repro",
) -> LintReport:
    """Lint every ``*.py`` under ``package_root`` (a package directory).

    Finding paths are posix-relative to ``package_root``; layer purity
    and the layering DAG are derived from the first path segment.
    """
    package_root = Path(package_root)
    report = LintReport()
    raw: List[Finding] = []
    for path in sorted(package_root.rglob("*.py")):
        relative = path.relative_to(package_root)
        layer = layer_of(relative)
        source = path.read_text()
        report.files_scanned += 1
        file_findings = scan_source(
            source, relative.as_posix(), pure=layer in PURE_LAYERS
        )
        waivers = _pragmas(source)
        for finding in file_findings:
            codes = waivers.get(finding.line)
            if codes is not None and (
                finding.code in codes or "ALL" in codes
            ):
                report.waived.append(finding)
            else:
                raw.append(finding)
    raw.extend(check_layering(package_root, package))
    numbered = _assign_occurrences(raw)
    new, suppressed, stale = (baseline or Baseline()).partition(numbered)
    report.findings = new
    report.suppressed = suppressed
    report.stale = stale
    return report

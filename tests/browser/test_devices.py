"""Tests for the device registry."""

import pytest

from repro.browser.devices import DEVICES, get_device


class TestRegistry:
    def test_paper_devices_present(self):
        assert set(DEVICES) == {"nexus6", "oneplus3", "nexus10"}

    def test_unknown_device_rejected(self):
        with pytest.raises(ValueError, match="unknown device"):
            get_device("pixel9000")

    def test_cpu_profile_derivation(self):
        device = get_device("oneplus3")
        profile = device.cpu_profile()
        assert profile.speedup == device.cpu_speedup

    def test_classes_match_calibration(self):
        from repro.calibration import DEVICE_CLASSES

        for name, device in DEVICES.items():
            assert device.device_class == DEVICE_CLASSES[name]

    def test_tablet_has_bigger_viewport(self):
        phone = get_device("nexus6")
        tablet = get_device("nexus10")
        assert tablet.viewport[0] > phone.viewport[0]

    def test_devices_are_frozen(self):
        device = get_device("nexus6")
        with pytest.raises(Exception):
            device.cpu_speedup = 2.0

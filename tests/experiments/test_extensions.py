"""Smoke tests for the extension experiments."""

import statistics

from repro.experiments import extensions


def test_adoption_sweep_shape():
    series = extensions.adoption_sweep(count=4, fractions=(0.0, 1.0))
    assert set(series) == {"adopt_000", "adopt_100"}
    assert statistics.median(series["adopt_100"]) < statistics.median(
        series["adopt_000"]
    )


def test_hybrid_comparison_columns():
    series = extensions.hybrid_comparison(count=4)
    assert set(series) == {"vroom", "polaris", "hybrid"}
    assert all(len(values) == 4 for values in series.values())


def test_network_regimes_subset():
    result = extensions.network_regimes(count=2)
    assert "lte" in result and "wifi" in result
    for rows in result.values():
        assert len(rows["http2"]) == 2
        assert all(v > 0 for v in rows["vroom"])


def test_clustering_economics_fields():
    result = extensions.clustering_economics(count=8)
    assert result["pages"] == 8.0
    assert 0 < result["clusters"] <= 8

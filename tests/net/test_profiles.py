"""Tests for the network profile catalogue."""

import pytest

from repro.net.http import HttpVersion
from repro.net.profiles import PROFILES, profile


class TestProfiles:
    def test_known_profiles_present(self):
        for name in (
            "lte", "loaded-lte", "3g", "2g", "wifi",
            "5g", "satellite", "bursty-loss",
        ):
            assert name in PROFILES

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown network profile"):
            profile("5g-advanced")

    def test_config_carries_characteristics(self):
        cfg = profile("3g").config()
        assert cfg.downlink_bps == PROFILES["3g"].downlink_bps
        assert cfg.base_rtt == PROFILES["3g"].rtt
        assert cfg.version is HttpVersion.HTTP2

    def test_ordering_sane(self):
        assert PROFILES["wifi"].downlink_bps > PROFILES["lte"].downlink_bps
        assert PROFILES["2g"].rtt > PROFILES["3g"].rtt > PROFILES["lte"].rtt
        assert PROFILES["loaded-lte"].downlink_bps < PROFILES["lte"].downlink_bps
        assert PROFILES["5g"].downlink_bps > PROFILES["wifi"].downlink_bps
        assert PROFILES["satellite"].rtt >= PROFILES["2g"].rtt

    def test_loss_rate_threaded_into_config(self):
        assert PROFILES["bursty-loss"].loss_rate > 0.0
        cfg = profile("bursty-loss").config()
        assert cfg.loss_rate == PROFILES["bursty-loss"].loss_rate
        # Clean profiles stay lossless.
        assert profile("lte").config().loss_rate == 0.0

    def test_loads_run_on_every_profile(self, page, snapshot, store):
        from repro.browser.engine import BrowserConfig, load_page
        from repro.replay.replayer import build_servers

        plts = {}
        for name in ("lte", "wifi"):
            metrics = load_page(
                snapshot,
                build_servers(store),
                profile(name).config(),
                BrowserConfig(when_hours=snapshot.stamp.when_hours),
            )
            plts[name] = metrics.plt
        assert plts["wifi"] < plts["lte"]

"""Minimal deterministic discrete-event simulation engine.

Events are ``(time, sequence, callback)`` triples in a binary heap.  The
sequence number breaks time ties in scheduling order, which keeps every run
fully deterministic.  Time is float seconds from an arbitrary origin.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple


class Event:
    """Handle to a scheduled callback; supports cancellation."""

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """Event queue with a monotone virtual clock."""

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        #: Total events executed (exposed for runaway detection / stats).
        self.executed = 0

    @property
    def now(self) -> float:
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        event = Event(self._now + delay, next(self._seq), callback)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` at absolute simulated time ``time``."""
        return self.schedule(max(0.0, time - self._now), callback)

    def call_soon(self, callback: Callable[[], None]) -> Event:
        """Run ``callback`` at the current time, after pending same-time events."""
        return self.schedule(0.0, callback)

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 5_000_000,
    ) -> float:
        """Drain the queue; returns the final clock value.

        ``until`` caps virtual time; ``max_events`` guards against runaway
        feedback loops in buggy models (raises ``RuntimeError``).
        """
        if self._running:
            raise RuntimeError("simulator is not reentrant")
        self._running = True
        try:
            while self._queue:
                event = heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                if until is not None and event.time > until:
                    heapq.heappush(self._queue, event)
                    self._now = until
                    break
                if event.time < self._now - 1e-12:
                    raise RuntimeError("event scheduled in the past")
                self._now = max(self._now, event.time)
                self.executed += 1
                if self.executed > max_events:
                    raise RuntimeError(
                        f"exceeded {max_events} events; likely a model loop"
                    )
                event.callback()
        finally:
            self._running = False
        return self._now

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, if any."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def pending(self) -> int:
        return sum(1 for event in self._queue if not event.cancelled)

"""Temporal and contextual flux of page resources.

This module answers one question: *what URL does a given resource spec
resolve to for a particular load?*  The answer depends on

* wall-clock time (rotating content advances an epoch counter),
* a per-load nonce (intrinsically unpredictable ad/analytics URLs),
* the client's device equivalence class (responsive image variants), and
* the (user, domain) pair (personalised content).

Keeping all of this in pure functions of a :class:`LoadStamp` makes every
experiment deterministic and lets the offline resolver, the accuracy
analysis and the browser all materialise byte-identical loads.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from repro.calibration import DEVICE_CLASSES
from repro.pages.resources import ResourceSpec, ResourceType

_EXT_BY_TYPE = {
    ResourceType.HTML: "html",
    ResourceType.CSS: "css",
    ResourceType.JS: "js",
    ResourceType.IMAGE: "jpg",
    ResourceType.FONT: "woff2",
    ResourceType.VIDEO: "mp4",
    ResourceType.JSON: "json",
    ResourceType.OTHER: "bin",
}


@dataclass(frozen=True)
class LoadStamp:
    """Everything that distinguishes one load of a page from another."""

    #: Wall-clock time of the load, in hours since an arbitrary epoch.
    when_hours: float
    #: Device model performing the load (must appear in DEVICE_CLASSES).
    device: str = "nexus6"
    #: User identity (drives personalization); ``server`` for server loads.
    user: str = "user0"
    #: Per-load entropy for intrinsically unpredictable URLs.
    nonce: int = 0

    @property
    def device_class(self) -> str:
        try:
            return DEVICE_CLASSES[self.device]
        except KeyError:
            raise ValueError(f"unknown device {self.device!r}") from None

    def back_to_back(self, nonce_shift: int = 1) -> "LoadStamp":
        """A load at the same instant with fresh nonce entropy."""
        return LoadStamp(
            when_hours=self.when_hours,
            device=self.device,
            user=self.user,
            nonce=self.nonce + nonce_shift,
        )

    def earlier(self, hours: float, nonce_shift: int = 1) -> "LoadStamp":
        """The same context loading the page ``hours`` earlier."""
        return LoadStamp(
            when_hours=self.when_hours - hours,
            device=self.device,
            user=self.user,
            nonce=self.nonce + nonce_shift,
        )


def _digest(*parts: object) -> str:
    joined = "|".join(str(part) for part in parts)
    return hashlib.sha1(joined.encode()).hexdigest()[:10]


def stable_nonce(*parts: object) -> int:
    """A deterministic nonce in ``[0, 100_000)`` from arbitrary parts.

    Unlike builtin ``hash()``, this is independent of ``PYTHONHASHSEED``,
    so server-side emulated loads draw the same nonce in every process.
    """
    return int(_digest(*parts), 16) % 100_000


def rotation_epoch(spec: ResourceSpec, when_hours: float) -> Optional[int]:
    """Epoch index of a rotating resource at a wall-clock time.

    ``None`` for non-rotating resources.  A rotating resource's URL is a
    pure function of its epoch, so two loads within the same epoch see the
    same URL and loads across an epoch boundary see different ones.
    """
    if spec.lifetime_hours is None:
        return None
    if spec.lifetime_hours <= 0:
        raise ValueError(f"{spec.name!r}: non-positive rotation lifetime")
    return int(when_hours // spec.lifetime_hours)


def resolve_url(spec: ResourceSpec, stamp: LoadStamp) -> str:
    """The concrete URL ``spec`` resolves to under ``stamp``.

    Deterministic: identical (spec, stamp) pairs always agree, and two
    stamps differing only in fields irrelevant to the spec (e.g. nonce for
    a stable resource) also agree.
    """
    tokens = [spec.name]
    epoch = rotation_epoch(spec, stamp.when_hours)
    if epoch is not None:
        tokens.append(f"e{epoch}")
    if spec.unpredictable:
        tokens.append("n" + _digest(spec.name, stamp.nonce, stamp.when_hours))
    if spec.device_dependent:
        tokens.append(stamp.device_class)
    if spec.personalized:
        tokens.append("u" + _digest(spec.domain, stamp.user))
    ext = _EXT_BY_TYPE[spec.rtype]
    return f"{spec.domain}/{'_'.join(tokens)}.{ext}"


def resolve_size(spec: ResourceSpec, stamp: LoadStamp) -> int:
    """Concrete byte size for this load.

    Device classes with larger displays pull larger image variants; other
    flux leaves size unchanged.  Sizes never go below one byte.
    """
    size = spec.size
    if spec.device_dependent and stamp.device_class == "tablet":
        size = int(size * 1.6)
    return max(1, size)


def url_is_shared(spec: ResourceSpec, a: LoadStamp, b: LoadStamp) -> bool:
    """Whether two loads resolve ``spec`` to the same URL."""
    return resolve_url(spec, a) == resolve_url(spec, b)

"""Lint findings and the rule registry.

A finding's identity for baseline matching is ``(path, code, message,
occurrence)`` — deliberately *not* the line number, so unrelated edits
moving code around do not invalidate the baseline, while a second
identical violation in the same file still counts as new.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: Rule registry: code -> one-line description.  ``repro lint --rules``
#: prints this table; tests assert every rule has fixture coverage.
RULES: Dict[str, str] = {
    "DET101": (
        "iteration over an unordered set/frozenset — order follows "
        "PYTHONHASHSEED; wrap in sorted() or deduplicate with dict.fromkeys()"
    ),
    "DET102": (
        "iteration over dict.keys() — iterate the dict itself (insertion "
        "order) or sorted(d) to make the intended order explicit"
    ),
    "DET103": (
        "unseeded randomness — random.Random() without a seed, or a "
        "module-level random.* / numpy.random.* call, draws from global "
        "process state"
    ),
    "DET104": (
        "wall-clock read inside a pure simulation layer — simulated time "
        "comes from Simulator.now, never time.time()/datetime.now()"
    ),
    "DET105": (
        "builtin hash()/id() feeding ordering or keys — hash() of a str "
        "is PYTHONHASHSEED-dependent and id() varies per process; use "
        "hashlib/zlib.crc32 or a stable attribute"
    ),
    "PUR201": (
        "I/O inside a pure simulation layer — print/open/os.environ and "
        "friends belong to the harness layers (experiments/analysis/cli)"
    ),
    "LAY301": (
        "layering violation — module imports a package its layer may not "
        "depend on (see LAYER_DEPS in repro.devtools.layering)"
    ),
    "LAY302": (
        "package-level import cycle — two or more packages import each "
        "other, so no layering order exists for them"
    ),
}


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str
    path: str  # posix path relative to the linted package root
    line: int
    message: str
    #: 0-based index among findings in the same file with the same
    #: (code, message); keeps duplicate violations distinct in baselines
    #: without pinning fragile line numbers.
    occurrence: int = 0

    @property
    def key(self) -> Tuple[str, str, str, int]:
        return (self.path, self.code, self.message, self.occurrence)

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "occurrence": self.occurrence,
        }

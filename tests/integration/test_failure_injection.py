"""Failure injection: the system must fail loudly, never silently wrong."""

import pytest

from repro.browser.engine import BrowserConfig, PageLoadEngine, load_page
from repro.net.http import NetworkConfig
from repro.net.origin import OriginServer, Response
from repro.pages.dynamics import LoadStamp
from repro.pages.page import PageBlueprint
from repro.pages.resources import ResourceSpec, ResourceType
from repro.replay.recorder import record_snapshot
from repro.replay.replayer import build_servers

STAMP = LoadStamp(when_hours=10.0)


def tiny_page():
    page = PageBlueprint(name="fail", root="root")
    page.add(
        ResourceSpec(
            name="root",
            rtype=ResourceType.HTML,
            domain="a.com",
            size=10_000,
        )
    )
    page.add(
        ResourceSpec(
            name="js",
            rtype=ResourceType.JS,
            domain="a.com",
            size=5_000,
            parent="root",
            position=0.4,
        )
    )
    page.validate()
    return page


class TestMissingContent:
    def test_missing_url_raises_key_error(self):
        page = tiny_page()
        snapshot = page.materialize(STAMP)
        store = record_snapshot(snapshot)
        # Sabotage: remove the script from the replay store.
        js_url = snapshot.find("js").url
        del store.responses[js_url]
        with pytest.raises(KeyError):
            load_page(
                snapshot,
                build_servers(store),
                browser_config=BrowserConfig(when_hours=STAMP.when_hours),
            )

    def test_missing_domain_raises(self):
        page = tiny_page()
        snapshot = page.materialize(STAMP)
        store = record_snapshot(snapshot)
        servers = build_servers(store)
        del servers["a.com"]
        with pytest.raises(KeyError):
            load_page(
                snapshot,
                servers,
                browser_config=BrowserConfig(when_hours=STAMP.when_hours),
            )


class TestBrokenResponder:
    def test_zero_size_response_completes(self):
        """A zero-byte body must not wedge the stream machinery."""
        page = tiny_page()
        snapshot = page.materialize(STAMP)
        js_url = snapshot.find("js").url
        root = snapshot.root

        def respond(url, is_push):
            if url == root.url:
                return Response(url=url, size=root.size)
            if url == js_url:
                return Response(url=url, size=0)
            return None

        servers = {"a.com": OriginServer("a.com", respond, 0.03)}
        metrics = load_page(
            snapshot,
            servers,
            browser_config=BrowserConfig(when_hours=STAMP.when_hours),
        )
        assert metrics.plt > 0

    def test_wedged_load_lists_what_blocked_it(self):
        """Diagnostics name the stuck obligations."""
        page = tiny_page()
        snapshot = page.materialize(STAMP)
        store = record_snapshot(snapshot)

        class NoFetchPolicy:
            def attach(self, engine):
                self.engine = engine

            def on_discovered(self, url, via):
                if "root" in url:
                    self.engine.start_fetch(url, priority=0.5)

            def on_headers(self, fetch):
                pass

            def on_fetched(self, url):
                pass

            def ensure_fetch(self, url):
                pass

        engine = PageLoadEngine(
            snapshot,
            build_servers(store),
            browser_config=BrowserConfig(when_hours=STAMP.when_hours),
            policy=NoFetchPolicy(),
        )
        with pytest.raises(RuntimeError) as exc_info:
            engine.run(time_limit=20.0)
        assert "fetch:" in str(exc_info.value)


class TestBadHints:
    def test_hints_for_unservable_urls_raise(self):
        """A hint pointing at a domain with no server is a loud error,
        not a hang."""
        from repro.core.hints import DependencyHint
        from repro.pages.resources import Priority

        page = tiny_page()
        snapshot = page.materialize(STAMP)
        store = record_snapshot(snapshot)

        def decorate(recorded, response, is_push):
            if recorded.is_html:
                response.hints = [
                    DependencyHint(
                        url="ghost.com/missing.js",
                        priority=Priority.PRELOAD,
                    )
                ]
            return response

        from repro.core.scheduler import VroomScheduler

        servers = build_servers(store, decorator=decorate)
        engine = PageLoadEngine(
            snapshot,
            servers,
            NetworkConfig(),
            BrowserConfig(when_hours=STAMP.when_hours),
            policy=VroomScheduler(),
        )
        with pytest.raises((KeyError, RuntimeError)):
            engine.run(time_limit=20.0)

    def test_hint_for_wrong_domain_content_raises(self):
        """A served domain that lacks the hinted path errors loudly."""
        from repro.core.hints import DependencyHint
        from repro.core.scheduler import VroomScheduler
        from repro.pages.resources import Priority

        page = tiny_page()
        snapshot = page.materialize(STAMP)
        store = record_snapshot(snapshot)

        def decorate(recorded, response, is_push):
            if recorded.is_html:
                response.hints = [
                    DependencyHint(
                        url="a.com/not-recorded.js",
                        priority=Priority.PRELOAD,
                    )
                ]
            return response

        servers = build_servers(store, decorator=decorate)
        engine = PageLoadEngine(
            snapshot,
            servers,
            NetworkConfig(),
            BrowserConfig(when_hours=STAMP.when_hours),
            policy=VroomScheduler(),
        )
        with pytest.raises((KeyError, RuntimeError)):
            engine.run(time_limit=20.0)


class TestTimeLimit:
    def test_time_limit_triggers_diagnostics(self):
        """An absurdly small time limit reports pending obligations."""
        page = tiny_page()
        snapshot = page.materialize(STAMP)
        store = record_snapshot(snapshot)
        engine = PageLoadEngine(
            snapshot,
            build_servers(store),
            browser_config=BrowserConfig(when_hours=STAMP.when_hours),
        )
        with pytest.raises(RuntimeError, match="never fired onload"):
            engine.run(time_limit=0.01)

"""Above-the-fold and Speed Index semantics in the engine."""

from repro.browser.engine import BrowserConfig, load_page
from repro.pages.dynamics import LoadStamp
from repro.pages.page import PageBlueprint
from repro.pages.resources import ResourceSpec, ResourceType
from repro.replay.recorder import record_snapshot
from repro.replay.replayer import build_servers

STAMP = LoadStamp(when_hours=3.0)


def page_with(atf_position: float, btf_position: float):
    page = PageBlueprint(name="aftp", root="root")
    page.add(
        ResourceSpec("root", ResourceType.HTML, "a.com", 20_000)
    )
    page.add(
        ResourceSpec(
            "hero",
            ResourceType.IMAGE,
            "a.com",
            400_000,
            parent="root",
            position=atf_position,
            above_fold=True,
            pixel_weight=5.0,
        )
    )
    page.add(
        ResourceSpec(
            "footer_img",
            ResourceType.IMAGE,
            "a.com",
            400_000,
            parent="root",
            position=btf_position,
            above_fold=False,
        )
    )
    page.validate()
    return page


def run(page):
    snapshot = page.materialize(STAMP)
    store = record_snapshot(snapshot)
    metrics = load_page(
        snapshot,
        build_servers(store),
        browser_config=BrowserConfig(when_hours=STAMP.when_hours),
    )
    return snapshot, metrics


class TestAft:
    def test_aft_waits_for_hero_image(self):
        snapshot, metrics = run(page_with(0.2, 0.8))
        hero = metrics.timelines[snapshot.find("hero").url]
        assert metrics.aft >= hero.rendered_at - 1e-9

    def test_below_fold_content_does_not_gate_aft(self):
        """A late below-the-fold image extends PLT but not AFT."""
        snapshot, metrics = run(page_with(0.1, 0.95))
        footer = metrics.timelines[snapshot.find("footer_img").url]
        assert metrics.aft < footer.rendered_at or (
            metrics.aft <= metrics.plt
        )
        # PLT still waits for everything.
        assert metrics.plt >= footer.rendered_at - 1e-9

    def test_iframe_media_excluded_from_aft_events(self, page, snapshot, store):
        """Framed ad content never contributes render events."""
        from repro.baselines.configs import run_config

        metrics = run_config("http2", page, snapshot, store)
        framed = [
            resource
            for resource in snapshot.all_resources()
            if resource.in_iframe and resource.spec.above_fold
        ]
        if not framed:
            return
        # AFT can precede framed content completion.
        last_framed = max(
            metrics.timelines[r.url].completion_at or 0 for r in framed
        )
        assert metrics.aft <= max(last_framed, metrics.aft)


class TestSpeedIndexSemantics:
    def test_earlier_hero_lowers_speed_index(self):
        early_page = page_with(0.05, 0.8)
        late_page = page_with(0.9, 0.8)
        _, early = run(early_page)
        _, late = run(late_page)
        assert early.speed_index <= late.speed_index * 1.1

"""Service experiments: budget sweep monotonicity, smoke goldens."""

import pytest

from repro.experiments.service import (
    EXPECTED_SMOKE,
    KILL_SHARD_SERVED_FLOOR,
    SMOKE_CONFIG,
    service_benchmark,
    smoke_check,
    smoke_run,
    smoke_scenarios,
    staleness_experiment,
)


@pytest.fixture(scope="module")
def sweep(corpus):
    return staleness_experiment(
        corpus,
        budgets=(4.0, 12.0, 48.0),
        lookups=3_000,
        rate_per_hour=1_500.0,
        bridge_sample_every=1_000,
        bridge_budgets=1,
        bridge_max_samples=2,
        bridge_with_loads=False,
        seed=7,
    )


class TestStalenessSweep:
    def test_stale_hit_rate_is_monotone_in_budget(self, sweep):
        assert sweep["monotone_stale_hit_rate"] is True
        rates = [row["stale_hit_rate"] for row in sweep["budgets"]]
        assert rates == sorted(rates, reverse=True)

    def test_prewarmed_runs_never_miss(self, sweep):
        for row in sweep["budgets"]:
            assert row["miss_rate"] == 0.0

    def test_bridge_attached_to_leading_budgets_only(self, sweep):
        rows = sweep["budgets"]
        assert "bridge" in rows[0]
        assert "bridge" not in rows[1]
        assert rows[0]["bridge"]["samples"] == 2

    def test_identical_traffic_across_budgets(self, sweep):
        # The workload is seed-driven: every run saw the same lookups.
        offered = {
            row["scheduler"]["budget_offered"]
            / row["crawl_budget_per_hour"]
            for row in sweep["budgets"]
        }
        assert len(offered) == 1  # same simulated duration everywhere


class TestSmoke:
    def test_smoke_matches_goldens(self):
        assert smoke_check(smoke_run()) == []

    def test_smoke_check_reports_drift(self):
        report = smoke_run()
        report["totals"]["hits"] += 1
        problems = smoke_check(report)
        assert len(problems) == 1
        assert "hits" in problems[0]

    def test_smoke_config_collects_no_samples(self):
        assert SMOKE_CONFIG.bridge_sample_every == 0
        assert EXPECTED_SMOKE["lookups"] == SMOKE_CONFIG.lookups


class TestScenarios:
    @pytest.fixture(scope="class")
    def scenarios(self):
        return smoke_scenarios()

    def test_scenarios_pass_their_invariants(self, scenarios):
        assert smoke_check(smoke_run(), scenarios) == []

    def test_replication_separates_the_outage(self, scenarios):
        rows = {
            row["replication"]: row for row in scenarios["kill_shard"]["rows"]
        }
        assert rows[2]["window"]["served_rate"] >= KILL_SHARD_SERVED_FLOOR
        assert rows[1]["window"]["served_rate"] < KILL_SHARD_SERVED_FLOOR
        # Identical workload either side: the gap is pure replication.
        assert rows[1]["window"]["lookups"] == rows[2]["window"]["lookups"]
        assert "bridge_window" in rows[1]  # degraded-mode hint quality

    def test_frontend_cache_absorbs_the_flash(self, scenarios):
        rows = {
            row["frontend_cache_entries"]: row
            for row in scenarios["flash_crowd"]["rows"]
        }
        capacity = max(rows)
        assert rows[capacity]["totals"]["frontend_hits"] > 0
        assert (
            rows[capacity]["latency"]["p50_ms"] < rows[0]["latency"]["p50_ms"]
        )

    def test_reshard_is_invisible_to_clients(self, scenarios):
        reshard = scenarios["reshard"]
        assert reshard["payloads_match"] is True
        assert reshard["audited"] is True
        assert reshard["shards_after"] == reshard["shards_before"] + 1
        assert reshard["migration"]["keys_moved"] >= 1

    def test_scenarios_are_deterministic(self, scenarios):
        assert smoke_scenarios() == scenarios


class TestServiceBenchmark:
    def test_payload_shape(self, corpus):
        payload = service_benchmark(
            corpus,
            lookups=2_000,
            rate_per_hour=1_000.0,
            bridge_sample_every=0,
            budgets=(6.0, 60.0),
            scenarios=False,
        )
        assert payload["benchmark"] == "service"
        assert payload["report"]["totals"]["lookups"] == 2_000
        assert "bridge" not in payload  # sampling disabled
        assert "scenarios" not in payload
        assert len(payload["staleness"]["budgets"]) == 2

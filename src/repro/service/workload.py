"""Seeded service workload: Zipf page popularity × Poisson arrivals.

Web request traffic is classically modelled as a Poisson arrival
process over a Zipf-distributed object popularity ("few pages take most
of the traffic"), and both halves matter to a hint store: Zipf skew
decides what stays resident under LRU, Poisson clumping decides queue
depth at the shards.

Everything draws from one ``random.Random(seed)`` instance in a fixed
order, so a workload is a pure function of its parameters: the same
seed yields the same lookup sequence no matter the store or budget
configuration — which is what lets the staleness experiment vary the
crawl budget against *identical* traffic.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterator, List, Optional


@dataclass(frozen=True)
class Lookup:
    """One hint request arriving at the service front door."""

    seq: int
    when_hours: float
    page_index: int
    device_class: str
    user: str


class ZipfPopularity:
    """Zipf(s) sampler over ``n`` ranks via inverse-CDF + bisect.

    Rank 0 is the most popular page.  ``weight(r) ∝ (r + 1) ** -s``;
    ``s = 0`` degenerates to uniform.
    """

    def __init__(self, n: int, exponent: float = 1.1):
        if n < 1:
            raise ValueError("need at least one page")
        if exponent < 0:
            raise ValueError("Zipf exponent must be non-negative")
        self.n = n
        self.exponent = exponent
        cumulative: List[float] = []
        total = 0.0
        for rank in range(n):
            total += (rank + 1) ** -exponent
            cumulative.append(total)
        self._cumulative = cumulative
        self._total = total

    def weight(self, rank: int) -> float:
        return (rank + 1) ** -self.exponent / self._total

    def sample(self, uniform: float) -> int:
        """Rank for a uniform draw in [0, 1)."""
        return bisect_left(self._cumulative, uniform * self._total)


@dataclass(frozen=True)
class WorkloadConfig:
    """Traffic shape knobs."""

    pages: int
    lookups: int
    #: Mean arrival rate (lookups per simulated hour).
    rate_per_hour: float = 20_000.0
    zipf_exponent: float = 1.1
    #: Share of requests from the phone device class (rest: tablet).
    phone_fraction: float = 0.85
    #: Distinct client identities cycled through the traffic.
    user_pool: int = 32
    seed: int = 0
    # -- flash crowd (breaking news concentrating on one page) -----------
    #: Hour (workload-relative) a flash crowd starts; None disables it.
    #: With it disabled the draw sequence is bit-identical to the
    #: pre-flash workload generator.
    flash_at_hours: Optional[float] = None
    flash_duration_hours: float = 0.1
    #: Arrival-rate multiplier inside the flash window.
    flash_multiplier: float = 10.0
    #: Probability an in-window arrival targets the flash page.
    flash_focus: float = 0.8
    #: Popularity rank of the page the crowd piles onto (0 = the head).
    flash_page_rank: int = 0


class Workload:
    """Deterministic lookup stream; iterate to drain it."""

    def __init__(self, config: WorkloadConfig):
        if config.lookups < 1:
            raise ValueError("workload needs at least one lookup")
        if config.rate_per_hour <= 0:
            raise ValueError("arrival rate must be positive")
        if not 0.0 <= config.phone_fraction <= 1.0:
            raise ValueError("phone fraction must be within [0, 1]")
        if config.flash_at_hours is not None:
            if config.flash_at_hours < 0:
                raise ValueError("flash start must be non-negative")
            if config.flash_duration_hours <= 0:
                raise ValueError("flash duration must be positive")
            if config.flash_multiplier <= 0:
                raise ValueError("flash multiplier must be positive")
            if not 0.0 <= config.flash_focus <= 1.0:
                raise ValueError("flash focus must be within [0, 1]")
            if not 0 <= config.flash_page_rank < config.pages:
                raise ValueError("flash page rank outside the fleet")
        self.config = config
        self.popularity = ZipfPopularity(config.pages, config.zipf_exponent)

    def _in_flash(self, now: float) -> bool:
        flash_at = self.config.flash_at_hours
        return (
            flash_at is not None
            and flash_at
            <= now
            < flash_at + self.config.flash_duration_hours
        )

    def __iter__(self) -> Iterator[Lookup]:
        config = self.config
        rng = random.Random(config.seed)
        mean_gap = 1.0 / config.rate_per_hour
        now = 0.0
        for seq in range(config.lookups):
            # Inside the flash window arrivals clump (rate × multiplier)
            # and concentrate on the flash page; the window test uses the
            # previous arrival's clock, so the draw order is fixed.
            if self._in_flash(now):
                now += rng.expovariate(config.flash_multiplier / mean_gap)
                if rng.random() < config.flash_focus:
                    page_index = config.flash_page_rank
                    rng.random()  # keep the per-arrival draw count fixed
                else:
                    page_index = self.popularity.sample(rng.random())
            else:
                now += rng.expovariate(1.0 / mean_gap)
                page_index = self.popularity.sample(rng.random())
            device_class = (
                "phone" if rng.random() < config.phone_fraction else "tablet"
            )
            user = f"user{rng.randrange(config.user_pool)}"
            yield Lookup(
                seq=seq,
                when_hours=now,
                page_index=page_index,
                device_class=device_class,
                user=user,
            )

    def duration_hours(self) -> float:
        """Arrival time of the last lookup (replays the whole stream)."""
        last = 0.0
        for lookup in self:
            last = lookup.when_hours
        return last

"""Batched offline-resolution scheduler with a crawl budget.

The paper's servers "load each page periodically" (Sec 4.1.2); a fleet
cannot afford to load *every* page every period, so this scheduler
decides *which* pages get their stable sets recomputed, and when:

* Work arrives as :class:`ResolutionJob`s — one per (page, device
  class) — from cold misses, stale hits, and TTL expiries.  Duplicate
  enqueues coalesce onto the pending job.
* Jobs execute in **batches** at fixed period ticks, mirroring a cron
  of headless-browser crawlers.
* Each executed job costs ``loads_per_job`` page loads (the offline
  window intersects that many loads), and the batch spends from a
  **crawl budget** accrued at ``budget_loads_per_hour``.  Unspent
  credit banks up to one extra period — a real crawler fleet has a
  fixed size; it cannot save a quiet night for a busy morning.
* Within a batch, jobs are ordered by **staleness × popularity**: the
  entry's age (cold misses count as maximally stale) weighted by the
  request traffic the key has seen.  Ties break on the key, so the
  order is deterministic.

The scheduler never touches the clock or the store; the backend feeds
it ``now_hours``, popularity counts, and per-key staleness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

Key = Tuple[str, str]  # (page name, device class)

#: Staleness assigned to a key with no store entry at all: colder than
#: any stale entry, so cold misses win ties against refreshes.
COLD_STALENESS_HOURS = 1e6


@dataclass(slots=True)
class ResolutionJob:
    """One pending stable-set recomputation.

    Allocated per cold/stale lookup on the service hot path — slotted
    to keep that churn dict-free.
    """

    page: str
    device_class: str
    page_index: int
    enqueued_at_hours: float
    #: Why the job exists: "miss", "stale", or "expired".
    reason: str
    #: How many times the key was requested while the job sat queued.
    demand: int = 1

    @property
    def key(self) -> Key:
        return (self.page, self.device_class)


@dataclass
class SchedulerCounters:
    enqueued: int = 0
    coalesced: int = 0
    executed: int = 0
    #: Unique deferrals: a job is counted once per stretch it spends
    #: queued past a batch tick, not once per tick it sits there —
    #: cumulative re-counting made the number meaningless at fleet
    #: scale.  Re-deferral after an execution counts again (it is a new
    #: deferral).
    deferred: int = 0
    #: Largest pending-queue depth observed at any batch tick.
    pending_peak: int = 0
    loads_spent: int = 0
    budget_offered: float = 0.0

    def as_dict(self) -> dict:
        return {
            "enqueued": self.enqueued,
            "coalesced": self.coalesced,
            "executed": self.executed,
            "deferred": self.deferred,
            "pending_peak": self.pending_peak,
            "loads_spent": self.loads_spent,
            "budget_offered": round(self.budget_offered, 6),
            "budget_utilization": (
                round(self.loads_spent / self.budget_offered, 6)
                if self.budget_offered
                else 0.0
            ),
        }


class BatchScheduler:
    """Priority-batched job queue under a loads/hour crawl budget."""

    def __init__(
        self,
        *,
        budget_loads_per_hour: float,
        batch_period_hours: float,
        loads_per_job: int,
    ):
        if budget_loads_per_hour <= 0:
            raise ValueError("crawl budget must be positive")
        if batch_period_hours <= 0:
            raise ValueError("batch period must be positive")
        if loads_per_job < 1:
            raise ValueError("a job costs at least one load")
        self.budget_loads_per_hour = budget_loads_per_hour
        self.batch_period_hours = batch_period_hours
        self.loads_per_job = loads_per_job
        self.counters = SchedulerCounters()
        self._pending: Dict[Key, ResolutionJob] = {}
        #: Keys already counted as deferred for their current queue stay.
        self._deferred_seen: set = set()
        self._credit = 0.0
        #: Credit cap: the current period's accrual plus one banked
        #: period — but never below one job's cost, or a budget smaller
        #: than ``loads_per_job`` per two periods would starve forever
        #: instead of merely running slowly.
        self._credit_cap = max(
            2.0 * budget_loads_per_hour * batch_period_hours,
            float(loads_per_job),
        )

    def pending_count(self) -> int:
        return len(self._pending)

    # repro: hotpath
    def enqueue(self, job: ResolutionJob) -> bool:
        """Add a job; a duplicate key coalesces (and bumps demand).

        Returns True when the job is new, False when coalesced.
        """
        existing = self._pending.get(job.key)
        if existing is not None:
            existing.demand += job.demand
            self.counters.coalesced += 1
            return False
        self._pending[job.key] = job
        self.counters.enqueued += 1
        return True

    def priority(
        self, job: ResolutionJob, staleness_hours: float
    ) -> float:
        """Staleness × log-damped popularity (requests while queued)."""
        return staleness_hours * (1.0 + math.log2(1.0 + job.demand))

    def take_batch(
        self,
        now_hours: float,
        staleness_of: Callable[[Key], Optional[float]],
    ) -> List[ResolutionJob]:
        """Jobs to run this tick, highest priority first, within budget.

        ``staleness_of`` maps a key to the age (hours) of its current
        store entry, or ``None`` when the store holds nothing — cold
        keys get :data:`COLD_STALENESS_HOURS`.
        """
        accrued = self.budget_loads_per_hour * self.batch_period_hours
        self._credit = min(self._credit + accrued, self._credit_cap)
        self.counters.budget_offered += accrued

        ranked = []
        for key in sorted(self._pending):
            job = self._pending[key]
            staleness = staleness_of(key)
            if staleness is None:
                staleness = COLD_STALENESS_HOURS
            ranked.append((-self.priority(job, staleness), key, job))
        ranked.sort()

        self.counters.pending_peak = max(
            self.counters.pending_peak, len(self._pending)
        )
        batch: List[ResolutionJob] = []
        for _, key, job in ranked:
            if self._credit < self.loads_per_job:
                break
            self._credit -= self.loads_per_job
            del self._pending[key]
            self._deferred_seen.discard(key)
            batch.append(job)
        self.counters.executed += len(batch)
        newly_deferred = [
            key for key in self._pending if key not in self._deferred_seen
        ]
        self.counters.deferred += len(newly_deferred)
        self._deferred_seen.update(newly_deferred)
        self.counters.loads_spent += len(batch) * self.loads_per_job
        return batch

"""Tests for the per-domain cookie jar (the security model's witness)."""

from repro.browser.cookies import CookieJar


class TestCookieJar:
    def test_cookie_minted_per_domain(self):
        jar = CookieJar("alice")
        cookie = jar.cookie_for("a.com")
        assert "alice" in cookie
        assert cookie.endswith("@a.com")

    def test_stable_across_requests(self):
        jar = CookieJar("alice")
        assert jar.cookie_for("a.com") == jar.cookie_for("a.com")

    def test_domains_tracked(self):
        jar = CookieJar("alice")
        jar.cookie_for("a.com")
        jar.cookie_for("b.com")
        assert jar.domains_shared_with == {"a.com", "b.com"}

    def test_no_leakage_by_construction(self):
        jar = CookieJar("alice")
        jar.cookie_for("a.com")
        jar.cookie_for("b.com")
        assert not jar.leaked_across_domains()

    def test_distinct_users_distinct_cookies(self):
        assert CookieJar("alice").cookie_for("a.com") != CookieJar(
            "bob"
        ).cookie_for("a.com")

"""Network profiles beyond the paper's LTE baseline.

Sec 4.3 notes that Vroom's scheduler is tailored to a state-of-the-art
phone on LTE, where the CPU is the bottleneck, and that "alternate
scheduling strategies will likely be necessary in settings where either
network bandwidth ... or latency ... is the bottleneck".  These profiles
let the benchmarks probe exactly those regimes: a loaded cell (bandwidth
bound), 3G and 2G/EDGE (latency bound), and fast Wi-Fi.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.net.http import HttpVersion, NetworkConfig
from repro.net.link import StreamScheduling


@dataclass(frozen=True)
class NetworkProfile:
    """Named last-mile characteristics."""

    name: str
    downlink_bps: float
    uplink_bps: float
    rtt: float

    def config(
        self,
        version: HttpVersion = HttpVersion.HTTP2,
        h2_scheduling: StreamScheduling = StreamScheduling.FAIR,
    ) -> NetworkConfig:
        return NetworkConfig(
            version=version,
            downlink_bps=self.downlink_bps,
            uplink_bps=self.uplink_bps,
            base_rtt=self.rtt,
            h2_scheduling=h2_scheduling,
        )


PROFILES: Dict[str, NetworkProfile] = {
    # The paper's setting: Verizon LTE, excellent signal.
    "lte": NetworkProfile("lte", 10.0e6, 4.0e6, 0.070),
    # Many users sharing the cell: bandwidth becomes the bottleneck.
    "loaded-lte": NetworkProfile("loaded-lte", 2.0e6, 0.8e6, 0.090),
    # HSPA-era 3G: latency dominates.
    "3g": NetworkProfile("3g", 3.0e6, 1.0e6, 0.250),
    # EDGE: both starved.
    "2g": NetworkProfile("2g", 0.24e6, 0.12e6, 0.600),
    # Home Wi-Fi / future 5G-ish: the CPU is overwhelmingly the limit.
    "wifi": NetworkProfile("wifi", 50.0e6, 20.0e6, 0.020),
}


def profile(name: str) -> NetworkProfile:
    try:
        return PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown network profile {name!r}; "
            f"choose from {sorted(PROFILES)}"
        ) from None

"""Unit tests for the incremental document parser state machine."""

from typing import Callable, List

from repro.browser.parser import DocumentParse, static_refs
from repro.net.simulator import Simulator
from repro.pages import markup
from repro.pages.dynamics import LoadStamp
from repro.pages.page import PageBlueprint
from repro.pages.resources import Discovery, ResourceSpec, ResourceType

STAMP = LoadStamp(when_hours=5.0)


def build_doc(children_specs):
    page = PageBlueprint(name="pdoc", root="root")
    page.add(
        ResourceSpec(
            name="root",
            rtype=ResourceType.HTML,
            domain="a.com",
            size=20_000,
        )
    )
    for spec in children_specs:
        page.add(spec)
    page.validate()
    return page.materialize(STAMP).root


def child(name, rtype, position, **kw):
    return ResourceSpec(
        name=name,
        rtype=rtype,
        domain="a.com",
        size=kw.pop("size", 3_000),
        parent="root",
        position=position,
        **kw,
    )


class FakeEnvironment:
    """Deterministic instant-everything environment for the parser."""

    def __init__(self, doc, *, fetched=(), css_ready=True):
        self.sim = Simulator()
        self.doc = doc
        self.events: List[str] = []
        self.fetched = set(fetched)
        self.css_ready = css_ready
        self.completed = False
        self.parse = DocumentParse(
            doc,
            parse_time=lambda nbytes: nbytes * 1e-6,
            submit_cpu=self._submit,
            wait_for_bytes=self._wait_bytes,
            wait_for_fetch=self._wait_fetch,
            wait_for_css=self._wait_css,
            execute_script=self._execute,
            on_complete=self._done,
        )

    def _submit(self, duration: float, on_done: Callable[[], None]) -> None:
        self.sim.schedule(duration, on_done)

    def _wait_bytes(self, doc, offset, callback):
        self.events.append(f"bytes:{offset}")
        self.sim.call_soon(callback)

    def _wait_fetch(self, resource, callback):
        self.events.append(f"fetch:{resource.name}")
        self.sim.call_soon(callback)

    def _wait_css(self, sheets, callback):
        self.events.append(f"css:{len(sheets)}")
        self.sim.call_soon(callback)

    def _execute(self, resource, callback):
        self.events.append(f"exec:{resource.name}")
        self.sim.call_soon(callback)

    def _done(self, parse):
        self.completed = True

    def run(self):
        self.parse.start()
        self.sim.run()


class TestStaticRefs:
    def test_refs_match_markup_offsets(self):
        doc = build_doc(
            [
                child("i1", ResourceType.IMAGE, 0.2),
                child("j1", ResourceType.JS, 0.5),
            ]
        )
        refs = static_refs(doc)
        pairs = dict(markup.extract_urls_with_offsets(doc.body))
        for ref in refs:
            assert ref.byte_offset == pairs[ref.child.url]

    def test_refs_sorted(self):
        doc = build_doc(
            [
                child("late", ResourceType.IMAGE, 0.8),
                child("early", ResourceType.IMAGE, 0.1),
            ]
        )
        refs = static_refs(doc)
        assert [r.child.name for r in refs] == ["early", "late"]

    def test_script_computed_children_excluded(self):
        doc = build_doc(
            [
                child("j1", ResourceType.JS, 0.5),
                ResourceSpec(
                    name="dyn",
                    rtype=ResourceType.IMAGE,
                    domain="a.com",
                    size=100,
                    parent="j1",
                    discovery=Discovery.SCRIPT_COMPUTED,
                ),
            ]
        )
        refs = static_refs(doc)
        assert all(r.child.name != "dyn" for r in refs)


class TestBlockingCss:
    def test_blocking_css_before_position(self):
        doc = build_doc(
            [
                child("css_early", ResourceType.CSS, 0.1),
                child("css_late", ResourceType.CSS, 0.9),
                child("js_mid", ResourceType.JS, 0.5),
            ]
        )
        env = FakeEnvironment(doc)
        js_ref = next(
            r for r in env.parse.refs if r.child.name == "js_mid"
        )
        blocking = env.parse.blocking_css_before(js_ref.byte_offset)
        names = [sheet.name for sheet in blocking]
        assert names == ["css_early"]

    def test_all_blocking_css(self):
        doc = build_doc(
            [
                child("c1", ResourceType.CSS, 0.1),
                child("c2", ResourceType.CSS, 0.9),
            ]
        )
        env = FakeEnvironment(doc)
        assert len(env.parse.all_blocking_css()) == 2


class TestStateMachine:
    def test_sync_script_sequence(self):
        doc = build_doc(
            [
                child("css0", ResourceType.CSS, 0.1),
                child("sync", ResourceType.JS, 0.5),
            ]
        )
        env = FakeEnvironment(doc)
        env.run()
        assert env.completed
        fetch_index = env.events.index("fetch:sync")
        css_index = env.events.index("css:1")
        exec_index = env.events.index("exec:sync")
        assert fetch_index < css_index < exec_index

    def test_async_script_never_blocks(self):
        doc = build_doc(
            [child("ajs", ResourceType.JS, 0.5, exec_async=True)]
        )
        env = FakeEnvironment(doc)
        env.run()
        assert env.completed
        assert "fetch:ajs" not in env.events
        assert "exec:ajs" not in env.events

    def test_nonblocking_mode_skips_sync_waits(self):
        doc = build_doc([child("sync", ResourceType.JS, 0.5)])
        env = FakeEnvironment(doc)
        env.parse.nonblocking_scripts = True
        env.run()
        assert env.completed
        assert "fetch:sync" not in env.events

    def test_media_never_blocks(self):
        doc = build_doc(
            [
                child("img", ResourceType.IMAGE, 0.3),
                child("vid", ResourceType.VIDEO, 0.6),
            ]
        )
        env = FakeEnvironment(doc)
        env.run()
        assert env.completed
        assert not any(e.startswith("fetch:") for e in env.events)

    def test_parse_requests_bytes_in_order(self):
        doc = build_doc(
            [
                child("a", ResourceType.IMAGE, 0.2),
                child("b", ResourceType.IMAGE, 0.6),
            ]
        )
        env = FakeEnvironment(doc)
        env.run()
        byte_offsets = [
            int(event.split(":")[1])
            for event in env.events
            if event.startswith("bytes:")
        ]
        assert byte_offsets == sorted(byte_offsets)
        assert byte_offsets[-1] == doc.size

    def test_start_is_idempotent(self):
        doc = build_doc([child("img", ResourceType.IMAGE, 0.5)])
        env = FakeEnvironment(doc)
        env.parse.start()
        env.parse.start()
        env.sim.run()
        assert env.completed
        # Only one terminal byte request despite the double start.
        assert env.events.count(f"bytes:{doc.size}") == 1

    def test_empty_document(self):
        doc = build_doc([])
        env = FakeEnvironment(doc)
        env.run()
        assert env.completed

"""Accuracy of server-side dependency resolution (paper Sec 6.2, Fig 21).

The paper partitions the URLs of any load into a *predictable* and an
*unpredictable* subset: unpredictable URLs are those that differ between
back-to-back loads, and Vroom deliberately leaves them for the client to
discover.  The evaluation universe is "resources derived from HTML minus
those derived from embedded iframes" — what a server could conceivably
return in response to an HTML request.

False negatives = predictable URLs the server failed to identify.
False positives = returned URLs outside the predictable subset.
Both are reported as fractions of the predictable subset's size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

from repro.core.resolver import ResolutionStrategy, VroomResolver
from repro.pages.dynamics import LoadStamp
from repro.pages.page import PageBlueprint, PageSnapshot


def hintable_universe(snapshot: PageSnapshot) -> List:
    """Resources a server could return for this load's HTML requests.

    Union of every document's hintable descendants (iframe-derived
    content excluded, matching the paper's definition).
    """
    seen = {}
    for doc in snapshot.documents():
        if doc.parent is not None:
            continue  # embedded documents' subtrees are out of scope
        for resource in snapshot.hintable_descendants(doc):
            seen.setdefault(resource.url, resource)
    return list(seen.values())


def predictable_partition(
    page: PageBlueprint, stamp: LoadStamp
) -> Tuple[Set[str], Set[str], PageSnapshot]:
    """(predictable URLs, unpredictable URLs, the load snapshot).

    A URL is predictable iff a back-to-back load (same instant, fresh
    nonce) fetches it too.
    """
    load = page.materialize(stamp)
    b2b = page.materialize(stamp.back_to_back())
    universe = {resource.url for resource in hintable_universe(load)}
    b2b_urls = set(b2b.urls())
    predictable = {url for url in universe if url in b2b_urls}
    return predictable, universe - predictable, load


@dataclass
class AccuracyResult:
    """FP/FN rates for one strategy on one page load."""

    page: str
    strategy: ResolutionStrategy
    predictable_count: int
    false_negatives: int
    false_positives: int

    @property
    def fn_rate(self) -> float:
        if self.predictable_count == 0:
            return 0.0
        return self.false_negatives / self.predictable_count

    @property
    def fp_rate(self) -> float:
        if self.predictable_count == 0:
            return 0.0
        return self.false_positives / self.predictable_count


def returned_urls(
    resolver: VroomResolver, snapshot: PageSnapshot, device_class: str
) -> Set[str]:
    """Everything the servers would return across the load's top-level
    HTML requests (root document; embedded documents' own hints describe
    content the paper excludes from this analysis)."""
    urls: Set[str] = set()
    for doc in snapshot.documents():
        if doc.parent is not None:
            continue
        urls |= resolver.dependency_urls(
            doc,
            as_of_hours=snapshot.stamp.when_hours,
            device_class=device_class,
        )
    return urls


def score_strategy(
    page: PageBlueprint,
    stamp: LoadStamp,
    strategy: ResolutionStrategy,
) -> AccuracyResult:
    """FP/FN of one resolution strategy against one client load."""
    predictable, _unpredictable, load = predictable_partition(page, stamp)
    resolver = VroomResolver(page, strategy=strategy)
    returned = returned_urls(resolver, load, stamp.device_class)
    false_negatives = len(predictable - returned)
    false_positives = len(returned - predictable)
    return AccuracyResult(
        page=page.name,
        strategy=strategy,
        predictable_count=len(predictable),
        false_negatives=false_negatives,
        false_positives=false_positives,
    )


def predictable_share(
    page: PageBlueprint, stamp: LoadStamp
) -> Tuple[float, float]:
    """(count share, byte share) of the predictable subset (Fig 21a)."""
    predictable, unpredictable, load = predictable_partition(page, stamp)
    by_url = load.by_url()
    total = len(predictable) + len(unpredictable)
    if total == 0:
        return 1.0, 1.0
    pred_bytes = sum(by_url[url].size for url in predictable if url in by_url)
    unpred_bytes = sum(
        by_url[url].size for url in unpredictable if url in by_url
    )
    byte_total = pred_bytes + unpred_bytes
    return (
        len(predictable) / total,
        pred_bytes / byte_total if byte_total else 1.0,
    )

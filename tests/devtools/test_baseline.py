"""Baseline semantics: matching, staleness, persistence."""

from repro.devtools.baseline import Baseline, BaselineEntry
from repro.devtools.findings import Finding


def _finding(code="DET101", path="net/link.py", line=10, message="msg",
             occurrence=0):
    return Finding(code=code, path=path, line=line, message=message,
                   occurrence=occurrence)


def _entry(finding, reason="known debt"):
    return BaselineEntry(
        path=finding.path,
        code=finding.code,
        message=finding.message,
        occurrence=finding.occurrence,
        reason=reason,
    )


def test_partition_splits_new_suppressed_stale():
    known = _finding()
    fresh = _finding(code="DET103", line=20, message="other")
    gone = _finding(code="PUR201", path="core/x.py", message="paid off")
    baseline = Baseline(entries=[_entry(known), _entry(gone)])
    new, suppressed, stale = baseline.partition([known, fresh])
    assert new == [fresh]
    assert suppressed == [known]
    assert [entry.key for entry in stale] == [_entry(gone).key]


def test_matching_ignores_line_numbers():
    """Moving code around must not churn the baseline."""
    baseline = Baseline(entries=[_entry(_finding(line=10))])
    new, suppressed, stale = baseline.partition([_finding(line=99)])
    assert not new and not stale
    assert len(suppressed) == 1


def test_occurrences_distinguish_duplicate_violations():
    first = _finding(occurrence=0)
    second = _finding(line=11, occurrence=1)
    baseline = Baseline(entries=[_entry(first)])
    new, suppressed, stale = baseline.partition([first, second])
    assert new == [second]
    assert suppressed == [first]
    assert not stale


def test_save_load_roundtrip(tmp_path):
    path = tmp_path / "baseline.json"
    original = Baseline(
        entries=[
            _entry(_finding(), reason="memo key only"),
            _entry(_finding(code="PUR201", path="pages/io.py",
                            message="file write"), reason="cli boundary"),
        ]
    )
    original.save(path)
    loaded = Baseline.load(path)
    assert loaded.entries == original.entries


def test_load_missing_file_is_empty_baseline(tmp_path):
    baseline = Baseline.load(tmp_path / "absent.json")
    assert baseline.entries == []
    new, suppressed, stale = baseline.partition([_finding()])
    assert len(new) == 1 and not suppressed and not stale


def test_from_findings_stamps_reason():
    baseline = Baseline.from_findings([_finding()], reason="seeded")
    assert [entry.reason for entry in baseline.entries] == ["seeded"]
    assert baseline.entries[0].key == _finding().key

#!/usr/bin/env python3
"""Quickstart: load one page with and without Vroom.

Generates a synthetic News-site landing page, records it into the replay
harness, then loads it three ways — HTTP/1.1, plain HTTP/2, and Vroom —
and prints the page-load metrics side by side.

Run:  python examples/quickstart.py
"""

from repro import (
    LoadStamp,
    news_sports_corpus,
    record_snapshot,
    run_config,
)


def main() -> None:
    # A deterministic synthetic page (~150 resources, ~30 domains).
    page = news_sports_corpus(count=1)[0]

    # Materialise one concrete load of it: a Nexus 6 user at hour 1000.
    stamp = LoadStamp(when_hours=1000.0, device="nexus6", user="alice")
    snapshot = page.materialize(stamp)
    print(
        f"page {page.name!r}: {len(snapshot.all_resources())} resources, "
        f"{snapshot.total_bytes() / 1e6:.2f} MB across "
        f"{len(snapshot.domains())} domains"
    )

    # Record it once (the Mahimahi step), then replay under each config.
    store = record_snapshot(snapshot)
    print(f"{'config':<12} {'PLT':>7} {'AFT':>7} {'SpeedIdx':>9}")
    for config in ("http1", "http2", "vroom"):
        metrics = run_config(config, page, snapshot, store)
        print(
            f"{config:<12} {metrics.plt:6.2f}s {metrics.aft:6.2f}s "
            f"{metrics.speed_index:8.0f}"
        )

    vroom = run_config("vroom", page, snapshot, store)
    http2 = run_config("http2", page, snapshot, store)
    saved = http2.plt - vroom.plt
    print(
        f"\nVroom saves {saved:.2f}s on this page "
        f"({saved / http2.plt:.0%} of the HTTP/2 load time)."
    )
    print(
        "discovery of all resources finished at "
        f"{vroom.discovery_complete_at():.2f}s with Vroom vs "
        f"{http2.discovery_complete_at():.2f}s with HTTP/2"
    )


if __name__ == "__main__":
    main()

"""Unit tests for the statistics helpers."""

import pytest

from repro.analysis.stats import Cdf, median, percentile, quartiles


class TestPercentile:
    def test_median_odd(self):
        assert median([3.0, 1.0, 2.0]) == 2.0

    def test_median_even_interpolates(self):
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5

    def test_extremes(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)

    def test_single_value(self):
        assert percentile([7.0], 0.3) == 7.0

    def test_quartiles_ordered(self):
        q1, q2, q3 = quartiles(list(range(100)))
        assert q1 < q2 < q3


class TestCdf:
    def test_at_is_monotone(self):
        cdf = Cdf([1.0, 2.0, 3.0, 4.0])
        fractions = [cdf.at(x) for x in (0.5, 1.5, 2.5, 3.5, 4.5)]
        assert fractions == sorted(fractions)
        assert fractions[0] == 0.0
        assert fractions[-1] == 1.0

    def test_quantile_median(self):
        assert Cdf([1.0, 2.0, 3.0]).median == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Cdf([])

    def test_points_cover_range(self):
        cdf = Cdf(list(range(50)))
        points = cdf.points(steps=10)
        assert points[-1] == (49, 1.0)
        fractions = [fraction for _, fraction in points]
        assert fractions == sorted(fractions)

    def test_render_is_text(self):
        text = Cdf([1.0, 2.0]).render("demo")
        assert "demo" in text
        assert "|" in text

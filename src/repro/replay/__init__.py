"""Record-and-replay harness (the Mahimahi stand-in).

Recording walks one materialised load of a page and stores every
request/response pair plus the per-domain RTT observed at record time.
Replaying builds one :class:`~repro.net.origin.OriginServer` per domain
that serves exactly the recorded bytes with the recorded latencies —
optionally decorated by a policy layer (Vroom, push strawmen) that adds
hints and pushes to responses.
"""

from repro.replay.store import RecordedResponse, ReplayStore
from repro.replay.recorder import record_snapshot
from repro.replay.replayer import build_servers

__all__ = [
    "RecordedResponse",
    "ReplayStore",
    "record_snapshot",
    "build_servers",
]

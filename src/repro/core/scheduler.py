"""Vroom's client-side staged request scheduler (Secs 4.3 and 5.2).

The scheduler consumes dependency hints from response headers and fetches
in three stages: ``Link preload`` URLs immediately and in processing
order, ``x-semi-important`` once every known high-priority URL has been
received, and ``x-unimportant`` once the semi-important stage drains too.
Resources the parser needs *right now* (discovered locally) always fetch
immediately regardless of stage — the stages only gate hint-driven
prefetches.

The reference implementation is a JavaScript scheduler injected at the top
of the page (Sec 5.2); because JavaScript is single-threaded, stage
transitions only happen when the main thread is idle.  ``js_single_thread``
reproduces that delay; turning it off models the scheduler living inside
the browser (the paper's "future work" variant).
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro import audit
from repro.browser.engine import FetchPolicy, network_priority
from repro.core.hints import DependencyHint, HintBundle
from repro.net.http import Fetch
from repro.pages.resources import Priority

#: Network priority used for hint-driven prefetches, by stage.
_STAGE_NET_PRIORITY = {
    Priority.PRELOAD: 1.0,
    Priority.SEMI_IMPORTANT: 2.5,
    Priority.UNIMPORTANT: 4.5,
}


class VroomScheduler(FetchPolicy):
    """Staged, hint-driven fetch policy."""

    def __init__(self, js_single_thread: bool = True):
        self.js_single_thread = js_single_thread
        #: Hinted URLs by priority class, in arrival (processing) order.
        self._hinted: Dict[Priority, List[str]] = {
            Priority.PRELOAD: [],
            Priority.SEMI_IMPORTANT: [],
            Priority.UNIMPORTANT: [],
        }
        self._seen_hints: Set[str] = set()
        #: url -> stage the hint arrived with (audit: the stage gate a
        #: speculative prefetch of that url must wait for).
        self._hint_stage: Dict[str, Priority] = {}
        self._fetched: Set[str] = set()
        self._requested: Set[str] = set()
        self._failed: Set[str] = set()
        self._stage = Priority.PRELOAD
        self._stage_check_pending = False
        #: Stage progression is gated until the root's headers have been
        #: processed: before that the preload hint list is empty, so
        #: ``_stage_complete`` would be vacuously true and the very first
        #: ``on_fetched`` could sail past PRELOAD with the hints still in
        #: flight.  The root settling any other way (cache hit, fetched,
        #: terminal failure) opens the gate too — no hints are coming.
        self._root_settled = False

    # -- FetchPolicy interface ---------------------------------------------------

    def on_discovered(self, url: str, via: str) -> None:
        """Locally discovered resources are needed now: fetch immediately."""
        if via in ("hint",):
            return
        resource = self.engine.snapshot_urls.get(url)
        self._request(url, network_priority(resource))

    def ensure_fetch(self, url: str) -> None:
        resource = self.engine.snapshot_urls.get(url)
        self._request(url, network_priority(resource))

    def on_headers(self, fetch: Fetch) -> None:
        """Dependency hints ride response headers of HTML objects."""
        if fetch.url == self.engine.snapshot.root.url:
            self._settle_root()
        response = fetch.response
        if response is None or not response.hints:
            return
        bundle = _as_bundle(fetch.url, response.hints)
        for hint in bundle:
            if hint.url in self._seen_hints:
                continue
            self._seen_hints.add(hint.url)
            self._hint_stage[hint.url] = hint.priority
            self._hinted[hint.priority].append(hint.url)
            # Hints reveal every domain the load will touch; start the
            # handshakes now so later stages find warm connections.
            self.engine.client.preconnect(hint.url.partition("/")[0])
            state = self.engine.state_of(hint.url)
            if state.timeline.discovered_at is None:
                state.timeline.discovered_at = self.engine.sim.now
                state.timeline.discovered_via = "hint"
                state.timeline.discovered_from = fetch.url
        self._pump()

    def on_fetched(self, url: str) -> None:
        if url == self.engine.snapshot.root.url:
            self._settle_root()
        self._fetched.add(url)
        self._schedule_stage_check()

    def on_fetch_failed(self, url: str) -> None:
        """A failed/timed-out fetch counts as settled: stages never wedge
        on a URL whose bytes will not arrive.  Dropping it from the
        requested set lets a later local reference re-request it, while
        ``_failed`` keeps ``_pump`` from re-issuing the same speculative
        hint fetch — degradation falls back to local discovery instead of
        hammering a dead prefetch."""
        if url == self.engine.snapshot.root.url:
            self._settle_root()
        self._requested.discard(url)
        self._fetched.add(url)
        self._failed.add(url)
        self._schedule_stage_check()

    # -- staging ----------------------------------------------------------------

    def _settle_root(self) -> None:
        if not self._root_settled:
            self._root_settled = True
            self._schedule_stage_check()

    def _request(
        self, url: str, priority: float, speculative: bool = False
    ) -> None:
        if url in self._requested:
            return
        if speculative and audit.ENABLED:
            hint_stage = self._hint_stage.get(url)
            if hint_stage is not None:
                audit.stage_gate(
                    int(self._stage),
                    int(hint_stage),
                    url,
                    self._root_settled,
                )
        self._requested.add(url)
        self.engine.start_fetch(url, priority=priority)

    def _pump(self) -> None:
        """Issue hint-driven fetches allowed by the current stage."""
        stages = [Priority.PRELOAD]
        if self._stage >= Priority.SEMI_IMPORTANT:
            stages.append(Priority.SEMI_IMPORTANT)
        if self._stage >= Priority.UNIMPORTANT:
            stages.append(Priority.UNIMPORTANT)
        for stage in stages:
            for url in self._hinted[stage]:
                if url in self._failed:
                    continue
                self._request(
                    url, _STAGE_NET_PRIORITY[stage], speculative=True
                )

    def _stage_complete(self, stage: Priority) -> bool:
        """All currently known URLs of ``stage`` have been received."""
        return all(url in self._fetched for url in self._hinted[stage])

    def _schedule_stage_check(self) -> None:
        """Advance stages; with a JS scheduler this waits for CPU idle."""
        if self._stage_check_pending:
            return
        self._stage_check_pending = True
        if self.js_single_thread:
            self.engine.cpu.between_tasks(self._stage_check)
        else:
            self.engine.sim.call_soon(self._stage_check)

    def _stage_check(self) -> None:
        self._stage_check_pending = False
        if not self._root_settled:
            return
        entry_stage = self._stage
        advanced = False
        if self._stage is Priority.PRELOAD and self._stage_complete(
            Priority.PRELOAD
        ):
            self._stage = Priority.SEMI_IMPORTANT
            advanced = True
        if self._stage is Priority.SEMI_IMPORTANT and self._stage_complete(
            Priority.SEMI_IMPORTANT
        ):
            self._stage = Priority.UNIMPORTANT
            advanced = True
        if advanced:
            if audit.ENABLED:
                audit.stage_transition(int(entry_stage), int(self._stage))
            self._pump()

    # -- introspection (used by tests) ------------------------------------------

    @property
    def stage(self) -> Priority:
        return self._stage

    def hinted_urls(self) -> Set[str]:
        return set(self._seen_hints)


class TwoStageScheduler(VroomScheduler):
    """Ablation: collapse Table 1's taxonomy to two classes.

    Semi-important resources ride with the preload stage; only
    unimportant content is held back.  Measures what the middle class
    buys — async scripts are processable, so pulling them forward steals
    bandwidth from the parser-blocking set.
    """

    def on_headers(self, fetch: Fetch) -> None:
        response = fetch.response
        if response is not None and response.hints:
            promoted = []
            for hint in _as_bundle(fetch.url, response.hints):
                if hint.priority is Priority.SEMI_IMPORTANT:
                    hint = DependencyHint(
                        url=hint.url,
                        priority=Priority.PRELOAD,
                        order=hint.order + 5_000,  # after true preloads
                        size_estimate=hint.size_estimate,
                    )
                promoted.append(hint)
            response = type(response)(
                url=response.url,
                size=response.size,
                think_time=response.think_time,
                hints=promoted,
                pushes=response.pushes,
                meta=response.meta,
                cacheable=response.cacheable,
                error=response.error,
            )
            fetch.response = response
        # Always defer to the base class: hintless headers still settle
        # the root and open the stage gate.
        super().on_headers(fetch)


class FetchAsapScheduler(FetchPolicy):
    """The "Fetch ASAP" strawman: fetch every hint the moment it arrives."""

    def on_headers(self, fetch: Fetch) -> None:
        response = fetch.response
        if response is None or not response.hints:
            return
        for hint in _as_bundle(fetch.url, response.hints):
            state = self.engine.state_of(hint.url)
            if state.timeline.discovered_at is None:
                state.timeline.discovered_at = self.engine.sim.now
                state.timeline.discovered_via = "hint"
                state.timeline.discovered_from = fetch.url
            resource = self.engine.snapshot_urls.get(hint.url)
            self.engine.start_fetch(
                hint.url, priority=network_priority(resource)
            )


def _as_bundle(source_url: str, hints: List) -> HintBundle:
    """Response.hints is either a HintBundle or a list of DependencyHint."""
    if isinstance(hints, HintBundle):
        return hints
    bundle = HintBundle(source_url=source_url)
    for hint in hints:
        if not isinstance(hint, DependencyHint):
            raise TypeError(f"unexpected hint object {hint!r}")
        bundle.add(hint)
    return bundle

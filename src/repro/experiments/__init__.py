"""Experiment harness and per-figure regeneration functions."""

from repro.experiments.harness import (
    ExperimentRun,
    load_once,
    sweep_configs,
)
from repro.experiments import figures

__all__ = ["ExperimentRun", "load_once", "sweep_configs", "figures"]

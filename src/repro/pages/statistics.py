"""Corpus statistics: verifying that synthetic pages look like the web.

The reproduction's external validity rests on the corpus matching the
distributions the paper cites (HTTP Archive page weight/mix, Butkiewicz
et al.'s complexity measurements).  This module computes those statistics
for any corpus so tests and benches can check them, and so users tuning
`CorpusProfile`s can see what they produced.
"""

from __future__ import annotations

from dataclasses import dataclass
# The stdlib median (average of the middle pair) agrees with the
# linear-interpolated percentile(…, 0.5) used by the analysis layer, and
# using it keeps this sim-layer module from depending on repro.analysis.
from statistics import median
from typing import Dict, Iterable, List, Optional

from repro.pages.dynamics import LoadStamp
from repro.pages.page import PageBlueprint
from repro.pages.resources import Discovery, ResourceType


@dataclass
class CorpusStatistics:
    """Aggregate statistics over one corpus at one load stamp."""

    pages: int
    resource_count_median: float
    total_bytes_median: float
    processable_byte_share_median: float
    domain_count_median: float
    max_chain_depth_median: float
    iframe_count_median: float
    type_mix: Dict[str, float]          # share of resource count by type
    discovery_mix: Dict[str, float]     # share by discovery channel
    script_computed_share: float
    async_script_share: float

    def summary(self) -> str:
        lines = [
            f"pages={self.pages}",
            f"resources/page (median)      {self.resource_count_median:.0f}",
            f"bytes/page (median)          {self.total_bytes_median / 1e6:.2f} MB",
            f"processable byte share       {self.processable_byte_share_median:.0%}",
            f"domains/page (median)        {self.domain_count_median:.0f}",
            f"max chain depth (median)     {self.max_chain_depth_median:.0f}",
            f"iframes/page (median)        {self.iframe_count_median:.0f}",
            f"script-computed share        {self.script_computed_share:.0%}",
            f"async share among scripts    {self.async_script_share:.0%}",
        ]
        mix = ", ".join(
            f"{name}:{share:.0%}" for name, share in self.type_mix.items()
        )
        lines.append(f"type mix: {mix}")
        return "\n".join(lines)


def _chain_depth(page: PageBlueprint, name: str) -> int:
    depth = 0
    node: Optional[str] = name
    while node is not None:
        node = page.specs[node].parent
        depth += 1
    return depth


def corpus_statistics(
    pages: Iterable[PageBlueprint],
    stamp: Optional[LoadStamp] = None,
) -> CorpusStatistics:
    stamp = stamp or LoadStamp(when_hours=500.0)
    pages = list(pages)
    counts: List[float] = []
    bytes_total: List[float] = []
    processable_share: List[float] = []
    domains: List[float] = []
    depths: List[float] = []
    iframes: List[float] = []
    type_counts: Dict[str, int] = {}
    discovery_counts: Dict[str, int] = {}
    scripts = async_scripts = 0
    computed = total = 0

    for page in pages:
        snapshot = page.materialize(stamp)
        resources = snapshot.all_resources()
        counts.append(len(resources))
        bytes_total.append(snapshot.total_bytes())
        processable_share.append(
            snapshot.processable_bytes() / snapshot.total_bytes()
        )
        domains.append(len(snapshot.domains()))
        depths.append(
            max(_chain_depth(page, spec) for spec in page.specs)
        )
        iframes.append(
            sum(1 for doc in snapshot.documents() if doc.parent is not None)
        )
        for resource in resources:
            total += 1
            type_counts[resource.rtype.value] = (
                type_counts.get(resource.rtype.value, 0) + 1
            )
            discovery_counts[resource.spec.discovery.value] = (
                discovery_counts.get(resource.spec.discovery.value, 0) + 1
            )
            if resource.spec.discovery is Discovery.SCRIPT_COMPUTED:
                computed += 1
            if resource.rtype is ResourceType.JS:
                scripts += 1
                if resource.spec.exec_async:
                    async_scripts += 1

    return CorpusStatistics(
        pages=len(pages),
        resource_count_median=median(counts),
        total_bytes_median=median(bytes_total),
        processable_byte_share_median=median(processable_share),
        domain_count_median=median(domains),
        max_chain_depth_median=median(depths),
        iframe_count_median=median(iframes),
        type_mix={
            name: count / total for name, count in sorted(type_counts.items())
        },
        discovery_mix={
            name: count / total
            for name, count in sorted(discovery_counts.items())
        },
        script_computed_share=computed / total if total else 0.0,
        async_script_share=async_scripts / scripts if scripts else 0.0,
    )

"""CFG6xx: config/contract drift between dataclasses, docs, and CLI.

The knob tables in ``docs/API.md`` are a promise: every field on a
registered config dataclass appears in exactly one table, with the
*code's* default.  PR 7 fixed knob/doc drift by hand; this pass makes
the promise machine-checked:

* **CFG601** — a dataclass field (or a whole registered dataclass) with
  no row in its docs knob table: an undocumented knob.
* **CFG602** — a docs row (or registered class) whose field no longer
  exists in code: documentation of a removed knob.
* **CFG603** — both sides exist but the defaults disagree — in docs, or
  between a ``cli.py`` flag and the dataclass it mirrors.

A table is bound to its dataclass by an HTML-comment marker directly
above it::

    <!-- knobs: repro.service.backend.ServiceConfig -->
    | knob | default | meaning |
    | --- | --- | --- |
    | `shards` | `8` | consistent-hash ring geometry (shard count) |

Defaults are compared *semantically*: both sides are parsed and
re-rendered with ``ast.unparse``, so ``100_000`` in docs matches
``100000`` in code and quote style never matters — but any value drift
is bit-for-bit. Fields without a default use the literal cell text
``required``.

The CLI check is narrower by design: ``cli.py`` intentionally exposes a
subset of knobs, so missing flags are fine — but a flag whose ``dest``
names a registered knob and carries an explicit ``default=`` must match
one of the dataclass defaults of that name (CFG603 otherwise).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.devtools.callgraph import ModuleInfo
from repro.devtools.findings import Finding

#: The registered contract surface: every dataclass here must have a
#: marker-bound knob table in docs/API.md.  BatchScheduler is absent on
#: purpose — it takes plain constructor kwargs, not a config dataclass.
DEFAULT_CONTRACTS: Tuple[str, ...] = (
    "repro.net.http.NetworkConfig",
    "repro.net.faults.FaultPlan",
    "repro.net.faults.ResiliencePolicy",
    "repro.scenario.spec.ScenarioSpec",
    "repro.service.backend.ServiceConfig",
    "repro.service.store.StoreConfig",
    "repro.service.workload.WorkloadConfig",
)

_MARKER = re.compile(r"<!--\s*knobs:\s*([\w.]+)\s*-->")
_ROW = re.compile(r"^\|\s*`([^`]+)`\s*\|\s*`([^`]*)`\s*\|")

#: Docs cell text for a field with no default.
REQUIRED = "required"


@dataclass(frozen=True)
class KnobField:
    """One field of a config dataclass, as the code defines it."""

    name: str
    line: int
    #: Normalised default expression text; ``None`` means required.
    default: Optional[str]


@dataclass(frozen=True)
class DocRow:
    """One row of a docs knob table."""

    name: str
    default_text: str
    line: int


def normalize_default(text: str) -> str:
    """Canonical spelling of a default expression (via ast round-trip)."""
    try:
        return ast.unparse(ast.parse(text.strip(), mode="eval"))
    except SyntaxError:
        return text.strip()


def dataclass_fields(node: ast.ClassDef) -> List[KnobField]:
    """The annotated fields of a (data)class, in declaration order."""
    fields: List[KnobField] = []
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        if not isinstance(stmt.target, ast.Name):
            continue
        name = stmt.target.id
        if name.startswith("_"):
            continue
        annotation = ast.unparse(stmt.annotation)
        if annotation.startswith("ClassVar"):
            continue
        default: Optional[str] = None
        if stmt.value is not None:
            default = normalize_default(ast.unparse(stmt.value))
        fields.append(KnobField(name=name, line=stmt.lineno, default=default))
    return fields


def parse_knob_tables(docs_text: str) -> Dict[str, List[DocRow]]:
    """``<!-- knobs: dotted.Class -->`` marker -> rows of its table."""
    tables: Dict[str, List[DocRow]] = {}
    lines = docs_text.splitlines()
    index = 0
    while index < len(lines):
        match = _MARKER.search(lines[index])
        if not match:
            index += 1
            continue
        dotted = match.group(1)
        rows: List[DocRow] = []
        index += 1
        # Tolerate blank lines between the marker and the table header.
        while index < len(lines) and not lines[index].strip():
            index += 1
        # Consume the table: header, separator, then data rows.
        seen_header = False
        while index < len(lines) and lines[index].lstrip().startswith("|"):
            row = _ROW.match(lines[index].strip())
            if row and seen_header:
                rows.append(
                    DocRow(
                        name=row.group(1),
                        default_text=row.group(2),
                        line=index + 1,
                    )
                )
            else:
                seen_header = True
            index += 1
        tables[dotted] = rows
    return tables


def _find_class(
    modules: List[ModuleInfo], dotted: str
) -> Tuple[Optional[ModuleInfo], Optional[ast.ClassDef]]:
    module_name, _, class_name = dotted.rpartition(".")
    for info in modules:
        if info.module != module_name:
            continue
        for stmt in info.tree.body:
            if isinstance(stmt, ast.ClassDef) and stmt.name == class_name:
                return info, stmt
        return info, None
    return None, None


def _argparse_defaults(
    cli: ModuleInfo,
) -> Dict[str, List[Tuple[int, str]]]:
    """dest -> [(line, normalised default text)] for every CLI flag."""
    out: Dict[str, List[Tuple[int, str]]] = {}
    for node in ast.walk(cli.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "add_argument"
        ):
            continue
        dest: Optional[str] = None
        default: Optional[str] = None
        for arg in node.args:
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                if arg.value.startswith("--"):
                    dest = arg.value.lstrip("-").replace("-", "_")
        for keyword in node.keywords:
            if keyword.arg == "dest" and isinstance(
                keyword.value, ast.Constant
            ):
                dest = str(keyword.value.value)
            elif keyword.arg == "default":
                default = normalize_default(ast.unparse(keyword.value))
        if dest is not None and default is not None:
            out.setdefault(dest, []).append((node.lineno, default))
    return out


def scan_config(
    modules: List[ModuleInfo],
    docs_text: Optional[str],
    contracts: Tuple[str, ...] = DEFAULT_CONTRACTS,
) -> List[Finding]:
    """Cross-check registered dataclasses against docs and the CLI.

    ``docs_text`` is the content of ``docs/API.md``; ``None`` (no docs
    in the linted tree) skips the docs-side checks entirely, so linting
    a bare fixture package stays silent.
    """
    findings: List[Finding] = []
    tables = parse_knob_tables(docs_text) if docs_text is not None else {}

    #: field name -> normalised defaults across every registered class,
    #: for the CLI cross-check (a flag must match *one* of them).
    code_defaults: Dict[str, List[str]] = {}

    for dotted in contracts:
        info, node = _find_class(modules, dotted)
        if info is None:
            continue  # module not part of this tree (fixture package)
        if node is None:
            findings.append(
                Finding(
                    code="CFG602",
                    path=info.path,
                    line=1,
                    message=(
                        f"registered config class `{dotted}` no longer "
                        "exists — remove it from the contract registry "
                        "and its docs/API.md table"
                    ),
                )
            )
            continue
        fields = dataclass_fields(node)
        for knob in fields:
            if knob.default is not None:
                code_defaults.setdefault(knob.name, []).append(knob.default)
        if docs_text is None:
            continue
        rows = tables.get(dotted)
        if rows is None:
            findings.append(
                Finding(
                    code="CFG601",
                    path=info.path,
                    line=node.lineno,
                    message=(
                        f"`{node.name}` has no `<!-- knobs: {dotted} -->` "
                        "table in docs/API.md — document every field"
                    ),
                )
            )
            continue
        by_name = {row.name: row for row in rows}
        for knob in fields:
            row = by_name.pop(knob.name, None)
            if row is None:
                findings.append(
                    Finding(
                        code="CFG601",
                        path=info.path,
                        line=knob.line,
                        message=(
                            f"`{node.name}.{knob.name}` missing from its "
                            "docs/API.md knob table"
                        ),
                    )
                )
                continue
            documented = (
                None
                if row.default_text.strip() == REQUIRED
                else normalize_default(row.default_text)
            )
            if documented != knob.default:
                findings.append(
                    Finding(
                        code="CFG603",
                        path=info.path,
                        line=knob.line,
                        message=(
                            f"`{node.name}.{knob.name}` default drift: "
                            f"code has `{knob.default or REQUIRED}`, "
                            f"docs/API.md line {row.line} says "
                            f"`{row.default_text}`"
                        ),
                    )
                )
        for row in by_name.values():
            findings.append(
                Finding(
                    code="CFG602",
                    path=info.path,
                    line=node.lineno,
                    message=(
                        f"docs/API.md line {row.line} documents "
                        f"`{node.name}.{row.name}` which the class no "
                        "longer defines"
                    ),
                )
            )

    # -- CLI flag surface --------------------------------------------------
    cli = next((info for info in modules if info.path == "cli.py"), None)
    if cli is not None and code_defaults:
        for dest, sites in sorted(_argparse_defaults(cli).items()):
            expected = code_defaults.get(dest)
            if expected is None:
                continue  # flag does not mirror a registered knob
            for line, default in sites:
                if default in expected or default == "None":
                    # ``default=None`` is argparse for "flag not given";
                    # the config's own default then applies downstream.
                    continue
                findings.append(
                    Finding(
                        code="CFG603",
                        path=cli.path,
                        line=line,
                        message=(
                            f"CLI flag `--{dest.replace('_', '-')}` "
                            f"default `{default}` drifts from the config "
                            f"dataclass default(s) "
                            f"{', '.join(f'`{e}`' for e in sorted(set(expected)))}"
                        ),
                    )
                )
    return findings

"""Page blueprints and materialised snapshots.

A :class:`PageBlueprint` is the timeless description of a page: the resource
specs and their parent/child structure.  :meth:`PageBlueprint.materialize`
resolves every spec under a :class:`~repro.pages.dynamics.LoadStamp` into a
:class:`PageSnapshot` — the exact set of resources one load fetches, with
URLs, sizes, bodies and a root-document processing order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.pages import markup
from repro.pages.dynamics import LoadStamp, resolve_size, resolve_url
from repro.pages.resources import (
    Discovery,
    Resource,
    ResourceSpec,
    ResourceType,
)


@dataclass
class PageBlueprint:
    """The stable structure of a page across loads."""

    name: str
    root: str
    specs: Dict[str, ResourceSpec] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._children_cache: Optional[Dict[str, List[ResourceSpec]]] = None

    def add(self, spec: ResourceSpec) -> ResourceSpec:
        if spec.name in self.specs:
            raise ValueError(f"duplicate resource name {spec.name!r}")
        if spec.parent is not None and spec.parent not in self.specs:
            raise ValueError(
                f"{spec.name!r} declares unknown parent {spec.parent!r}"
            )
        self.specs[spec.name] = spec
        self._children_cache = None
        return spec

    @property
    def root_spec(self) -> ResourceSpec:
        return self.specs[self.root]

    def children_of(self, name: str) -> List[ResourceSpec]:
        """Direct children of ``name``, sorted by (position, name).

        Memoised over the whole blueprint (dependency resolution asks
        for children hundreds of times per simulated load) and rebuilt
        on :meth:`add`.  Callers treat the result as read-only.
        """
        cache = self._children_cache
        if cache is None:
            cache = {spec_name: [] for spec_name in self.specs}
            for spec in self.specs.values():
                if spec.parent is not None:
                    cache[spec.parent].append(spec)
            for kids in cache.values():
                kids.sort(key=lambda spec: (spec.position, spec.name))
            self._children_cache = cache
        kids = cache.get(name)
        return kids if kids is not None else []

    def validate(self) -> None:
        """Check structural invariants; raises ``ValueError`` on failure."""
        if self.root not in self.specs:
            raise ValueError(f"root {self.root!r} not among specs")
        if self.specs[self.root].parent is not None:
            raise ValueError("root resource must not have a parent")
        for spec in self.specs.values():
            if spec.name == self.root:
                continue
            if spec.parent is None:
                raise ValueError(f"non-root {spec.name!r} has no parent")
            parent = self.specs[spec.parent]
            if spec.discovery is Discovery.CSS_REF:
                if parent.rtype is not ResourceType.CSS:
                    raise ValueError(
                        f"{spec.name!r}: CSS_REF child of non-CSS parent"
                    )
            elif spec.discovery is Discovery.SCRIPT_COMPUTED:
                if parent.rtype is not ResourceType.JS:
                    raise ValueError(
                        f"{spec.name!r}: SCRIPT_COMPUTED child of non-JS parent"
                    )
            else:
                if parent.rtype is not ResourceType.HTML:
                    raise ValueError(
                        f"{spec.name!r}: STATIC_MARKUP child of non-HTML parent"
                    )
        # Reject cycles: walk up from every node.
        for spec in self.specs.values():
            seen = set()
            node: Optional[str] = spec.name
            while node is not None:
                if node in seen:
                    raise ValueError(f"parent cycle involving {node!r}")
                seen.add(node)
                node = self.specs[node].parent

    def materialize(self, stamp: LoadStamp) -> "PageSnapshot":
        """Resolve every spec under ``stamp`` into a concrete snapshot."""
        resources: Dict[str, Resource] = {}
        for spec in self.specs.values():
            resources[spec.name] = Resource(
                spec=spec,
                url=resolve_url(spec, stamp),
                size=resolve_size(spec, stamp),
            )
        for name, resource in resources.items():
            for child_spec in self.children_of(name):
                child = resources[child_spec.name]
                child.parent = resource
                resource.children.append(child)

        root = resources[self.root]
        self._mark_frames(root)
        self._assign_process_order(root)
        for resource in resources.values():
            if resource.processable:
                resource.body = markup.render_body(resource)
        return PageSnapshot(
            page=self.name, stamp=stamp, root=root, resources=resources
        )

    @staticmethod
    def _mark_frames(root: Resource) -> None:
        for resource in root.descendants():
            if resource.is_document:
                resource.is_iframe_doc = True
            parent = resource.parent
            while parent is not None:
                if parent.is_document and parent.parent is not None:
                    resource.in_iframe = True
                    break
                parent = parent.parent

    @staticmethod
    def _assign_process_order(root: Resource) -> None:
        """Pre-order walk assigning the client's processing order index."""
        order = 0
        stack = [root]
        while stack:
            node = stack.pop()
            node.process_order = order
            order += 1
            stack.extend(reversed(node.children))


@dataclass
class PageSnapshot:
    """One concrete load of a page: what the client would actually fetch.

    The resource tree is fixed once :meth:`PageBlueprint.materialize`
    returns, so the pre-order walk and its derived views are computed once
    and memoised — the browser engine's discovery loop and completion
    checks hit these accessors thousands of times per simulated load.
    """

    page: str
    stamp: LoadStamp
    root: Resource
    resources: Dict[str, Resource]

    def __post_init__(self) -> None:
        self._walk_cache: Optional[List[Resource]] = None
        self._documents_cache: Optional[List[Resource]] = None

    def __iter__(self):
        return iter(self.all_resources())

    def _walk(self) -> List[Resource]:
        walk = self._walk_cache
        if walk is None:
            walk = self._walk_cache = self.root.subtree()
        return walk

    def all_resources(self) -> List[Resource]:
        return list(self._walk())

    def by_url(self) -> Dict[str, Resource]:
        return {resource.url: resource for resource in self._walk()}

    def urls(self) -> List[str]:
        return [resource.url for resource in self._walk()]

    def total_bytes(self) -> int:
        return sum(resource.size for resource in self._walk())

    def processable_bytes(self) -> int:
        return sum(
            resource.size
            for resource in self._walk()
            if resource.processable
        )

    def domains(self) -> List[str]:
        seen: Dict[str, None] = {}
        for resource in self._walk():
            seen.setdefault(resource.domain, None)
        return list(seen)

    def documents(self) -> List[Resource]:
        documents = self._documents_cache
        if documents is None:
            documents = self._documents_cache = [
                resource
                for resource in self._walk()
                if resource.is_document
            ]
        return documents

    def find(self, name: str) -> Resource:
        return self.resources[name]

    def hintable_descendants(self, doc: Resource) -> List[Resource]:
        """Descendants of ``doc`` reachable without crossing embedded HTML.

        This is the envelope a Vroom server serving ``doc`` may describe
        (Sec 4.2, Fig 10): embedded documents themselves are included, but
        nothing *derived from* them is, because their content may be
        personalised by another domain.
        """
        out: List[Resource] = []
        stack = list(reversed(doc.children))
        while stack:
            node = stack.pop()
            out.append(node)
            if node.is_document:
                continue
            stack.extend(reversed(node.children))
        return out


def shared_urls(a: PageSnapshot, b: PageSnapshot) -> List[str]:
    """URLs fetched by both snapshots (order follows ``a``)."""
    b_urls = set(b.urls())
    return [url for url in a.urls() if url in b_urls]


def merge_url_sets(snapshots: Iterable[PageSnapshot]) -> Dict[str, int]:
    """URL -> number of snapshots containing it."""
    counts: Dict[str, int] = {}
    for snapshot in snapshots:
        # dict.fromkeys deduplicates while keeping snapshot order, so the
        # result's insertion order is hash-seed independent.
        for url in dict.fromkeys(snapshot.urls()):
            counts[url] = counts.get(url, 0) + 1
    return counts

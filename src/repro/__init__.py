"""Reproduction of "Vroom: Accelerating the Mobile Web with Server-Aided
Dependency Resolution" (SIGCOMM 2017).

Quick tour of the public API::

    from repro import (
        news_sports_corpus, LoadStamp, record_snapshot, run_config,
    )

    page = news_sports_corpus(count=1)[0]
    snapshot = page.materialize(LoadStamp(when_hours=1000.0))
    store = record_snapshot(snapshot)
    baseline = run_config("http2", page, snapshot, store)
    vroom = run_config("vroom", page, snapshot, store)
    print(baseline.plt, "->", vroom.plt)

Packages:

* :mod:`repro.pages` — synthetic page substrate (blueprints, snapshots,
  markup, temporal dynamics, corpora).
* :mod:`repro.net` — discrete-event network substrate (shared LTE link
  with congestion windows, HTTP/1.1 and HTTP/2 with PUSH).
* :mod:`repro.browser` — browser model (incremental parsing, blocking
  semantics, preload scanner, CPU, cache, metrics).
* :mod:`repro.replay` — Mahimahi-style record-and-replay harness.
* :mod:`repro.core` — Vroom itself: offline+online dependency resolution,
  dependency hints, push policy, staged client scheduler.
* :mod:`repro.baselines` — HTTP baselines, push strawmen, Polaris, lower
  bounds, and the named-configuration runner.
* :mod:`repro.analysis` — CDFs, accuracy (FP/FN), persistence, device IoU.
* :mod:`repro.service` — simulated multi-tenant hint-serving backend
  (sharded dependency store, batched offline-resolution scheduler,
  Zipf/Poisson workload, end-to-end accuracy bridge).
* :mod:`repro.experiments` — one regeneration function per paper figure,
  plus the parallel sweep engine (``sweep_configs``/``run_sweep``).
"""

from repro.baselines import run_config, CONFIG_NAMES
from repro.browser import BrowserConfig, LoadMetrics, load_page
from repro.core import VroomResolver, VroomScheduler, vroom_servers
from repro.experiments import ExperimentRun, run_sweep, sweep_configs
from repro.net import HttpVersion, NetworkConfig
from repro.pages import (
    LoadStamp,
    PageBlueprint,
    PageSnapshot,
    accuracy_corpus,
    alexa_top100_corpus,
    alexa_top400_sample_corpus,
    generate_page,
    news_sports_corpus,
)
from repro.replay import build_servers, record_snapshot
from repro.replay.cache import SnapshotCache, materialize_cached
from repro.service import (
    DependencyStore,
    FleetStore,
    HintService,
    PlacementMap,
    ServiceConfig,
    ServiceReport,
    evaluate_samples,
)

__version__ = "1.0.0"

__all__ = [
    "run_config",
    "CONFIG_NAMES",
    "BrowserConfig",
    "LoadMetrics",
    "load_page",
    "VroomResolver",
    "VroomScheduler",
    "vroom_servers",
    "HttpVersion",
    "NetworkConfig",
    "LoadStamp",
    "PageBlueprint",
    "PageSnapshot",
    "accuracy_corpus",
    "alexa_top100_corpus",
    "alexa_top400_sample_corpus",
    "generate_page",
    "news_sports_corpus",
    "build_servers",
    "record_snapshot",
    "SnapshotCache",
    "materialize_cached",
    "DependencyStore",
    "FleetStore",
    "PlacementMap",
    "HintService",
    "ServiceConfig",
    "ServiceReport",
    "evaluate_samples",
    "ExperimentRun",
    "run_sweep",
    "sweep_configs",
    "__version__",
]

"""Resource-utilization experiments (the paper's Sec 3 thesis).

The paper's central argument: with today's page loads "neither the
client's CPU nor its access link is utilized to capacity", because each
blocks on the other; decoupling fetching from processing lets both run.
This experiment measures CPU and link utilization (busy fraction of the
load) per configuration — Vroom should raise CPU utilization relative to
the HTTP/2 baseline and pull the load's duration down toward the busy
time itself.
"""

from __future__ import annotations

from typing import Dict, List

from repro.baselines.configs import run_config
from repro.calibration import DEFAULT_EVAL_HOUR
from repro.pages.corpus import news_sports_corpus
from repro.pages.dynamics import LoadStamp
from repro.replay.recorder import record_snapshot

DEFAULT_CONFIGS = ("http1", "http2", "vroom")


def utilization_comparison(
    count: int = 12,
    configs=DEFAULT_CONFIGS,
) -> Dict[str, Dict[str, List[float]]]:
    """Per-config CPU and link utilization distributions."""
    stamp = LoadStamp(when_hours=DEFAULT_EVAL_HOUR)
    out: Dict[str, Dict[str, List[float]]] = {
        config: {"cpu": [], "link": []} for config in configs
    }
    for page in news_sports_corpus(count):
        snapshot = page.materialize(stamp)
        store = record_snapshot(snapshot)
        for config in configs:
            metrics = run_config(config, page, snapshot, store)
            out[config]["cpu"].append(metrics.cpu_utilization)
            out[config]["link"].append(metrics.link_utilization)
    return out

"""Lint baseline: fully-explained suppression of pre-existing findings.

The baseline is a JSON file at the repo root (``lint-baseline.json``)
listing findings that are understood and deliberately tolerated — each
entry carries a human ``reason``.  ``repro lint`` then fails only on
*new* findings or on *stale* entries (baselined violations that no
longer exist), so CI gates regressions in both directions without
blocking on known debt.

Entries match findings on ``(path, code, message, occurrence)`` — never
line numbers, so unrelated edits do not churn the file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple

from repro.devtools.findings import Finding

_Key = Tuple[str, str, str, int]


@dataclass(frozen=True)
class BaselineEntry:
    path: str
    code: str
    message: str
    occurrence: int
    reason: str

    @property
    def key(self) -> _Key:
        return (self.path, self.code, self.message, self.occurrence)

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "code": self.code,
            "message": self.message,
            "occurrence": self.occurrence,
            "reason": self.reason,
        }


@dataclass
class Baseline:
    entries: List[BaselineEntry] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Load a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        data = json.loads(path.read_text())
        entries = [
            BaselineEntry(
                path=str(entry["path"]),
                code=str(entry["code"]),
                message=str(entry["message"]),
                occurrence=int(entry.get("occurrence", 0)),
                reason=str(entry.get("reason", "")),
            )
            for entry in data.get("entries", [])
        ]
        return cls(entries=entries)

    def save(self, path: Path) -> None:
        payload = {
            "_comment": (
                "Known, explained lint findings. Every entry needs a "
                "reason; `repro lint` fails on new findings AND on stale "
                "entries, so keep this file exact."
            ),
            "entries": [entry.as_dict() for entry in self.entries],
        }
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )

    @classmethod
    def from_findings(
        cls, findings: List[Finding], reason: str
    ) -> "Baseline":
        """Baseline the given findings, all with one (mandatory) reason.

        An unexplained suppression is just a hidden finding, so there is
        deliberately no default here.
        """
        return cls(
            entries=[
                BaselineEntry(
                    path=finding.path,
                    code=finding.code,
                    message=finding.message,
                    occurrence=finding.occurrence,
                    reason=reason,
                )
                for finding in findings
            ]
        )

    def partition(
        self, findings: List[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
        """Split into (new, suppressed) findings and stale entries."""
        by_key: Dict[_Key, BaselineEntry] = {
            entry.key: entry for entry in self.entries
        }
        new: List[Finding] = []
        suppressed: List[Finding] = []
        matched = set()
        for finding in findings:
            entry = by_key.get(finding.key)
            if entry is not None:
                suppressed.append(finding)
                matched.add(entry.key)
            else:
                new.append(finding)
        stale = [
            entry for entry in self.entries if entry.key not in matched
        ]
        return new, suppressed, stale

"""Per-domain cookie jar.

Vroom's security model hinges on cookies being shared only with the domain
that set them (Sec 1, Sec 4).  The jar tracks which domains have received
the user's identity, letting tests assert that no cross-domain leakage ever
occurs in any configuration — the property proxy-based accelerators break.
"""

from __future__ import annotations

from typing import Dict, Set


class CookieJar:
    """Tracks cookie material per domain for one user."""

    def __init__(self, user: str):
        self.user = user
        self._cookies: Dict[str, str] = {}
        #: Every domain that has ever seen this user's cookie material.
        self.domains_shared_with: Set[str] = set()

    def cookie_for(self, domain: str) -> str:
        """The cookie value sent with a request to ``domain``.

        Setting is implicit: first contact mints a domain-scoped cookie.
        """
        if domain not in self._cookies:
            self._cookies[domain] = f"{self.user}@{domain}"
        self.domains_shared_with.add(domain)
        return self._cookies[domain]

    def leaked_across_domains(self) -> bool:
        """True if any domain's cookie was handed to a different domain.

        Always false by construction here; proxy-style designs would need
        to violate this API to function, which is exactly the point.
        """
        return any(
            not value.endswith("@" + domain)
            for domain, value in self._cookies.items()
        )

"""Tests for the ATF-first unimportant-hint ordering extension."""

from repro.baselines.configs import run_config
from repro.core.resolver import VroomResolver
from repro.pages.resources import Priority


class TestAtfFirstOrdering:
    def test_atf_media_leads_unimportant_hints(self, page, snapshot, stamp):
        resolver = VroomResolver(page, atf_first=True)
        bundle = resolver.hints_for(
            snapshot.root, as_of_hours=stamp.when_hours
        )
        unimportant = bundle.by_priority(Priority.UNIMPORTANT)
        by_url = snapshot.by_url()
        flags = [
            bool(
                by_url.get(hint.url)
                and by_url[hint.url].spec.above_fold
                and not by_url[hint.url].in_iframe
            )
            for hint in unimportant
        ]
        if True in flags and False in flags:
            # Every ATF entry precedes every non-ATF entry.
            assert flags.index(False) > max(
                i for i, flag in enumerate(flags) if flag
            ) or flags.index(False) > flags.index(True)

    def test_default_resolver_unchanged(self, page, snapshot, stamp):
        plain = VroomResolver(page).hints_for(
            snapshot.root, as_of_hours=stamp.when_hours
        )
        atf = VroomResolver(page, atf_first=True).hints_for(
            snapshot.root, as_of_hours=stamp.when_hours
        )
        assert set(plain.urls()) == set(atf.urls())

    def test_config_runs_and_keeps_plt(self, page, snapshot, store):
        vroom = run_config("vroom", page, snapshot, store)
        atf = run_config("vroom-atf-first", page, snapshot, store)
        assert abs(atf.plt - vroom.plt) < vroom.plt * 0.10

    def test_speed_index_not_worse(self, page, snapshot, store):
        vroom = run_config("vroom", page, snapshot, store)
        atf = run_config("vroom-atf-first", page, snapshot, store)
        assert atf.speed_index <= vroom.speed_index * 1.05

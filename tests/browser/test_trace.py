"""Tests for utilization trace sampling."""

from repro.browser.engine import BrowserConfig, load_page
from repro.replay.replayer import build_servers


def traced_load(snapshot, store, interval=0.25):
    return load_page(
        snapshot,
        build_servers(store),
        browser_config=BrowserConfig(
            when_hours=snapshot.stamp.when_hours, sample_interval=interval
        ),
    )


class TestUtilizationTrace:
    def test_trace_empty_by_default(self, page, snapshot, store):
        metrics = load_page(
            snapshot,
            build_servers(store),
            browser_config=BrowserConfig(
                when_hours=snapshot.stamp.when_hours
            ),
        )
        assert metrics.utilization_trace == []

    def test_trace_covers_load(self, snapshot, store):
        metrics = traced_load(snapshot, store)
        trace = metrics.utilization_trace
        assert trace[0][0] == 0.0
        assert trace[-1][0] >= metrics.plt - 0.5

    def test_trace_sample_spacing(self, snapshot, store):
        metrics = traced_load(snapshot, store, interval=0.5)
        times = [t for t, _, _ in metrics.utilization_trace]
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(abs(gap - 0.5) < 1e-6 for gap in gaps)

    def test_trace_shows_activity(self, snapshot, store):
        metrics = traced_load(snapshot, store)
        assert any(busy for _, busy, _ in metrics.utilization_trace)
        assert any(n > 0 for _, _, n in metrics.utilization_trace)

    def test_trace_monotone_time(self, snapshot, store):
        metrics = traced_load(snapshot, store)
        times = [t for t, _, _ in metrics.utilization_trace]
        assert times == sorted(times)

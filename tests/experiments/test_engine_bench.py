"""Contract tests for the engine micro-benchmark behind ``repro bench``."""

import pytest

from repro.experiments.engine_bench import (
    SCENARIOS,
    SMOKE_GOLDENS,
    EngineScenario,
    bench_scenario,
    smoke_check,
    smoke_counters,
    smoke_run,
)


@pytest.fixture(scope="module")
def smoke_report():
    return smoke_run()


def test_smoke_matches_pinned_goldens(smoke_report):
    """The deterministic counters equal the goldens CI asserts."""
    assert smoke_check(smoke_report) == []


def test_scenarios_and_goldens_agree():
    assert sorted(SMOKE_GOLDENS) == sorted(s.name for s in SCENARIOS)


def test_smoke_check_flags_drift(smoke_report):
    import copy

    drifted = copy.deepcopy(smoke_report)
    drifted["scenarios"][0]["counters_fast_forward"]["link_pokes"] += 1
    problems = smoke_check(drifted)
    assert len(problems) == 1
    assert "link_pokes" in problems[0]


def test_smoke_check_flags_missing_scenario(smoke_report):
    trimmed = {"scenarios": smoke_report["scenarios"][1:]}
    problems = smoke_check(trimmed)
    assert any("missing from report" in problem for problem in problems)


def test_smoke_check_flags_lost_speedup(smoke_report):
    """Dropping below the pinned floor fails the smoke job."""
    import copy

    drifted = copy.deepcopy(smoke_report)
    drifted["scenarios"][0]["wall_batched_speedup"] = 0.5
    problems = smoke_check(drifted)
    assert any("lost its wall-clock edge" in problem for problem in problems)


def test_acceptance_ratios(smoke_report):
    """The ISSUE's perf criteria, on counters only (wall-clock is not
    asserted in CI — single-repeat walls are too noisy)."""
    rows = {row["scenario"]: row for row in smoke_report["scenarios"]}
    assert rows["push-all-high-rtt"]["event_reduction"] >= 2.0
    assert rows["single-stream-drain"]["event_reduction"] >= 2.0
    # The event-driven browser's headline: the realistic page's heap
    # traffic actually collapses (was 1.003x before the scanner poll
    # was replaced by demand-driven wakeups).
    assert rows["corpus-news"]["event_reduction_event_driven"] >= 1.5
    for row in rows.values():
        assert row["bit_identical"] is True
        assert row["plt"] > 0


def test_counters_cover_all_modes(smoke_report):
    observed = smoke_counters(smoke_report)
    for scenario, counters in observed.items():
        assert counters["events_scheduled_fast_forward"] <= (
            counters["events_scheduled_event_per_tick"]
        ), scenario
        # Seq-parity: the batched executor schedules exactly the events
        # the fast-forward engine does — savings are per-event cost,
        # batch-loop absorption, never trace divergence.
        assert counters["events_scheduled_batched"] == (
            counters["events_scheduled_fast_forward"]
        ), scenario
        # The event-driven browser, by contrast, is *allowed* to shrink
        # the schedule (elided polls, kept ticks, coalesced microtasks)
        # — but never to grow it.
        assert counters["events_scheduled_event_driven"] <= (
            counters["events_scheduled_batched"]
        ), scenario


def test_batched_counters_present(smoke_report):
    rows = {row["scenario"]: row for row in smoke_report["scenarios"]}
    for scenario, row in rows.items():
        batched = row["counters_batched"]
        assert batched["link_batch_steps"] >= batched["link_batch_runs"]
        assert row["wall_batched_sec"] > 0
        assert row["wall_batched_speedup"] > 0
    # The batch loop engages hardest where fast-forward's single-stream
    # coalescer already ran, and the closed-form allocator where several
    # connections share the link.
    assert rows["single-stream-drain"]["counters_batched"][
        "link_batch_steps"
    ] > 1000
    assert rows["corpus-news"]["counters_batched"]["link_wf_fast_hits"] > 0


def test_event_driven_counters_present(smoke_report):
    rows = {row["scenario"]: row for row in smoke_report["scenarios"]}
    for scenario, row in rows.items():
        event_driven = row["counters_event_driven"]
        assert row["wall_event_driven_sec"] > 0
        assert row["wall_event_driven_speedup"] > 0
        # Legacy modes keep the demand-driven machinery inert.
        for mode in ("event_per_tick", "fast_forward", "batched"):
            legacy = row[f"counters_{mode}"]
            assert legacy["scanner_polls_elided"] == 0, (scenario, mode)
            assert legacy["link_tick_keeps"] == 0, (scenario, mode)
            assert legacy["soon_coalesced"] == 0, (scenario, mode)
    news = rows["corpus-news"]["counters_event_driven"]
    # The realistic page is where the poll wall lived: nearly every
    # grid tick is elided, and batch runs grow past PR 6's ceiling.
    assert news["scanner_polls_elided"] > 200
    assert news["soon_coalesced"] > 50
    assert news["link_batch_runs"] > (
        rows["corpus-news"]["counters_batched"]["link_batch_runs"]
    )


def test_custom_scenario_runs_and_verifies():
    """bench_scenario verifies bit-identity on arbitrary shapes, not
    just the pinned ones — the suite is reusable for new scenarios."""
    scenario = EngineScenario(
        name="tiny",
        description="tiny drain",
        kind="synthetic",
        images=1,
        image_bytes=200_000,
        base_rtt=0.05,
        loss_rate=0.0,
    )
    row = bench_scenario(scenario, repeats=1)
    assert row["bit_identical"] is True

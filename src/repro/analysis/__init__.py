"""Analysis utilities: CDFs, accuracy metrics, persistence, device overlap."""

from repro.analysis.stats import Cdf, median, percentile, quartiles
from repro.analysis.accuracy import (
    AccuracyResult,
    predictable_partition,
    score_strategy,
)
from repro.analysis.persistence import persistence_fraction
from repro.analysis.device_overlap import intersection_over_union
from repro.analysis.comparison import compare_paired, bootstrap_median_ci
from repro.analysis.critical_path import critical_path_composition
from repro.analysis.export import har_like, metrics_to_dict
from repro.analysis.waterfall import render_waterfall, summarize_phases

__all__ = [
    "Cdf",
    "median",
    "percentile",
    "quartiles",
    "AccuracyResult",
    "predictable_partition",
    "score_strategy",
    "persistence_fraction",
    "intersection_over_union",
    "compare_paired",
    "bootstrap_median_ci",
    "critical_path_composition",
    "har_like",
    "metrics_to_dict",
    "render_waterfall",
    "summarize_phases",
]

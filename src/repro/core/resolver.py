"""Combined offline + online dependency resolution (Secs 4.1-4.2).

For every HTML object a server is about to return, the resolver produces
the dependency set the server may describe to the client:

* **Envelope** — only resources derived from this document's subtree
  *without crossing embedded HTML* (Fig 10).  Content behind an iframe may
  be personalised by another domain, so the iframe URL itself is hinted
  but nothing below it.
* **Offline component** — URLs present in every recent offline load
  (the stable set), restricted to the envelope, minus anything derived
  from user-state-dependent script execution (Sec 4.2).
* **Online component** — URLs statically visible in the exact HTML body
  being served (captures fresh rotated content nonce-accurate).

The same machinery also produces the paper's strawmen: offline-only,
online-only (a full on-the-fly server load, including its *own* nonce URLs
— the false-positive source in Fig 21c) and deps-from-previous-load
(Fig 17).
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Set

from repro.core.hints import DependencyHint, HintBundle, bundle_from_hints
from repro.core.offline import SERVER_USER, OfflineResolver, StableSet
from repro.core.online import analyze_html
from repro.pages.dynamics import LoadStamp, stable_nonce
from repro.pages.page import PageBlueprint
from repro.pages.resources import (
    Priority,
    Resource,
    ResourceSpec,
    ResourceType,
    priority_of,
)


class ResolutionStrategy(enum.Enum):
    """How the server computes the dependency set to return."""

    VROOM = "vroom"                  # offline stable set + online analysis
    OFFLINE_ONLY = "offline_only"    # stable set alone
    ONLINE_ONLY = "online_only"      # full on-the-fly server load
    PREV_LOAD = "prev_load"          # everything in the single latest load
    NONE = "none"                    # no dependency information at all


class VroomResolver:
    """Per-page dependency resolver used by Vroom-compliant servers."""

    def __init__(
        self,
        page: PageBlueprint,
        strategy: ResolutionStrategy = ResolutionStrategy.VROOM,
        offline: Optional[OfflineResolver] = None,
        atf_first: bool = False,
    ):
        self.page = page
        self.strategy = strategy
        self.offline = offline or OfflineResolver(page)
        #: Extension: order above-the-fold media ahead of the rest of the
        #: x-unimportant class so visual completeness converges sooner.
        self.atf_first = atf_first
        self._envelope_cache: Dict[str, Set[str]] = {}

    # -- structural helpers ---------------------------------------------------

    def envelope_names(self, doc_name: str) -> Set[str]:
        """Spec names derived from ``doc_name`` without crossing HTML.

        Embedded documents are included; their descendants are not.
        The structure comes from the server's own loads of the page, so it
        is expressed over stable spec names, not per-load URLs.
        """
        cached = self._envelope_cache.get(doc_name)
        if cached is not None:
            return cached
        names: Set[str] = set()
        stack = [spec.name for spec in self.page.children_of(doc_name)]
        while stack:
            name = stack.pop()
            names.add(name)
            spec = self.page.specs[name]
            if spec.rtype is ResourceType.HTML:
                continue
            stack.extend(
                child.name for child in self.page.children_of(name)
            )
        self._envelope_cache[doc_name] = names
        return names

    def _user_state_derived(self) -> Set[str]:
        """Spec names whose URLs depend on user-specific script state."""
        derived: Set[str] = set()
        for spec in self.page.specs.values():
            parent = spec.parent and self.page.specs[spec.parent]
            if parent is not None and parent.user_state_script:
                derived.add(spec.name)
        return derived

    # -- hint construction ------------------------------------------------------

    def hints_for(
        self,
        doc: Resource,
        *,
        as_of_hours: float,
        device_class: str = "phone",
    ) -> HintBundle:
        """The hint bundle a server attaches to ``doc``'s response."""
        if self.strategy is ResolutionStrategy.NONE:
            return HintBundle(source_url=doc.url)
        envelope = self.envelope_names(doc.name)
        hints: List[DependencyHint] = []
        if self.strategy is ResolutionStrategy.ONLINE_ONLY:
            hints = self._online_full_load(doc, as_of_hours, device_class)
        else:
            if self.strategy is ResolutionStrategy.PREV_LOAD:
                stable = self.offline.single_prior_load(
                    as_of_hours, device_class
                )
            else:
                stable = self.offline.stable_set(as_of_hours, device_class)
            hints.extend(self._offline_hints(doc, stable, envelope))
            if self.strategy is ResolutionStrategy.VROOM:
                hints.extend(self._online_hints(doc))
        hints.sort(key=lambda hint: (hint.priority, hint.order))
        return bundle_from_hints(doc.url, hints)

    def _offline_hints(
        self,
        doc: Resource,
        stable: StableSet,
        envelope: Set[str],
    ) -> List[DependencyHint]:
        user_state = self._user_state_derived()
        hints = []
        for url, exemplar in stable.exemplars.items():
            if exemplar.name not in envelope:
                continue
            if exemplar.name in user_state:
                continue
            hints.append(self._hint_from_resource(exemplar))
        return hints

    def _online_hints(self, doc: Resource) -> List[DependencyHint]:
        """URLs parsed out of the exact body being served."""
        analysis = analyze_html(doc.url, doc.body)
        by_url = {child.url: child for child in doc.children}
        hints = []
        for index, url in enumerate(analysis.urls):
            child = by_url.get(url)
            if child is not None:
                hints.append(self._hint_from_resource(child))
            else:
                # A URL in markup with no known structure: type and
                # priority come from the visible extension alone.
                hints.append(
                    DependencyHint(
                        url=url,
                        priority=_priority_from_url(url),
                        order=10_000 + index,
                    )
                )
        return hints

    def _online_full_load(
        self, doc: Resource, as_of_hours: float, device_class: str
    ) -> List[DependencyHint]:
        """Strawman 1: the server loads the page on the fly, with its own
        cookies and its own nonce draw, and returns everything it fetched
        inside the envelope."""
        from repro.core.offline import CLASS_EMULATION_DEVICE

        stamp = LoadStamp(
            when_hours=as_of_hours,
            device=CLASS_EMULATION_DEVICE[device_class],
            user=SERVER_USER,
            nonce=stable_nonce(self.page.name, "online", round(as_of_hours, 3)),
        )
        server_snapshot = self.page.materialize(stamp)
        server_doc = server_snapshot.resources.get(doc.name)
        if server_doc is None:
            return []
        return [
            self._hint_from_resource(resource)
            for resource in server_snapshot.hintable_descendants(server_doc)
        ]

    def _hint_from_resource(self, resource: Resource) -> DependencyHint:
        order = processing_order_key(resource)
        if (
            self.atf_first
            and resource.priority is Priority.UNIMPORTANT
            and resource.spec.above_fold
            and not resource.in_iframe
        ):
            order -= 1_000.0  # front of the x-unimportant list
        return DependencyHint(
            url=resource.url,
            priority=resource.priority,
            order=order,
            size_estimate=resource.size,
        )

    # -- accuracy-analysis support ------------------------------------------------

    def dependency_urls(
        self,
        doc: Resource,
        *,
        as_of_hours: float,
        device_class: str = "phone",
    ) -> Set[str]:
        """Flat URL set (what Fig 21's accuracy metrics score)."""
        return set(
            self.hints_for(
                doc, as_of_hours=as_of_hours, device_class=device_class
            ).urls()
        )


def processing_order_key(resource: Resource) -> float:
    """Estimated position of ``resource`` in the client's processing
    timeline, learned from the server's own loads (Sec 5.1: "the server
    discovers this order during its offline and online dependency
    resolution").

    A static child of a document unlocks when the parser reaches its
    position; a script-computed child unlocks a full round after its
    parent executes; a CSS reference unlocks when the sheet is parsed.
    """
    key = 0.0
    node: Optional[Resource] = resource
    while node is not None and node.parent is not None:
        discovery = node.spec.discovery.value
        if discovery == "static":
            key += node.spec.position
        elif discovery == "script":
            key += 1.0
        else:  # css
            key += 0.5
        node = node.parent
    return key


_EXT_PRIORITY = {
    "js": Priority.PRELOAD,
    "css": Priority.PRELOAD,
    "html": Priority.UNIMPORTANT,  # iframes: footnote 4
}


def _priority_from_url(url: str) -> Priority:
    ext = url.rsplit(".", 1)[-1].lower()
    return _EXT_PRIORITY.get(ext, Priority.UNIMPORTANT)


def spec_priority(spec: ResourceSpec, in_iframe: bool = False) -> Priority:
    """Priority for a spec outside any snapshot (used by analyses)."""
    return priority_of(
        spec.rtype,
        exec_async=spec.exec_async,
        in_iframe=in_iframe,
        is_iframe_doc=spec.rtype is ResourceType.HTML
        and spec.parent is not None,
    )

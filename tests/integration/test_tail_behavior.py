"""Distribution-tail behaviour: where Vroom's gains run out.

The paper (Sec 6.1) attributes Vroom's weak tail to pages whose content
is intrinsically unpredictable — servers cannot hint what changes every
load.  These tests build the two extremes directly and confirm the
mechanism: Vroom's improvement shrinks as a page's flux grows.
"""

import statistics

from repro.baselines.configs import run_config
from repro.calibration import NEWS_SPORTS_PROFILE
from repro.pages.dynamics import LoadStamp
from repro.pages.generator import PageGenerator
from repro.replay.recorder import record_snapshot

STAMP = LoadStamp(when_hours=600.0)


def improvement(page):
    snapshot = page.materialize(STAMP)
    store = record_snapshot(snapshot)
    http2 = run_config("http2", page, snapshot, store).plt
    vroom = run_config("vroom", page, snapshot, store).plt
    return (http2 - vroom) / http2


def pages_with_bias(bias, count=3, seed=4242):
    generator = PageGenerator(NEWS_SPORTS_PROFILE, seed=seed)
    return [
        generator.generate(f"tail{bias}_{i}", dynamic_bias=bias)
        for i in range(count)
    ]


class TestFluxTail:
    def test_gain_shrinks_with_flux(self):
        calm = statistics.median(
            improvement(page) for page in pages_with_bias(0.3)
        )
        wild = statistics.median(
            improvement(page) for page in pages_with_bias(3.0)
        )
        assert wild < calm + 0.02

    def test_vroom_never_catastrophic_on_wild_pages(self):
        """Even at extreme flux, Vroom stays close to the baseline —
        unnecessary hints cost bandwidth, not correctness."""
        for page in pages_with_bias(3.5, count=3, seed=777):
            gain = improvement(page)
            assert gain > -0.15

    def test_flux_shrinks_hintable_ground_truth(self):
        """At high flux Vroom's hints stop covering the load: the
        predictable subset shrinks (more left to the client) and stale
        offline entries inflate the false positives."""
        from repro.analysis.accuracy import (
            predictable_share,
            score_strategy,
        )
        from repro.core.resolver import ResolutionStrategy

        calm_share = statistics.median(
            predictable_share(page, STAMP)[0]
            for page in pages_with_bias(0.3)
        )
        wild_share = statistics.median(
            predictable_share(page, STAMP)[0]
            for page in pages_with_bias(3.0)
        )
        assert wild_share < calm_share

        calm_fp = statistics.median(
            score_strategy(page, STAMP, ResolutionStrategy.VROOM).fp_rate
            for page in pages_with_bias(0.3)
        )
        wild_fp = statistics.median(
            score_strategy(page, STAMP, ResolutionStrategy.VROOM).fp_rate
            for page in pages_with_bias(3.0)
        )
        assert wild_fp > calm_fp

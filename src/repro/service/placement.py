"""Fleet placement: replicated consistent hashing with live resharding.

PR 4's :class:`~repro.service.store.HashRing` is a *static* ring — fine
for one box, useless for a fleet.  This module grows it into the
production story of Sec 4.1.2:

* :class:`PlacementMap` — a **versioned** consistent-hash ring.  Every
  key owns a *preference list* of the first ``replication`` distinct
  shards clockwise of its hash, so writes fan out N ways and reads fail
  over deterministically.  Topology changes (a shard joining or
  draining) do not flip the whole map at once: the joining shard's
  virtual nodes activate **one ring point at a time**, each activation
  moving exactly one ring segment's worth of keys.  The map is a valid
  consistent-hash ring between any two steps, which is what makes live
  resharding correct mid-migration.
* :class:`FleetStore` — the replicated store built on the map: write
  fan-out, failover reads with read repair, shard death (a killed shard
  loses its resident set; replicas keep serving), segment-by-segment
  migration driven by :meth:`FleetStore.reshard_step`, and an optional
  tiny per-frontend cache absorbing Zipf-head hot keys before they
  reach a shard.
* Shard outages compose with :mod:`repro.net.faults`: a
  :class:`~repro.net.faults.FaultPlan` whose rules match the synthetic
  shard URLs (:func:`shard_url`) defines down/up windows — the same
  seeded, bit-deterministic machinery that breaks origin servers breaks
  store shards.

Under ``REPRO_AUDIT=1`` every lookup verifies *placement residency*: no
shard outside a key's current preference list holds a copy, so a
resharding bug that strands entries on the wrong shard fails loudly
instead of silently serving stale routing.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Set, Tuple

from repro import audit
from repro.net.faults import FaultKind, FaultPlan, FaultRule
from repro.service.store import (
    LookupStatus,
    Shard,
    StoreConfig,
    StoreEntry,
    stable_hash,
)

Key = Tuple[str, str]  # (page name, device class)

#: Domain the synthetic shard URLs live under (FaultRule.domain target).
STORE_DOMAIN = "store.internal"


def shard_url(shard: int) -> str:
    """Synthetic URL identifying a shard to a :class:`FaultPlan`."""
    return f"shard{shard}.{STORE_DOMAIN}/"


def shard_outage_rule(
    shard: int,
    *,
    down_at_hours: float,
    up_at_hours: float,
    kind: FaultKind = FaultKind.STALL,
    rate: float = 1.0,
) -> FaultRule:
    """A fault rule taking ``shard`` down for a simulated-time window.

    The trailing dot in the substring keeps ``shard1`` from matching
    ``shard11``.
    """
    return FaultRule(
        kind=kind,
        rate=rate,
        url_substring=f"shard{shard}.",
        not_before=down_at_hours,
        not_after=up_at_hours,
    )


@dataclass
class RingPoint:
    """One virtual node on the placement ring."""

    hash: int
    shard: int
    vnode: int
    active: bool = True

    @property
    def sort_key(self) -> Tuple[int, int, int]:
        return (self.hash, self.shard, self.vnode)


class PlacementMap:
    """Versioned consistent-hash placement with N-way replication.

    With every point active and ``replication=1`` the primary route is
    bit-identical to :class:`~repro.service.store.HashRing` (same point
    labels, same sha1, same tie-break), so swapping the fleet store in
    does not move a single key.
    """

    def __init__(
        self, shard_count: int, vnodes: int = 64, replication: int = 1
    ):
        if shard_count < 1:
            raise ValueError("need at least one shard")
        if vnodes < 1:
            raise ValueError("need at least one virtual node per shard")
        if replication < 1:
            raise ValueError("replication factor must be at least 1")
        if replication > shard_count:
            raise ValueError(
                f"replication {replication} exceeds shard count {shard_count}"
            )
        self.vnodes = vnodes
        self.replication = replication
        #: Bumped on every topology change (begin/step of a reshard).
        self.version = 0
        self.shard_ids: List[int] = list(range(shard_count))
        self._points: List[RingPoint] = []
        for shard in range(shard_count):
            self._points.extend(self._make_points(shard, active=True))
        self._points.sort(key=lambda point: point.sort_key)
        #: Activation queue of a joining shard (ascending hash order).
        self._joining: List[RingPoint] = []
        #: Deactivation queue of a draining shard (ascending hash order).
        self._draining: List[RingPoint] = []
        self._rebuild()

    def _make_points(self, shard: int, *, active: bool) -> List[RingPoint]:
        return [
            RingPoint(
                hash=stable_hash(f"shard{shard}#v{vnode}"),
                shard=shard,
                vnode=vnode,
                active=active,
            )
            for vnode in range(self.vnodes)
        ]

    def _rebuild(self) -> None:
        self._hashes = [p.hash for p in self._points if p.active]
        self._owners = [p.shard for p in self._points if p.active]

    # -- routing ----------------------------------------------------------

    def active_points(self) -> int:
        return len(self._hashes)

    def shards_for(self, key: str, count: Optional[int] = None) -> List[int]:
        """Preference list: first distinct shards clockwise of ``key``."""
        want = self.replication if count is None else count
        total = len(self._hashes)
        position = bisect_right(self._hashes, stable_hash(key))
        preference: List[int] = []
        seen: Set[int] = set()
        for step in range(total):
            shard = self._owners[(position + step) % total]
            if shard not in seen:
                seen.add(shard)
                preference.append(shard)
                if len(preference) == want:
                    break
        return preference

    def shard_for(self, key: str) -> int:
        """Primary shard (HashRing-compatible)."""
        return self.shards_for(key, 1)[0]

    # -- resharding -------------------------------------------------------

    def begin_add_shard(self) -> int:
        """Create a joining shard; its points activate via :meth:`step`."""
        if self._joining or self._draining:
            raise RuntimeError("a reshard is already in progress")
        shard = max(self.shard_ids) + 1
        self.shard_ids.append(shard)
        points = self._make_points(shard, active=False)
        self._points.extend(points)
        self._points.sort(key=lambda point: point.sort_key)
        self._joining = sorted(points, key=lambda point: point.sort_key)
        self.version += 1
        return shard

    def begin_remove_shard(self, shard: int) -> None:
        """Start draining ``shard``; its points retire via :meth:`step`."""
        if self._joining or self._draining:
            raise RuntimeError("a reshard is already in progress")
        if shard not in self.shard_ids:
            raise ValueError(f"unknown shard {shard}")
        if len(self.shard_ids) - 1 < self.replication:
            raise ValueError(
                "removing the shard would leave fewer shards than the "
                "replication factor"
            )
        self._draining = sorted(
            (p for p in self._points if p.shard == shard and p.active),
            key=lambda point: point.sort_key,
        )
        self.version += 1

    def pending_points(self) -> int:
        """Ring points still waiting to activate or retire."""
        return len(self._joining) + len(self._draining)

    def step(self, points: int = 1) -> List[RingPoint]:
        """Advance the reshard by up to ``points`` ring segments.

        Each activated (or retired) point hands over exactly the arc
        between its ring predecessor and itself; the map stays a valid
        consistent-hash ring after every step.  Returns the points that
        changed state.
        """
        changed: List[RingPoint] = []
        for _ in range(points):
            if self._joining:
                point = self._joining.pop(0)
                point.active = True
            elif self._draining:
                point = self._draining.pop(0)
                point.active = False
            else:
                break
            changed.append(point)
        if changed:
            drained = {
                shard
                for shard in self.shard_ids
                if not any(
                    p.active for p in self._points if p.shard == shard
                )
            }
            if drained and not self._draining:
                self.shard_ids = [
                    s for s in self.shard_ids if s not in drained
                ]
                self._points = [
                    p for p in self._points if p.shard not in drained
                ]
            self.version += 1
            self._rebuild()
        return changed


@dataclass
class FleetCounters:
    """Front-door and fleet-operation counters.

    The lookup/hit/miss fields count *front-door* requests exactly once
    each, however many replicas were probed to serve them — per-shard
    counters keep the per-replica view.
    """

    lookups: int = 0
    hits: int = 0
    stale_hits: int = 0
    misses: int = 0
    expired: int = 0
    #: Lookups whose entire preference list was down.
    unavailable: int = 0
    #: Lookups served by a shard other than the structural primary.
    failovers: int = 0
    #: Extra shard probes past the first live shard.
    replica_probes: int = 0
    #: Entries copied back to an earlier live replica after a failover
    #: read found them further down the preference list.
    read_repairs: int = 0
    #: Lookups absorbed by the per-frontend hot-key cache.
    frontend_hits: int = 0
    #: Write fan-out copies beyond the first live shard.
    replica_inserts: int = 0
    shard_wipes: int = 0
    entries_lost: int = 0

    def as_dict(self) -> dict:
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "stale_hits": self.stale_hits,
            "misses": self.misses,
            "expired": self.expired,
            "unavailable": self.unavailable,
            "failovers": self.failovers,
            "replica_probes": self.replica_probes,
            "read_repairs": self.read_repairs,
            "frontend_hits": self.frontend_hits,
            "replica_inserts": self.replica_inserts,
            "shard_wipes": self.shard_wipes,
            "entries_lost": self.entries_lost,
        }


@dataclass
class MigrationCounters:
    """Cumulative live-resharding work."""

    steps: int = 0
    points_moved: int = 0
    keys_moved: int = 0
    entries_copied: int = 0
    entries_dropped: int = 0

    def as_dict(self) -> dict:
        return {
            "steps": self.steps,
            "points_moved": self.points_moved,
            "keys_moved": self.keys_moved,
            "entries_copied": self.entries_copied,
            "entries_dropped": self.entries_dropped,
        }


class FrontendCache:
    """Tiny LRU of hot entries, bounded staleness, at the front door.

    Capacity is meant to be a handful of entries: under Zipf traffic the
    head pages pin themselves here and the shard behind the hottest ring
    segment stops melting.  ``ttl_hours`` bounds how stale a cached copy
    may get relative to its shard (the shard's own TTL still applies on
    top).
    """

    def __init__(self, capacity: int, ttl_hours: float):
        if capacity < 1:
            raise ValueError("frontend cache capacity must be positive")
        if ttl_hours <= 0:
            raise ValueError("frontend cache TTL must be positive")
        self.capacity = capacity
        self.ttl_hours = ttl_hours
        self._entries: Dict[Key, Tuple[StoreEntry, float]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Key, now_hours: float) -> Optional[StoreEntry]:
        row = self._entries.get(key)
        if row is None:
            self.misses += 1
            return None
        entry, cached_at = row
        if now_hours - cached_at > self.ttl_hours:
            del self._entries[key]
            self.misses += 1
            return None
        del self._entries[key]  # promote to most-recently-used
        self._entries[key] = row
        self.hits += 1
        return entry

    def put(self, key: Key, entry: StoreEntry, now_hours: float) -> None:
        entries = self._entries  # hoisted for the eviction loop
        entries.pop(key, None)
        entries[key] = (entry, now_hours)
        while len(entries) > self.capacity:
            del entries[next(iter(entries))]
            self.evictions += 1

    def drop(self, key: Key) -> None:
        """Remove without counting an invalidation (TTL housekeeping)."""
        self._entries.pop(key, None)

    def invalidate(self, key: Key) -> None:
        if self._entries.pop(key, None) is not None:
            self.invalidations += 1

    def as_dict(self) -> dict:
        return {
            "capacity": self.capacity,
            "ttl_hours": self.ttl_hours,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }


@dataclass(slots=True)
class FleetLookup:
    """Outcome of one front-door lookup against the fleet.

    Built once per lookup on the service hot path — slotted so the
    per-lookup garbage is a bare fixed-size object, not object + dict.
    """

    entry: Optional[StoreEntry]
    status: LookupStatus
    #: Shard that served (or, on a total miss, the first live shard);
    #: None for frontend-cache hits and fully unavailable keys.
    shard: Optional[Shard]
    #: Shard probes performed (0 for frontend hits / unavailable keys).
    probes: int = 1
    frontend: bool = False
    unavailable: bool = False


class FleetStore:
    """Replicated, failover-capable, live-reshardable dependency store.

    The drop-in fleet-scale successor of
    :class:`~repro.service.store.DependencyStore`: with
    ``replication=1``, no faults and no frontend cache it routes, counts
    and serves identically.
    """

    def __init__(
        self,
        config: Optional[StoreConfig] = None,
        *,
        fault_plan: Optional[FaultPlan] = None,
    ):
        self.config = config or StoreConfig()
        if self.config.replication > self.config.shard_count:
            raise ValueError(
                "replication cannot exceed the shard count"
            )
        self.placement = PlacementMap(
            self.config.shard_count,
            self.config.vnodes,
            self.config.replication,
        )
        self.shards: Dict[int, Shard] = {
            index: Shard(index, self.config.shard_memory_bytes)
            for index in self.placement.shard_ids
        }
        self.retired_shards: List[Shard] = []
        self.frontend: Optional[FrontendCache] = None
        if self.config.frontend_cache_entries > 0:
            self.frontend = FrontendCache(
                self.config.frontend_cache_entries,
                self.config.frontend_cache_ttl_hours,
            )
        self.counters = FleetCounters()
        self.migration = MigrationCounters()
        self.down: Set[int] = set()
        self.health_events: List[dict] = []
        self._plan = fault_plan
        self._boundaries: List[float] = []
        if fault_plan is not None:
            edges = set()
            for rule in fault_plan.rules:
                edges.add(rule.not_before)
                if rule.not_after != float("inf"):
                    edges.add(rule.not_after)
            self._boundaries = sorted(edges)
        self._health_window: Optional[Tuple[int, int, int]] = None
        #: key -> routing URL, so migration can re-place resident entries.
        self._routes: Dict[Key, str] = {}
        #: page_url -> preference list, memoised per placement version.
        #: ``shards_for`` costs a sha1 + ring walk + set/list build per
        #: call; the ring only changes when a reshard bumps
        #: ``placement.version``, so the route is computed once per
        #: (page, topology) instead of once per lookup.  The hit/miss
        #: tallies are diagnostics only — deliberately not part of
        #: ``FleetCounters.as_dict`` (the smoke goldens pin that dict).
        self._route_cache: Dict[str, List[int]] = {}
        self._route_version = self.placement.version
        self.route_cache_hits = 0
        self.route_cache_misses = 0

    def _owners_for(self, page_url: str) -> List[int]:
        """Preference list for a page URL, cached per placement version.

        Correct because ``shards_for`` depends only on ring topology
        (never on shard health): every topology change goes through
        ``PlacementMap`` and bumps ``version``.  Callers must treat the
        returned list as read-only.
        """
        placement = self.placement
        if placement.version != self._route_version:
            self._route_cache.clear()
            self._route_version = placement.version
        owners = self._route_cache.get(page_url)
        if owners is None:
            owners = placement.shards_for(page_url)
            self._route_cache[page_url] = owners
            self.route_cache_misses += 1
        else:
            self.route_cache_hits += 1
        return owners

    # -- health (repro.net.faults composition) ---------------------------

    def sync_health(self, now_hours: float) -> None:
        """Refresh the down-shard set from the fault plan at ``now_hours``.

        A shard is down while any matching transport/server fault rule
        fires for its synthetic URL (:func:`shard_url`).  Going down
        wipes the shard's resident set — an in-memory store does not
        survive its process — and healing brings it back *empty*; with
        replication the surviving replicas keep serving, without it the
        keyspace goes cold until re-resolved.
        """
        if self._plan is None or not self._plan.rules:
            return
        window = (
            bisect_left(self._boundaries, now_hours),
            bisect_right(self._boundaries, now_hours),
            len(self.shards),
        )
        if window == self._health_window:
            return
        self._health_window = window
        down: Set[int] = set()
        for index in self.shards:
            url = shard_url(index)
            fault = self._plan.transport_fault(
                url, STORE_DOMAIN, now=now_hours, attempt=0
            ) or self._plan.server_fault(
                url, STORE_DOMAIN, now=now_hours, attempt=0
            )
            if fault is not None:
                down.add(index)
        for index in sorted(down - self.down):
            lost = self.shards[index].wipe()
            self.counters.shard_wipes += 1
            self.counters.entries_lost += lost
            self.health_events.append(
                {
                    "hours": round(now_hours, 6),
                    "shard": index,
                    "event": "down",
                    "entries_lost": lost,
                }
            )
        for index in sorted(self.down - down):
            self.health_events.append(
                {"hours": round(now_hours, 6), "shard": index, "event": "up"}
            )
        self.down = down

    # -- reads ------------------------------------------------------------

    def _audit_residency(self, key: Key, owners: List[int]) -> None:
        allowed = set(owners)
        for index, shard in self.shards.items():
            if shard.get(key) is not None:
                audit.require(
                    index in allowed,
                    "placement-residency",
                    f"key {key!r} resident on shard {index}, "
                    # repro: allow[PERF401] audit-only message, gated by
                    # audit.ENABLED; never runs in benchmark mode.
                    f"owners {sorted(allowed)} "
                    f"(placement v{self.placement.version})",
                )

    # repro: hotpath
    def lookup(
        self, page_url: str, page: str, device_class: str, now_hours: float
    ) -> FleetLookup:
        key = (page, device_class)
        config = self.config
        counters = self.counters  # hoisted: ~10 loads per lookup otherwise
        counters.lookups += 1

        if self.frontend is not None:
            entry = self.frontend.get(key, now_hours)
            if entry is not None:
                age = entry.age_hours(now_hours)
                if age <= config.ttl_hours:
                    if age > config.freshness_hours:
                        status = LookupStatus.STALE_HIT
                        counters.stale_hits += 1
                    else:
                        status = LookupStatus.HIT
                        counters.hits += 1
                    counters.frontend_hits += 1
                    return FleetLookup(
                        entry, status, None, probes=0, frontend=True
                    )
                self.frontend.drop(key)  # past store TTL: unusable

        owners = self._owners_for(page_url)
        if audit.ENABLED:
            self._audit_residency(key, owners)
        acting = [index for index in owners if index not in self.down]
        if not acting:
            counters.unavailable += 1
            counters.misses += 1
            return FleetLookup(
                None, LookupStatus.MISS, None, probes=0, unavailable=True
            )

        first_status: Optional[LookupStatus] = None
        for position, index in enumerate(acting):
            shard = self.shards[index]
            entry, status = shard.lookup(
                key,
                now_hours,
                ttl_hours=config.ttl_hours,
                freshness_hours=config.freshness_hours,
            )
            if position == 0:
                first_status = status
            else:
                counters.replica_probes += 1
            if entry is None:
                continue
            if index != owners[0]:
                counters.failovers += 1
            if position > 0:
                # Read repair: heal the earlier (live but empty) copies.
                for earlier in acting[:position]:
                    if self.shards[earlier].insert(replace(entry)):
                        counters.read_repairs += 1
            if status is LookupStatus.STALE_HIT:
                counters.stale_hits += 1
            else:
                counters.hits += 1
            if self.frontend is not None:
                self.frontend.put(key, entry, now_hours)
            return FleetLookup(entry, status, shard, probes=position + 1)

        if first_status is LookupStatus.EXPIRED:
            counters.expired += 1
            status = LookupStatus.EXPIRED
        else:
            counters.misses += 1
            status = LookupStatus.MISS
        return FleetLookup(
            None, status, self.shards[acting[0]], probes=len(acting)
        )

    def peek(self, page_url: str, key: Key) -> Optional[StoreEntry]:
        """The freshest live copy of ``key``, without touching counters."""
        best: Optional[StoreEntry] = None
        for index in self._owners_for(page_url):
            if index in self.down:
                continue
            entry = self.shards[index].get(key)
            if entry is not None and (
                best is None
                or entry.computed_at_hours > best.computed_at_hours
            ):
                best = entry
        return best

    # -- writes -----------------------------------------------------------

    def insert(self, page_url: str, entry: StoreEntry) -> bool:
        """Fan the entry out to every live shard in the preference list."""
        key = entry.key
        self._routes[key] = page_url
        if self.frontend is not None:
            self.frontend.invalidate(key)
        owners = self._owners_for(page_url)
        stored = False
        primary_seen = False
        for index in owners:
            if index in self.down:
                continue
            copy = entry if not primary_seen else replace(entry)
            if self.shards[index].insert(copy):
                if primary_seen:
                    self.counters.replica_inserts += 1
                stored = True
            primary_seen = True
        return stored

    # -- live resharding --------------------------------------------------

    def begin_add_shard(self) -> int:
        """Add a shard to the placement; it owns nothing until stepped in."""
        index = self.placement.begin_add_shard()
        self.shards[index] = Shard(index, self.config.shard_memory_bytes)
        return index

    def begin_remove_shard(self, index: int) -> None:
        self.placement.begin_remove_shard(index)

    def reshard_pending(self) -> int:
        return self.placement.pending_points()

    def reshard_step(self, points: int = 1) -> dict:
        """Move up to ``points`` ring segments and migrate their entries.

        After every step each resident key's copies sit exactly on its
        *current* preference list, so a lookup racing the migration can
        never be routed to a shard that lacks the entry — the property
        the ``placement-residency`` audit pins.
        """
        changed = self.placement.step(points)
        if not changed:
            return {"points": 0, "keys_moved": 0, "entries_copied": 0,
                    "entries_dropped": 0}
        live_ids = set(self.placement.shard_ids)
        moved = self._rebalance()
        for index in sorted(set(self.shards) - live_ids):
            # Fully drained: keep the shard's counters for the report.
            self.retired_shards.append(self.shards.pop(index))
        self.migration.steps += 1
        self.migration.points_moved += len(changed)
        self.migration.keys_moved += moved["keys_moved"]
        self.migration.entries_copied += moved["entries_copied"]
        self.migration.entries_dropped += moved["entries_dropped"]
        return {"points": len(changed), **moved}

    def _rebalance(self) -> dict:
        """Re-place every resident entry onto its current owner set."""
        best: Dict[Key, StoreEntry] = {}
        for shard in self.shards.values():
            for entry in shard.entries():
                current = best.get(entry.key)
                if (
                    current is None
                    or entry.computed_at_hours > current.computed_at_hours
                ):
                    best[entry.key] = entry
        keys_moved = entries_copied = entries_dropped = 0
        live_ids = set(self.placement.shard_ids)
        for key in sorted(best):
            page_url = self._routes.get(key)
            if page_url is None:
                continue
            owners = set(self.placement.shards_for(page_url))
            holders = {
                index
                for index, shard in self.shards.items()
                if shard.get(key) is not None
            }
            changed = False
            for index in sorted(owners - holders):
                if index in self.down or index not in live_ids:
                    continue
                if self.shards[index].insert(replace(best[key])):
                    entries_copied += 1
                    changed = True
            for index in sorted(holders - owners):
                self.shards[index].discard(key)
                entries_dropped += 1
                changed = True
            if changed:
                keys_moved += 1
        return {
            "keys_moved": keys_moved,
            "entries_copied": entries_copied,
            "entries_dropped": entries_dropped,
        }

    # -- reporting --------------------------------------------------------

    def shard_list(self) -> List[Shard]:
        """Live then retired shards, ascending index — report order."""
        live = [self.shards[index] for index in sorted(self.shards)]
        return live + list(self.retired_shards)

    def totals(self) -> dict:
        """Front-door outcome counters plus fleet-wide occupancy sums."""
        out = self.counters.as_dict()
        inserts = evictions = rejected = resident = 0
        for shard in self.shard_list():
            inserts += shard.counters.inserts
            evictions += shard.counters.evictions
            rejected += shard.counters.rejected
            resident += shard.counters.resident_bytes
        out["inserts"] = inserts
        out["evictions"] = evictions
        out["rejected"] = rejected
        out["resident_bytes"] = resident
        return out

    def placement_summary(self) -> dict:
        return {
            "version": self.placement.version,
            "replication": self.placement.replication,
            "shards": sorted(self.shards),
            "retired_shards": [s.index for s in self.retired_shards],
            "active_points": self.placement.active_points(),
            "pending_points": self.placement.pending_points(),
            "down_shards": sorted(self.down),
            "health_events": list(self.health_events),
            "migration": self.migration.as_dict(),
        }

"""Known-negative snippets: nothing here may be flagged, even when
scanned as a *pure* layer module.

Each function is a near-miss of a rule in ``positives.py`` — the shape
the rules must accept, so the linter stays usable on real sim code.
"""

import hashlib
import random

import numpy as np


def ordered_iteration():
    urls = {"a.com/x", "b.com/y"}
    out = []
    for url in sorted(urls):  # sorted() defuses the set
        out.append(url)
    for url in dict.fromkeys(out):  # order-preserving dedup
        out.append(url + "!")
    subset = {url for url in urls if url.startswith("a.")}  # set -> set
    return out, subset


def dict_iteration(mapping):
    out = [key for key in mapping]  # insertion order: fine
    present = "a" in mapping.keys()  # membership, not iteration
    return out, present


def seeded_randomness(seed):
    rng = random.Random(seed)
    gen = np.random.default_rng(seed)
    return rng.random(), gen.random()


def stable_digest(parts):
    joined = "|".join(str(part) for part in parts)
    return hashlib.sha1(joined.encode()).hexdigest()


class Spec:
    def __init__(self, name):
        self.name = name

    def __hash__(self):
        return hash(self.name)  # hash() inside __hash__ is idiomatic

    def __eq__(self, other):
        return isinstance(other, Spec) and other.name == self.name


def attribute_ordering(items):
    return sorted(items, key=lambda item: item.name)

"""Every named configuration the paper's evaluation compares.

``run_config(name, page, snapshot, store, ...)`` loads one page under one
configuration and returns its metrics.  The names:

========================  ====================================================
``http1``                 stock HTTP/1.1 replay ("Loads from Web" proxy)
``http2``                 HTTP/2 everywhere, no push, no hints (the baseline)
``push-all-static``       HTTP/2 + every domain pushes all its static content
``vroom``                 full Vroom: offline+online hints, selective push,
                          FIFO servers, staged client scheduler
``vroom-first-party``     Vroom adopted only by each page's own organisation
``deps-prev-load``        hints = everything in the single most recent load
``offline-only``          hints from the stable set alone
``online-only``           hints from an on-the-fly server load alone
``push-high-pri-no-hints``  selective push, dependency hints disabled
``push-all-no-hints``     push everything local, hints disabled
``push-all-fetch-asap``   full hints + push-all, client fetches on sight
``no-push-no-hints``      alias of ``http2`` (Fig 19's rightmost bar)
``polaris``               client-side dependency-graph prioritisation
``cpu-bound``             Sec 2 CPU-bound lower bound
``network-bound``         Sec 2 network-bound lower bound
``vroom-no-stage``        ablation: Vroom without staged fetching
``vroom-fair``            ablation: Vroom without FIFO response ordering
========================  ====================================================
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.baselines.lower_bound import cpu_bound_load, network_bound_load
from repro.baselines.polaris import polaris_load
from repro.browser.cache import BrowserCache
from repro.browser.engine import BrowserConfig, FetchPolicy, load_page
from repro.browser.metrics import LoadMetrics
from repro.core.push_policy import PushPolicy
from repro.core.resolver import ResolutionStrategy
from repro.core.scheduler import FetchAsapScheduler, VroomScheduler
from repro.core.server import first_party_domains, vroom_servers
from repro.net.faults import FaultPlan, ResiliencePolicy
from repro.net.http import HttpVersion, NetworkConfig
from repro.net.link import StreamScheduling
from repro.pages.page import PageBlueprint, PageSnapshot
from repro.replay.replayer import build_servers
from repro.replay.store import ReplayStore


def _plain(version: HttpVersion) -> NetworkConfig:
    return NetworkConfig(version=version)


def run_config(
    name: str,
    page: PageBlueprint,
    snapshot: PageSnapshot,
    store: ReplayStore,
    *,
    cache: Optional[BrowserCache] = None,
    device: str = "nexus6",
    user: str = "user0",
    fault_plan: Optional[FaultPlan] = None,
    resilience: Optional[ResiliencePolicy] = None,
    link_fast_forward: Optional[bool] = None,
    batched_timeline: Optional[bool] = None,
    vectorized_flow: Optional[bool] = None,
    event_driven_browser: Optional[bool] = None,
    loss_rate: Optional[float] = None,
) -> LoadMetrics:
    """Load ``snapshot`` under the named configuration.

    ``fault_plan``/``resilience`` apply to the transport configurations
    (http1/http2/vroom variants and polaris); the CPU- and network-bound
    lower bounds and the hybrid study build their own transports and run
    fault-free.  Both default to None, which is bit-identical to the
    pre-resilience behaviour.  ``link_fast_forward``,
    ``batched_timeline``, ``vectorized_flow`` and
    ``event_driven_browser`` override the engine's
    execution-mode knobs (None keeps the :class:`NetworkConfig`
    defaults); results are bit-identical across every combination — the
    equivalence suites run them against each other and assert so.
    ``loss_rate`` overrides the link's per-packet loss probability the
    same way (None keeps the default), so equivalence sweeps can cover
    lossy links without rebuilding the transport by hand.
    """
    when = snapshot.stamp.when_hours
    browser = BrowserConfig(
        device=device, user=user, when_hours=when, cache=cache
    )

    def _tune(config: NetworkConfig) -> NetworkConfig:
        if fault_plan is not None:
            config.fault_plan = fault_plan
        if resilience is not None:
            config.request_timeout = resilience.request_timeout
            config.max_retries = resilience.max_retries
            config.retry_backoff = resilience.retry_backoff
        if link_fast_forward is not None:
            config.link_fast_forward = link_fast_forward
        if batched_timeline is not None:
            config.batched_timeline = batched_timeline
        if vectorized_flow is not None:
            config.vectorized_flow = vectorized_flow
        if event_driven_browser is not None:
            config.event_driven_browser = event_driven_browser
        if loss_rate is not None:
            config.loss_rate = loss_rate
        return config

    def vroom_cfg(
        strategy=ResolutionStrategy.VROOM,
        push=PushPolicy.HIGH_PRIORITY_LOCAL,
        hints=True,
        adopting=None,
        scheduling=StreamScheduling.FIFO,
        policy_factory: Callable[[], FetchPolicy] = VroomScheduler,
        atf_first=False,
    ) -> LoadMetrics:
        servers = vroom_servers(
            page,
            snapshot,
            store,
            strategy=strategy,
            push_policy=push,
            send_hints=hints,
            adopting_domains=adopting,
            atf_first=atf_first,
        )
        return load_page(
            snapshot,
            servers,
            _tune(NetworkConfig(h2_scheduling=scheduling)),
            browser,
            policy=policy_factory(),
        )

    if name == "http1":
        return load_page(
            snapshot,
            build_servers(store),
            _tune(_plain(HttpVersion.HTTP1)),
            browser,
        )
    if name in ("http2", "no-push-no-hints"):
        return load_page(
            snapshot,
            build_servers(store),
            _tune(_plain(HttpVersion.HTTP2)),
            browser,
        )
    if name == "push-all-static":
        return vroom_cfg(
            push=PushPolicy.ALL_LOCAL,
            hints=False,
            scheduling=StreamScheduling.FAIR,
            policy_factory=FetchPolicy,
        )
    if name == "vroom":
        return vroom_cfg()
    if name == "vroom-first-party":
        return vroom_cfg(adopting=first_party_domains(page))
    if name == "deps-prev-load":
        return vroom_cfg(strategy=ResolutionStrategy.PREV_LOAD)
    if name == "offline-only":
        return vroom_cfg(strategy=ResolutionStrategy.OFFLINE_ONLY)
    if name == "online-only":
        return vroom_cfg(strategy=ResolutionStrategy.ONLINE_ONLY)
    if name == "push-high-pri-no-hints":
        return vroom_cfg(
            hints=False,
            scheduling=StreamScheduling.FAIR,
            policy_factory=FetchPolicy,
        )
    if name == "push-all-no-hints":
        return vroom_cfg(
            push=PushPolicy.ALL_LOCAL,
            hints=False,
            scheduling=StreamScheduling.FAIR,
            policy_factory=FetchPolicy,
        )
    if name == "push-all-fetch-asap":
        return vroom_cfg(
            push=PushPolicy.ALL_LOCAL,
            scheduling=StreamScheduling.FAIR,
            policy_factory=FetchAsapScheduler,
        )
    if name == "vroom-no-stage":
        return vroom_cfg(policy_factory=FetchAsapScheduler)
    if name == "vroom-atf-first":
        return vroom_cfg(atf_first=True)
    if name == "vroom-two-stage":
        from repro.core.scheduler import TwoStageScheduler

        return vroom_cfg(policy_factory=TwoStageScheduler)
    if name == "vroom-fair":
        return vroom_cfg(scheduling=StreamScheduling.FAIR)
    if name == "vroom-no-js-delay":
        return vroom_cfg(
            policy_factory=lambda: VroomScheduler(js_single_thread=False)
        )
    if name == "hybrid":
        from repro.baselines.hybrid import hybrid_load

        return hybrid_load(page, snapshot, store)
    if name == "polaris":
        return polaris_load(
            page,
            snapshot,
            build_servers(store),
            net_config=_tune(
                NetworkConfig(h2_scheduling=StreamScheduling.WEIGHTED)
            ),
        )
    if name == "cpu-bound":
        return cpu_bound_load(
            snapshot, build_servers(store), when_hours=when, device=device
        )
    if name == "network-bound":
        return network_bound_load(
            snapshot, build_servers(store), when_hours=when, device=device
        )
    raise ValueError(f"unknown configuration {name!r}")


CONFIG_NAMES = (
    "http1",
    "http2",
    "push-all-static",
    "vroom",
    "vroom-first-party",
    "deps-prev-load",
    "offline-only",
    "online-only",
    "push-high-pri-no-hints",
    "push-all-no-hints",
    "push-all-fetch-asap",
    "no-push-no-hints",
    "vroom-no-stage",
    "vroom-two-stage",
    "vroom-atf-first",
    "vroom-fair",
    "vroom-no-js-delay",
    "polaris",
    "hybrid",
    "cpu-bound",
    "network-bound",
)

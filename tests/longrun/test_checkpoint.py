"""Checkpoint/resume determinism: resumed == straight, bit for bit."""

import pickle

import pytest

from repro import audit
from repro.longrun import LongRunner, checkpoint_roundtrip, run_scenario
from repro.scenario import ScenarioSpec

QUIET = dict(
    pages=4,
    horizon_hours=1.5,
    rate_per_hour=300.0,
    shards=3,
    replication=2,
    rollup_hours=0.5,
)

#: Same stream, but a shard fail/heal cycle is live the whole run; the
#: default checkpoint point (mid-run, hour 0.75) falls *inside* the
#: 0.75–0.95 outage window, so resume must also restore fault state.
FAULTY = dict(
    QUIET,
    shard_cycle_every_hours=0.5,
    shard_cycle_down_hours=0.2,
    shard_cycle_start_hours=0.25,
    digest_filter_bits=8,
)


@pytest.fixture
def armed_audit():
    audit.enable()
    try:
        yield
    finally:
        audit.disable()


class TestRoundTrip:
    def test_resume_matches_straight(self):
        result = checkpoint_roundtrip(ScenarioSpec(**QUIET))
        assert result["match"]
        assert (
            result["straight_fingerprint"]
            == result["resumed_fingerprint"]
        )

    def test_resume_matches_under_active_faults(self, armed_audit):
        spec = ScenarioSpec(**FAULTY)
        result = checkpoint_roundtrip(spec)
        assert result["match"]
        # The scenario actually exercised the fault machinery.
        assert result["report"]["totals"]["shard_wipes"] >= 1

    def test_resume_mid_outage_window(self):
        result = checkpoint_roundtrip(
            ScenarioSpec(**FAULTY), checkpoint_at_hours=0.85
        )
        assert result["checkpoint_at_hours"] == 0.85
        assert result["match"]

    def test_checkpoint_file_round_trip(self, tmp_path):
        spec = ScenarioSpec(**FAULTY)
        straight = run_scenario(spec)
        path = str(tmp_path / "runner.ckpt")
        runner = LongRunner(spec)
        runner.run_to(0.6)
        runner.save_checkpoint(path)
        resumed = LongRunner.load_checkpoint(path)
        resumed.run_to(spec.horizon_hours)
        assert resumed.report()["fingerprint"] == straight["fingerprint"]


class TestEnvelope:
    def _blob(self):
        runner = LongRunner(ScenarioSpec(**QUIET))
        runner.run_to(0.5)
        return runner.to_checkpoint_bytes()

    def test_version_mismatch_rejected(self):
        envelope = pickle.loads(self._blob())
        envelope["version"] = 99
        with pytest.raises(ValueError, match="version"):
            LongRunner.from_checkpoint_bytes(pickle.dumps(envelope))

    def test_corrupted_state_rejected(self):
        envelope = pickle.loads(self._blob())
        envelope["state"] = envelope["state"][:-1] + b"X"
        with pytest.raises(ValueError, match="digest"):
            LongRunner.from_checkpoint_bytes(pickle.dumps(envelope))

    def test_wrong_scenario_rejected(self):
        envelope = pickle.loads(self._blob())
        envelope["spec_fingerprint"] = "0" * 64
        with pytest.raises(ValueError, match="fingerprint"):
            LongRunner.from_checkpoint_bytes(pickle.dumps(envelope))

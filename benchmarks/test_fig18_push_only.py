"""Fig 18: HTTP/2 PUSH alone is not enough.

Paper: whether servers push all their static resources or only the
processable subset, median PLT stays more than 2 s above Vroom's, because
third-party dependencies can only be described via hints.
"""

from benchmarks.conftest import run_once
from repro.experiments import figures
from benchmarks.test_fig17_prev_load import _print_quartiles


def test_fig18_push_only(benchmark, corpus_size):
    series = run_once(benchmark, figures.fig18_push_only, count=corpus_size)
    _print_quartiles(
        "Fig 18: push without dependency hints (quartiles)",
        series,
        paper={
            "lower_bound": 5.0,
            "vroom": 5.1,
            "push_high_priority_no_hints": 7.3,
            "push_all_no_hints": 7.4,
        },
    )
    assert series["vroom"][1] < series["push_high_priority_no_hints"][1]
    assert series["vroom"][1] < series["push_all_no_hints"][1]
    # The two push-only variants behave similarly (neither can describe
    # third-party content).
    assert abs(
        series["push_high_priority_no_hints"][1]
        - series["push_all_no_hints"][1]
    ) < 1.5

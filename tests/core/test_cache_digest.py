"""Tests for cache digests (push suppression, footnote 2)."""

import pytest

from repro.browser.cache import BrowserCache
from repro.core.cache_digest import (
    CacheDigest,
    digest_from_cache,
    filter_pushes,
)


class TestCacheDigest:
    def test_no_false_negatives(self):
        """One-sided error: everything inserted is always found."""
        urls = [f"a.com/r{i}.js" for i in range(500)]
        digest = CacheDigest(urls)
        for url in urls:
            assert url in digest

    def test_false_positive_rate_bounded(self):
        cached = [f"a.com/in{i}.js" for i in range(1000)]
        digest = CacheDigest(cached, bits_per_entry=8)
        probes = [f"b.com/out{i}.js" for i in range(2000)]
        false_positives = sum(1 for url in probes if url in digest)
        # Expected ~2^-8 = 0.4%; allow generous slack.
        assert false_positives / len(probes) < 0.05

    def test_bits_per_entry_bounds(self):
        with pytest.raises(ValueError):
            CacheDigest([], bits_per_entry=0)
        with pytest.raises(ValueError):
            CacheDigest([], bits_per_entry=40)

    def test_size_scales_with_entries(self):
        small = CacheDigest([f"u{i}" for i in range(10)])
        large = CacheDigest([f"u{i}" for i in range(1000)])
        assert large.size_bytes > small.size_bytes
        # ~10 bits/entry: 1000 entries ~ 1.25 KB, far below the URLs.
        assert large.size_bytes < 2000

    def test_empty_digest(self):
        digest = CacheDigest([])
        assert "anything" not in digest
        assert digest.size_bytes >= 2

    def test_precision_improves_with_bits(self):
        assert (
            CacheDigest([], bits_per_entry=12).false_positive_rate
            < CacheDigest([], bits_per_entry=6).false_positive_rate
        )


class TestIntegration:
    def test_digest_from_cache_honours_freshness(self):
        cache = BrowserCache()
        cache.store("fresh.com/x", 1, when_hours=90.0, max_age_hours=24.0)
        cache.store("stale.com/y", 1, when_hours=0.0, max_age_hours=1.0)
        digest = digest_from_cache(cache, when_hours=100.0)
        assert "fresh.com/x" in digest
        assert "stale.com/y" not in digest

    def test_filter_pushes(self):
        digest = CacheDigest(["a.com/cached.js"])
        pushes = ["a.com/cached.js", "a.com/new.js"]
        assert filter_pushes(pushes, digest) == ["a.com/new.js"]

    def test_filter_preserves_order(self):
        digest = CacheDigest([])
        pushes = [f"a.com/p{i}.js" for i in range(5)]
        assert filter_pushes(pushes, digest) == pushes

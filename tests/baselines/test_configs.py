"""Tests for the named configuration runner."""

import pytest

from repro.baselines.configs import CONFIG_NAMES, run_config


class TestRunConfig:
    def test_unknown_name_rejected(self, page, snapshot, store):
        with pytest.raises(ValueError):
            run_config("warp-drive", page, snapshot, store)

    def test_all_names_runnable(self, page, snapshot, store):
        for name in CONFIG_NAMES:
            metrics = run_config(name, page, snapshot, store)
            assert metrics.plt > 0, name

    def test_no_push_no_hints_equals_http2(self, page, snapshot, store):
        base = run_config("http2", page, snapshot, store)
        alias = run_config("no-push-no-hints", page, snapshot, store)
        assert alias.plt == pytest.approx(base.plt)

    def test_vroom_beats_http2_here(self, page, snapshot, store):
        vroom = run_config("vroom", page, snapshot, store)
        http2 = run_config("http2", page, snapshot, store)
        assert vroom.plt < http2.plt

    def test_http1_no_faster_than_http2(self, page, snapshot, store):
        h1 = run_config("http1", page, snapshot, store)
        h2 = run_config("http2", page, snapshot, store)
        assert h1.plt >= h2.plt * 0.9

    def test_partial_adoption_between_full_and_none(
        self, page, snapshot, store
    ):
        full = run_config("vroom", page, snapshot, store).plt
        partial = run_config("vroom-first-party", page, snapshot, store).plt
        none = run_config("http2", page, snapshot, store).plt
        assert full <= partial * 1.1
        assert partial <= none * 1.1

    def test_push_only_worse_than_vroom(self, page, snapshot, store):
        """Fig 18: hints are necessary; push alone loses multi-origin
        discovery."""
        vroom = run_config("vroom", page, snapshot, store).plt
        push_only = run_config(
            "push-high-pri-no-hints", page, snapshot, store
        ).plt
        assert vroom < push_only

    def test_wasted_bytes_only_with_hints(self, page, snapshot, store):
        http2 = run_config("http2", page, snapshot, store)
        vroom = run_config("vroom", page, snapshot, store)
        assert http2.wasted_bytes == 0.0
        assert vroom.wasted_bytes >= 0.0

    def test_device_parameter(self, page, snapshot, store):
        slow = run_config("cpu-bound", page, snapshot, store, device="nexus10")
        fast = run_config(
            "cpu-bound", page, snapshot, store, device="oneplus3"
        )
        assert fast.plt < slow.plt

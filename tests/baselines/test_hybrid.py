"""Tests for the Vroom+Polaris hybrid policy."""

import statistics

from repro.baselines.hybrid import HybridScheduler, hybrid_load
from repro.baselines.configs import run_config
from repro.baselines.polaris import prior_load_weights
from repro.replay.recorder import record_snapshot


class TestHybridLoad:
    def test_completes(self, page, snapshot, store):
        metrics = hybrid_load(page, snapshot, store)
        assert metrics.plt > 0

    def test_hints_still_staged(self, page, snapshot, store):
        """The hybrid keeps Vroom's hint machinery intact."""
        metrics = hybrid_load(page, snapshot, store)
        hinted = [
            t
            for t in metrics.timelines.values()
            if t.discovered_via == "hint"
        ]
        assert hinted

    def test_matches_vroom_at_least_roughly(self, page, snapshot, store):
        vroom = run_config("vroom", page, snapshot, store).plt
        hybrid = hybrid_load(page, snapshot, store).plt
        assert hybrid < vroom * 1.15

    def test_discoveries_use_chain_weights(self, page, snapshot, store):
        weights = prior_load_weights(page, snapshot.stamp)
        scheduler = HybridScheduler(weights)

        class FakeEngine:
            snapshot_urls = snapshot.by_url()

        scheduler.engine = FakeEngine()
        # A deep-chain script should get a hotter (smaller) priority than
        # a leaf image.
        deep = max(
            (r for r in snapshot.all_resources() if r.rtype.value == "js"),
            key=lambda r: len(r.descendants()),
        )
        leaf = next(
            r
            for r in snapshot.all_resources()
            if not r.processable and not r.children
        )
        assert scheduler._chain_priority(deep.url) < scheduler._chain_priority(
            leaf.url
        )


class TestHybridOnCorpus:
    def test_hybrid_never_loses_badly_to_vroom(self, corpus, stamp):
        vroom_plts, hybrid_plts = [], []
        for page in corpus[:4]:
            snapshot = page.materialize(stamp)
            store = record_snapshot(snapshot)
            vroom_plts.append(
                run_config("vroom", page, snapshot, store).plt
            )
            hybrid_plts.append(
                run_config("hybrid", page, snapshot, store).plt
            )
        assert statistics.median(hybrid_plts) <= statistics.median(
            vroom_plts
        ) * 1.1

"""Edge cases in the HTTP transport layer."""


from repro.net.http import HttpClient, HttpVersion, NetworkConfig
from repro.net.origin import OriginServer, Response
from repro.net.simulator import Simulator


def make_stack(contents, pushes=None, **config_kw):
    sim = Simulator()
    pushes = pushes or {}

    def respond(url, is_push):
        if url not in contents:
            return None
        return Response(
            url=url,
            size=contents[url],
            think_time=0.01,
            pushes=pushes.get(url, []),
        )

    servers = {"a.com": OriginServer("a.com", respond, server_rtt=0.03)}
    return sim, HttpClient(sim, servers, NetworkConfig(**config_kw))


class TestWatchBeforeStream:
    def test_pending_watch_transfers_to_stream(self):
        sim, client = make_stack({"a.com/big.bin": 500_000})
        hits = []
        fetch = client.fetch("a.com/big.bin")
        # Register the watch before the response stream exists.
        fetch.watch_body_offset(100_000, lambda: hits.append(sim.now))
        sim.run()
        assert len(hits) == 1
        assert hits[0] < fetch.completed_at

    def test_watch_beyond_body_clamps_to_end(self):
        sim, client = make_stack({"a.com/small.bin": 1_000})
        hits = []
        fetch = client.fetch("a.com/small.bin")
        fetch.watch_body_offset(10_000_000, lambda: hits.append(sim.now))
        sim.run()
        assert len(hits) == 1


class TestPushEdgeCases:
    def test_push_for_already_requested_url_skipped(self):
        """A client request in flight suppresses the duplicate push."""
        contents = {"a.com/page.html": 20_000, "a.com/x.js": 5_000}
        sim, client = make_stack(
            contents, pushes={"a.com/page.html": ["a.com/x.js"]}
        )
        client.fetch("a.com/x.js")       # requested first
        client.fetch("a.com/page.html")  # would push x.js
        sim.run()
        server = client.servers["a.com"]
        assert server.pushes_sent == 0
        assert server.requests_served == 2

    def test_push_attach_callbacks(self):
        """Attaching on_complete to a pushed URL works like any fetch."""
        contents = {"a.com/page.html": 20_000, "a.com/x.js": 5_000}
        sim, client = make_stack(
            contents, pushes={"a.com/page.html": ["a.com/x.js"]}
        )
        done = []
        client.fetch("a.com/page.html")

        def attach_later():
            client.fetch(
                "a.com/x.js", on_complete=lambda f: done.append(f.url)
            )

        # Attach well after the push stream has started (~0.5 s in).
        sim.schedule(0.8, attach_later)
        sim.run()
        assert done == ["a.com/x.js"]
        # Still only one exchange for x.js (the push).
        assert client.servers["a.com"].requests_served == 1
        assert client.servers["a.com"].pushes_sent == 1


class TestHeadersAfterCompletion:
    def test_late_on_headers_fires(self):
        sim, client = make_stack({"a.com/x.js": 1_000})
        client.fetch("a.com/x.js")
        sim.run()
        seen = []
        client.fetch("a.com/x.js", on_headers=lambda f: seen.append(f.url))
        sim.run()
        assert seen == ["a.com/x.js"]


class TestHttp1Recycling:
    def test_connections_reused_across_requests(self):
        contents = {f"a.com/r{i}.js": 2_000 for i in range(20)}
        sim, client = make_stack(contents, version=HttpVersion.HTTP1)
        done = []
        for url in contents:
            client.fetch(url, on_complete=lambda f: done.append(f.url))
        sim.run()
        assert len(done) == 20
        # Six connections served twenty requests.
        assert len(client._domains["a.com"].connections) <= 6

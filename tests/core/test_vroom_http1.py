"""Vroom's hint mechanism over HTTP/1.1 (the high-loss fallback).

HTTP/1.1 has no server push, so Vroom degrades to dependency hints plus
the staged scheduler — Sec 8 notes this combination still works.  These
tests pin the semantics of that degraded mode.
"""

from repro.browser.engine import BrowserConfig, PageLoadEngine
from repro.core.push_policy import PushPolicy
from repro.core.scheduler import VroomScheduler
from repro.core.server import vroom_servers
from repro.net.http import HttpVersion, NetworkConfig
from repro.replay.replayer import build_servers


def h1_vroom_engine(page, snapshot, store):
    servers = vroom_servers(
        page, snapshot, store, push_policy=PushPolicy.NONE
    )
    return PageLoadEngine(
        snapshot,
        servers,
        NetworkConfig(version=HttpVersion.HTTP1),
        BrowserConfig(when_hours=snapshot.stamp.when_hours),
        policy=VroomScheduler(),
    )


class TestVroomOverHttp1:
    def test_load_completes(self, page, snapshot, store):
        metrics = h1_vroom_engine(page, snapshot, store).run()
        assert metrics.plt > 0

    def test_no_pushes_happen(self, page, snapshot, store):
        engine = h1_vroom_engine(page, snapshot, store)
        engine.run()
        assert all(
            server.pushes_sent == 0
            for server in engine.client.servers.values()
        )

    def test_hints_still_drive_early_discovery(self, page, snapshot, store):
        from repro.browser.engine import load_page

        vroom = h1_vroom_engine(page, snapshot, store).run()
        plain = load_page(
            snapshot,
            build_servers(store),
            NetworkConfig(version=HttpVersion.HTTP1),
            BrowserConfig(when_hours=snapshot.stamp.when_hours),
        )
        assert vroom.discovery_complete_at() < plain.discovery_complete_at()

    def test_beats_plain_http1(self, page, snapshot, store):
        from repro.browser.engine import load_page

        vroom = h1_vroom_engine(page, snapshot, store).run()
        plain = load_page(
            snapshot,
            build_servers(store),
            NetworkConfig(version=HttpVersion.HTTP1),
            BrowserConfig(when_hours=snapshot.stamp.when_hours),
        )
        assert vroom.plt < plain.plt

    def test_connection_limit_respected(self, page, snapshot, store):
        """Prefetch storms must still obey six connections per domain."""
        engine = h1_vroom_engine(page, snapshot, store)
        engine.run()
        for domain, state in engine.client._domains.items():
            assert len(state.connections) <= 6, domain

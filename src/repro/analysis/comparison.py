"""Paired comparison statistics with bootstrap confidence intervals.

Per-page PLT distributions across configurations are *paired* (the same
page loads under each config), so the right comparison is the per-page
delta, not the difference of medians.  This module computes win rates,
median paired deltas, and numpy-powered bootstrap confidence intervals —
the statistics a careful reader wants next to any "A beats B" claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


@dataclass
class PairedComparison:
    """Summary of paired per-page measurements A vs B."""

    name_a: str
    name_b: str
    n: int
    median_delta: float           # median of (B - A); positive = A faster
    win_rate: float               # fraction of pages where A < B
    ci_low: float                 # 95% bootstrap CI on the median delta
    ci_high: float

    @property
    def significant(self) -> bool:
        """True when the CI excludes zero."""
        return self.ci_low > 0.0 or self.ci_high < 0.0

    def describe(self) -> str:
        return (
            f"{self.name_a} vs {self.name_b}: median delta "
            f"{self.median_delta:+.2f}s (95% CI [{self.ci_low:+.2f}, "
            f"{self.ci_high:+.2f}]), wins {self.win_rate:.0%} of "
            f"{self.n} pages"
            + (" — significant" if self.significant else "")
        )


def bootstrap_median_ci(
    values: Sequence[float],
    iterations: int = 2000,
    confidence: float = 0.95,
    seed: int = 7,
) -> Tuple[float, float]:
    """Percentile-bootstrap CI on the median of ``values``."""
    if not values:
        raise ValueError("cannot bootstrap an empty sample")
    rng = np.random.default_rng(seed)
    data = np.asarray(values, dtype=float)
    samples = rng.choice(data, size=(iterations, len(data)), replace=True)
    medians = np.median(samples, axis=1)
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(medians, alpha)),
        float(np.quantile(medians, 1.0 - alpha)),
    )


def compare_paired(
    name_a: str,
    values_a: Sequence[float],
    name_b: str,
    values_b: Sequence[float],
    **bootstrap_kwargs,
) -> PairedComparison:
    """Paired comparison: per-index deltas B - A (positive = A faster)."""
    if len(values_a) != len(values_b):
        raise ValueError("paired comparison needs equal-length samples")
    if not values_a:
        raise ValueError("paired comparison needs at least one pair")
    deltas = [b - a for a, b in zip(values_a, values_b)]
    ci_low, ci_high = bootstrap_median_ci(deltas, **bootstrap_kwargs)
    wins = sum(1 for delta in deltas if delta > 0)
    return PairedComparison(
        name_a=name_a,
        name_b=name_b,
        n=len(deltas),
        median_delta=float(np.median(deltas)),
        win_rate=wins / len(deltas),
        ci_low=ci_low,
        ci_high=ci_high,
    )

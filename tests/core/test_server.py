"""Tests for Vroom-compliant server construction."""

import pytest

from repro.calibration import VROOM_ONLINE_PARSE_OVERHEAD
from repro.core.push_policy import PushPolicy
from repro.core.resolver import ResolutionStrategy
from repro.core.server import (
    first_party_domains,
    hinted_extra_content,
    vroom_servers,
)
from repro.core.resolver import VroomResolver
from repro.replay.replayer import build_servers


class TestVroomServers:
    def test_html_responses_carry_hints(self, page, snapshot, store):
        servers = vroom_servers(page, snapshot, store)
        root = snapshot.root
        response = servers[root.domain].respond(root.url)
        assert response.hints

    def test_media_responses_have_no_hints(self, page, snapshot, store):
        servers = vroom_servers(page, snapshot, store)
        media = next(
            r for r in snapshot.all_resources() if not r.processable
        )
        response = servers[media.domain].respond(media.url)
        assert response.hints == []

    def test_pushes_are_same_domain_high_priority(self, page, snapshot, store):
        servers = vroom_servers(page, snapshot, store)
        root = snapshot.root
        response = servers[root.domain].respond(root.url)
        for url in response.pushes:
            assert url.startswith(root.domain + "/")

    def test_online_parse_overhead_added_to_html(self, page, snapshot, store):
        vroom = vroom_servers(page, snapshot, store)
        plain = build_servers(store)
        root = snapshot.root
        vroom_think = vroom[root.domain].respond(root.url).think_time
        plain_think = plain[root.domain].respond(root.url).think_time
        assert vroom_think == pytest.approx(
            plain_think + VROOM_ONLINE_PARSE_OVERHEAD
        )

    def test_offline_only_skips_online_overhead(self, page, snapshot, store):
        offline = vroom_servers(
            page, snapshot, store, strategy=ResolutionStrategy.OFFLINE_ONLY
        )
        plain = build_servers(store)
        root = snapshot.root
        assert offline[root.domain].respond(root.url).think_time == (
            plain[root.domain].respond(root.url).think_time
        )

    def test_hints_disabled(self, page, snapshot, store):
        servers = vroom_servers(page, snapshot, store, send_hints=False)
        root = snapshot.root
        response = servers[root.domain].respond(root.url)
        assert response.hints == []
        assert response.pushes  # push can still happen

    def test_push_policy_none(self, page, snapshot, store):
        servers = vroom_servers(
            page, snapshot, store, push_policy=PushPolicy.NONE
        )
        root = snapshot.root
        assert servers[root.domain].respond(root.url).pushes == []

    def test_partial_adoption_restricts_to_first_party(
        self, page, snapshot, store
    ):
        adopting = first_party_domains(page)
        servers = vroom_servers(
            page, snapshot, store, adopting_domains=adopting
        )
        for doc in snapshot.documents():
            response = servers[doc.domain].respond(doc.url)
            if doc.domain in adopting:
                assert response.hints
            else:
                assert response.hints == []

    def test_push_responses_not_decorated(self, page, snapshot, store):
        servers = vroom_servers(page, snapshot, store)
        root = snapshot.root
        pushed = servers[root.domain].respond(root.url, is_push=True)
        assert pushed.hints == []
        assert pushed.pushes == []


class TestExtraContent:
    def test_extra_content_covers_all_foreign_hints(
        self, page, snapshot, store
    ):
        resolver = VroomResolver(page)
        extra = hinted_extra_content(
            page,
            snapshot,
            resolver,
            as_of_hours=snapshot.stamp.when_hours,
        )
        known = set(snapshot.urls())
        assert not (set(extra) & known)
        for url, recorded in extra.items():
            assert recorded.size >= 600
            assert recorded.domain == url.partition("/")[0]

    def test_servers_can_serve_extraneous_hints(self, page, snapshot, store):
        servers = vroom_servers(page, snapshot, store)
        root = snapshot.root
        response = servers[root.domain].respond(root.url)
        known = set(snapshot.urls())
        for hint in response.hints:
            domain = hint.url.partition("/")[0]
            if domain in servers:
                assert servers[domain].respond(hint.url) is not None


def test_first_party_domains(page):
    assert first_party_domains(page) == {f"{page.name}.com"}

"""Server push policies (Sec 4.3 and the strawmen of Figs 18/19).

A Vroom-compliant server, answering a request for an HTML object, pushes
the content of only the *high-priority, same-domain* dependencies it
identified; everything else travels as dependency hints.  The strawmen
evaluated in the paper vary along two axes: what gets pushed, and whether
hints are sent at all.
"""

from __future__ import annotations

import enum
from typing import List

from repro.core.hints import HintBundle
from repro.pages.resources import Priority


class PushPolicy(enum.Enum):
    """What a server pushes alongside an HTML response."""

    #: Vroom: push same-domain high-priority (processable) dependencies.
    HIGH_PRIORITY_LOCAL = "high_priority_local"
    #: Push every same-domain static dependency ("Push All" strawmen).
    ALL_LOCAL = "all_local"
    #: Push nothing.
    NONE = "none"


def select_pushes(
    policy: PushPolicy,
    bundle: HintBundle,
    serving_domain: str,
) -> List[str]:
    """URLs the server will push, in hint (processing) order.

    Only same-domain content is ever pushed: a server cannot securely push
    bytes for another origin (Sec 3.1) — that constraint is structural,
    not a policy choice.
    """
    if policy is PushPolicy.NONE:
        return []
    pushes = []
    for hint in bundle:
        domain = hint.url.partition("/")[0]
        if domain != serving_domain:
            continue
        if (
            policy is PushPolicy.HIGH_PRIORITY_LOCAL
            and hint.priority is not Priority.PRELOAD
        ):
            continue
        pushes.append(hint.url)
    return pushes

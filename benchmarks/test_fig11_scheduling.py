"""Fig 11: why push/fetch scheduling needs care (eurosport.com example).

Paper: under "Push All, Fetch ASAP", bandwidth contention delays the first
few processable resources even though overall receipt finishes earlier;
Vroom's prioritisation finishes the same 10 resources equally fast without
delaying the early ones as much.
"""

from benchmarks.conftest import run_once
from repro.experiments import figures
from repro.experiments.report import print_figure


def test_fig11_scheduling(benchmark):
    series = run_once(benchmark, figures.fig11_scheduling_example)
    print_figure(
        "Fig 11: receipt-time delta vs HTTP/2, first 10 processable "
        "resources (one heavy page)",
        series,
    )
    asap = series["push_all_fetch_asap_delta"]
    vroom = series["vroom_delta"]
    # Vroom delays the early processable resources less on aggregate.
    assert sum(vroom) <= sum(asap)
    # And the receipt of the last of them is no later than the strawman's.
    assert vroom[-1] <= asap[-1] + 0.25

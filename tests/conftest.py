"""Shared fixtures: a small deterministic corpus, snapshots, servers."""

import pytest

from repro.calibration import DEFAULT_EVAL_HOUR, NEWS_SPORTS_PROFILE
from repro.pages.corpus import news_sports_corpus
from repro.pages.dynamics import LoadStamp
from repro.pages.generator import generate_page
from repro.replay.recorder import record_snapshot


@pytest.fixture(scope="session")
def stamp():
    return LoadStamp(when_hours=DEFAULT_EVAL_HOUR)


@pytest.fixture(scope="session")
def corpus():
    """Six deterministic News/Sports pages (session-wide)."""
    return news_sports_corpus(count=6)


@pytest.fixture(scope="session")
def page(corpus):
    return corpus[0]


@pytest.fixture(scope="session")
def snapshot(page, stamp):
    return page.materialize(stamp)


@pytest.fixture(scope="session")
def store(snapshot):
    return record_snapshot(snapshot)


@pytest.fixture()
def small_page():
    """A fresh small page for tests that mutate or iterate quickly."""
    return generate_page(NEWS_SPORTS_PROFILE, "tiny", seed=99)

"""Cross-configuration invariant sweep.

Every configuration, on every page in a small corpus, must satisfy the
universal page-load invariants — ordering of per-resource events, byte
conservation, onload consistency.  Catching a violation here usually
means a scheduling or bookkeeping bug somewhere in the stack.
"""

import pytest

from repro.baselines.configs import run_config
from repro.replay.recorder import record_snapshot

SWEEP_CONFIGS = (
    "http1",
    "http2",
    "vroom",
    "vroom-first-party",
    "polaris",
    "hybrid",
    "push-all-fetch-asap",
    "deps-prev-load",
)


@pytest.fixture(scope="module")
def sweep(corpus, stamp):
    results = []
    for page in corpus[:3]:
        snapshot = page.materialize(stamp)
        store = record_snapshot(snapshot)
        for config in SWEEP_CONFIGS:
            metrics = run_config(config, page, snapshot, store)
            results.append((page, snapshot, config, metrics))
    return results


class TestEventOrdering:
    def test_fetch_starts_after_discovery(self, sweep):
        for _, _, config, metrics in sweep:
            for timeline in metrics.referenced_timelines():
                if timeline.fetch_started_at is None:
                    continue
                if timeline.pushed:
                    # Pushed bytes legitimately precede client knowledge:
                    # the server initiates the stream; the client learns
                    # of the resource when the push headers arrive.
                    continue
                assert (
                    timeline.fetch_started_at
                    >= timeline.discovered_at - 1e-9
                ), (config, timeline.url)

    def test_headers_between_start_and_completion(self, sweep):
        for _, _, config, metrics in sweep:
            for timeline in metrics.referenced_timelines():
                if timeline.headers_at is None or timeline.from_cache:
                    continue
                assert (
                    timeline.fetch_started_at - 1e-9
                    <= timeline.headers_at
                    <= (timeline.fetched_at or float("inf")) + 1e-9
                ), (config, timeline.url)

    def test_processing_after_fetch(self, sweep):
        for _, _, config, metrics in sweep:
            for timeline in metrics.referenced_timelines():
                if timeline.processed_at is None:
                    continue
                assert (
                    timeline.processed_at >= (timeline.fetched_at or 0) - 1e-9
                ), (config, timeline.url)

    def test_causal_discovery_chain(self, sweep):
        """Whatever revealed a resource finished some work before."""
        for _, _, config, metrics in sweep:
            for timeline in metrics.referenced_timelines():
                parent_url = timeline.discovered_from
                if parent_url is None:
                    continue
                parent = metrics.timelines.get(parent_url)
                if parent is None or parent.discovered_at is None:
                    continue
                assert (
                    timeline.discovered_at >= parent.discovered_at - 1e-9
                ), (config, timeline.url)


class TestCompletionConsistency:
    def test_onload_is_last_referenced_completion(self, sweep):
        for _, _, config, metrics in sweep:
            last = max(
                timeline.completion_at or 0.0
                for timeline in metrics.referenced_timelines()
            )
            assert metrics.plt == pytest.approx(last, abs=1e-6), config

    def test_every_referenced_resource_completed(self, sweep):
        for _, snapshot, config, metrics in sweep:
            for resource in snapshot.all_resources():
                timeline = metrics.timelines[resource.url]
                assert timeline.fetched_at is not None, (
                    config,
                    resource.name,
                )
                if resource.processable:
                    assert timeline.processed_at is not None, (
                        config,
                        resource.name,
                    )

    def test_aft_within_load(self, sweep):
        for _, _, config, metrics in sweep:
            assert 0 < metrics.aft <= metrics.plt + 1e-9, config

    def test_speed_index_positive_and_bounded(self, sweep):
        for _, _, config, metrics in sweep:
            assert 0 < metrics.speed_index <= metrics.aft * 1000.0 + 1.0, (
                config
            )


class TestResourceAccounting:
    def test_bytes_cover_page(self, sweep):
        for _, snapshot, config, metrics in sweep:
            cached = sum(
                timeline.size
                for timeline in metrics.referenced_timelines()
                if timeline.from_cache
            )
            assert (
                metrics.bytes_fetched + cached
                >= snapshot.total_bytes() * 0.95
            ), config

    def test_cpu_busy_at_most_wall_clock(self, sweep):
        for _, _, config, metrics in sweep:
            # CPU work can continue briefly past onload (decode tail), so
            # compare against the simulation end, approximated loosely.
            assert metrics.cpu_busy_time <= metrics.plt * 1.6 + 1.0, config

    def test_waste_only_under_hinting_configs(self, sweep):
        for _, _, config, metrics in sweep:
            if config in ("http1", "http2", "polaris"):
                assert metrics.wasted_bytes == 0.0, config

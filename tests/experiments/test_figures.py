"""Smoke + shape tests for the per-figure regeneration functions.

Each figure function runs on a tiny corpus here; the benchmarks run them
at full size.  Shape assertions mirror the paper's qualitative claims.
"""

import statistics

import pytest

from repro.experiments import figures


@pytest.fixture(scope="module")
def n():
    return 6  # pages per corpus in these smoke runs


class TestMotivationFigures:
    def test_fig1_news_slower_than_top100(self, n):
        series = figures.fig1_plt_today(count=n)
        assert statistics.median(
            series["news_sports_http1_plt"]
        ) > statistics.median(series["top100_http1_plt"])

    def test_fig2_bounds_below_web(self, n):
        series = figures.fig2_lower_bounds(count=n)
        assert statistics.median(
            series["max_cpu_network"]
        ) < statistics.median(series["loads_from_web"])
        for cpu, net, combined in zip(
            series["cpu_bound"],
            series["network_bound"],
            series["max_cpu_network"],
        ):
            assert combined == max(cpu, net)

    def test_fig3_http2_between_bound_and_http1(self, n):
        series = figures.fig3_http2_estimate(count=n)
        assert statistics.median(series["http2_baseline"]) <= (
            statistics.median(series["http1"])
        )

    def test_fig4_network_fraction_positive(self, n):
        series = figures.fig4_critical_path(count=n)
        assert all(0 <= f <= 1 for f in series["http2_network_fraction"])
        assert statistics.median(series["http2_network_fraction"]) > 0.1


class TestDesignFigures:
    def test_fig7_horizons(self, n):
        series = figures.fig7_persistence(count=n)
        assert statistics.median(series["one_hour"]) >= statistics.median(
            series["one_week"]
        )

    def test_fig9_phone_overlap_higher(self, n):
        series = figures.fig9_device_iou(count=n)
        assert statistics.median(series["oneplus3"]) > statistics.median(
            series["nexus10"]
        )

    def test_fig11_vroom_gentler_than_asap(self):
        series = figures.fig11_scheduling_example()
        assert len(series["vroom_delta"]) == len(
            series["push_all_fetch_asap_delta"]
        )
        # Vroom should not delay early processable resources more than
        # the fetch-ASAP strawman does on aggregate.
        assert sum(series["vroom_delta"]) <= sum(
            series["push_all_fetch_asap_delta"]
        )


class TestEvaluationFigures:
    def test_fig13_ordering(self, n):
        collected = figures.fig13_headline(count=n)
        plt = collected["plt"]
        assert statistics.median(plt["vroom"]) < statistics.median(
            plt["http2"]
        )
        assert statistics.median(plt["lower_bound"]) <= statistics.median(
            plt["vroom"]
        )
        assert set(collected) == {"plt", "aft", "speed_index"}

    def test_fig14_vroom_beats_polaris_at_median(self, n):
        series = figures.fig14_polaris(count=n)
        assert statistics.median(series["vroom"]) < statistics.median(
            series["polaris"]
        )

    def test_fig15_gap_positive(self):
        result = figures.fig15_aft_example()
        assert result["aft_gap"] > 0

    def test_fig16_improvements_mostly_positive(self, n):
        series = figures.fig16_discovery_fetch(count=n)
        assert statistics.median(series["discovery_all"]) > 0
        assert statistics.median(series["fetch_all"]) > 0

    def test_fig17_shape(self, n):
        series = figures.fig17_prev_load(count=n)
        assert series["lower_bound"][1] <= series["vroom"][1]
        assert series["vroom"][1] <= series["http2_baseline"][1]

    def test_fig18_vroom_beats_push_only(self, n):
        series = figures.fig18_push_only(count=n)
        assert series["vroom"][1] < series["push_all_no_hints"][1]

    def test_fig19_vroom_beats_strawman(self, n):
        series = figures.fig19_scheduling(count=n)
        assert series["vroom"][1] <= series["push_all_fetch_asap"][1]
        assert series["vroom"][1] < series["no_push_no_hints"][1]

    def test_fig20_warm_cache_gains(self):
        result = figures.fig20_warm_cache(count=4)
        for label in ("b2b", "1day", "1week"):
            assert result[label]["median_gain"][0] > 0

    def test_fig21_shapes(self):
        series = figures.fig21_accuracy(count=10)
        assert statistics.median(series["vroom_fn"]) <= statistics.median(
            series["offline_only_fn"]
        )
        assert statistics.median(
            series["online_only_fp"]
        ) >= statistics.median(series["vroom_fp"])
        assert statistics.median(series["predictable_count_share"]) > 0.6

    def test_flux_calibration(self, n):
        series = figures.flux_calibration(count=n)
        assert all(0 <= f <= 1 for f in series["back_to_back_flux"])

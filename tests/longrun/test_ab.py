"""Paired A/B lanes: identical stream, policy-only deltas."""

import pytest

from repro.longrun import STREAM_FIELDS, run_paired
from repro.scenario import ScenarioSpec

SMALL = dict(
    pages=4,
    horizon_hours=1.5,
    rate_per_hour=300.0,
    shards=3,
    replication=2,
    rollup_hours=0.5,
    shard_cycle_every_hours=0.5,
    shard_cycle_down_hours=0.2,
    shard_cycle_start_hours=0.25,
)


class TestPairedLanes:
    def test_replication_ablation_pairs_cleanly(self):
        spec = ScenarioSpec(**SMALL)
        paired = run_paired(
            spec, {}, {"replication": 1}, label_a="base", label_b="r1"
        )
        assert paired["stream_identical"]
        rows_a = paired["lane_a"]["report"]["rollups"]
        rows_b = paired["lane_b"]["report"]["rollups"]
        assert len(rows_a) == len(rows_b) == len(paired["windows"])
        for row_a, row_b, window in zip(
            rows_a, rows_b, paired["windows"]
        ):
            assert row_a["lookups"] == row_b["lookups"]
            assert window["lookups"] == row_a["lookups"]
        # Removing the replicas must hurt availability through outages.
        totals_b = paired["lane_b"]["report"]["totals"]
        totals_a = paired["lane_a"]["report"]["totals"]
        assert totals_b["unavailable"] > totals_a["unavailable"]
        assert (
            paired["summary"]["served_rate_delta"]["min"] < 0.0
        )

    def test_identical_policies_zero_deltas(self):
        spec = ScenarioSpec(**SMALL)
        paired = run_paired(spec, {}, {})
        assert (
            paired["lane_a"]["report"]["fingerprint"]
            == paired["lane_b"]["report"]["fingerprint"]
        )
        for window in paired["windows"]:
            assert all(
                delta == 0.0 for delta in window["deltas"].values()
            )

    def test_summary_carries_every_metric(self):
        paired = run_paired(ScenarioSpec(**SMALL), {}, {"vnodes": 32})
        for key in (
            "served_rate_delta",
            "p50_ms_delta",
            "p99_ms_delta",
            "mean_ms_delta",
            "hit_rate_delta",
            "stale_hit_rate_delta",
            "miss_rate_delta",
        ):
            assert key in paired["summary"]


class TestStreamGuards:
    @pytest.mark.parametrize("field", sorted(STREAM_FIELDS))
    def test_stream_fields_rejected(self, field):
        spec = ScenarioSpec(**SMALL)
        value = getattr(spec, field)
        with pytest.raises(ValueError, match="stream"):
            run_paired(spec, {}, {field: value})

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown spec field"):
            run_paired(ScenarioSpec(**SMALL), {"warp_speed": 9}, {})

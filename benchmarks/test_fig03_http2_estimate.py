"""Fig 3: estimated impact of global HTTP/2 adoption.

Paper: universal HTTP/2 cuts the News+Sports median from ~10.5 s to ~8 s,
still well short of the ~5 s bound; configuring first parties to push all
their static content adds little on top.
"""

from benchmarks.conftest import run_once
from repro.analysis.stats import median
from repro.experiments import figures
from repro.experiments.report import print_figure


def test_fig03_http2_estimate(benchmark, corpus_size):
    series = run_once(
        benchmark, figures.fig3_http2_estimate, count=corpus_size
    )
    series.pop("loads_from_web")  # identical to http1 in replay
    print_figure(
        "Fig 3: HTTP/2 adoption estimate (News+Sports)",
        series,
        paper_values={
            "http2_baseline": 8.0,
            "push_all_static": 7.8,
            "http1": 10.5,
        },
    )
    assert median(series["http2_baseline"]) <= median(series["http1"])
    # Push-all-static offers little additional benefit over HTTP/2.
    gain = median(series["http2_baseline"]) - median(
        series["push_all_static"]
    )
    assert gain < 1.0

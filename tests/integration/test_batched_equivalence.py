"""Batched timeline executor vs the reference engine: bit-for-bit.

``NetworkConfig.batched_timeline`` swaps the per-object event queue for
the array-backed :class:`~repro.net.simulator.ArraySimulator` and arms
the link's homogeneous-run batch loop, busy-set cache and closed-form
water-filling.  Like ``link_fast_forward`` before it, the flag may only
ever be a *performance* knob: every observable must equal the reference
engine's, and the batched executor must schedule exactly the events the
fast-forward engine does (seq parity) so same-time ordering can never
diverge.

The property-style sweep below draws random (loss, fault-plan, scenario)
triples from a seeded RNG rather than enumerating a fixed grid — each CI
run re-checks the same deterministic sample, but the sample covers
corners (lossy + faulted + pushed) no hand-picked matrix lists.
"""

import random

import pytest

from repro import audit
from repro.baselines.configs import run_config
from repro.net.faults import ResiliencePolicy, hint_fault_plan
from repro.replay.recorder import record_snapshot

#: Scenario axis: the configurations exercising distinct engine paths
#: (client-driven, hint-driven, and push-everything server behaviour).
SCENARIO_CONFIGS = ["http2", "vroom", "push-all-fetch-asap"]
LOSS_RATES = [0.0, 0.01, 0.03]
FAULT_RATES = [0.0, 0.2, 0.4]

#: Deterministic property sample: 8 random triples, seeded so every run
#: checks the same points.  Bump the seed to resample after engine work.
_RNG = random.Random(0xBA7C4)
TRIPLES = [
    (
        _RNG.choice(LOSS_RATES),
        _RNG.choice(FAULT_RATES),
        _RNG.choice(SCENARIO_CONFIGS),
        _RNG.randrange(4),  # corpus page index
    )
    for _ in range(8)
]


def _run(page, snapshot, store, config, loss, fault_rate, **engine):
    plan = hint_fault_plan(fault_rate, seed=11) if fault_rate else None
    resilience = ResiliencePolicy() if plan else None
    return run_config(
        config,
        page,
        snapshot,
        store,
        loss_rate=loss,
        fault_plan=plan,
        resilience=resilience,
        **engine,
    )


@pytest.mark.parametrize(
    "loss,fault_rate,config,page_index",
    TRIPLES,
    ids=[
        f"loss{loss}-fault{fault}-{config}-p{idx}"
        for loss, fault, config, idx in TRIPLES
    ],
)
def test_random_triples_bit_identical(
    corpus, stamp, loss, fault_rate, config, page_index
):
    """Batched == reference on a random (loss, faults, scenario) triple.

    One materialization is shared by all three runs — the comparison is
    about engine modes, never snapshot drift.
    """
    page = corpus[page_index]
    snapshot = page.materialize(stamp)
    store = record_snapshot(snapshot)
    reference = _run(
        page, snapshot, store, config, loss, fault_rate,
        link_fast_forward=False, batched_timeline=False,
    )
    fast_forward = _run(
        page, snapshot, store, config, loss, fault_rate,
        link_fast_forward=True, batched_timeline=False,
    )
    batched = _run(
        page, snapshot, store, config, loss, fault_rate,
        link_fast_forward=True, batched_timeline=True,
    )
    assert batched == reference, (
        f"{page.name} under {config!r} loss={loss} faults={fault_rate}: "
        f"batched executor changed observables "
        f"(plt {reference.plt!r} vs {batched.plt!r})"
    )
    assert fast_forward == reference
    # Seq parity: identical schedule/cancel traffic, so same-time
    # ordering is structurally incapable of diverging.
    assert (
        batched.engine_counters["events_scheduled"]
        == fast_forward.engine_counters["events_scheduled"]
    )
    assert (
        batched.engine_counters["events_cancelled"]
        == fast_forward.engine_counters["events_cancelled"]
    )


def test_audited_batched_corpus_load_identical(corpus, stamp):
    """REPRO_AUDIT=1 on a full corpus scenario: the invariant hooks all
    hold under the batched executor, and arming them changes nothing."""
    page = corpus[0]
    snapshot = page.materialize(stamp)
    store = record_snapshot(snapshot)
    plain = _run(
        page, snapshot, store, "vroom", 0.01, 0.2,
        link_fast_forward=True, batched_timeline=True,
    )
    audit.enable()
    try:
        audited = _run(
            page, snapshot, store, "vroom", 0.01, 0.2,
            link_fast_forward=True, batched_timeline=True,
        )
    finally:
        audit.disable()
    assert audited == plain


def test_batched_counters_expose_batch_activity(page, snapshot, store):
    """The new counters surface on LoadMetrics and stay zero when off."""
    on = run_config(
        "push-all-fetch-asap", page, snapshot, store, batched_timeline=True
    )
    off = run_config(
        "push-all-fetch-asap", page, snapshot, store, batched_timeline=False
    )
    assert on.engine_counters["link_batch_steps"] >= (
        on.engine_counters["link_batch_runs"]
    )
    assert off.engine_counters["link_batch_runs"] == 0
    assert off.engine_counters["link_batch_steps"] == 0
    assert off.engine_counters["link_wf_fast_hits"] == 0
    assert on == off

"""HTTP/1.1 and HTTP/2 client transport over the shared access link.

The client owns per-domain transport state: DNS resolution, connection
establishment (TCP + TLS handshakes), request queuing (HTTP/1.1's six
connections per domain) or multiplexing (HTTP/2's single connection), and
HTTP/2 server push.  Response bodies flow through the
:class:`~repro.net.link.AccessLink`; everything before the first body byte
is latency arithmetic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.calibration import (
    DNS_LOOKUP_TIME,
    HTTP1_MAX_CONNS_PER_DOMAIN,
    HTTP1_REQUEST_OVERHEAD,
    LTE_DOWNLINK_BPS,
    LTE_RTT,
    LTE_UPLINK_BPS,
    REQUEST_BYTES,
    RESPONSE_HEADER_BYTES,
    HINT_HEADER_BYTES_PER_URL,
    TLS_HANDSHAKE_RTTS,
)
from repro import audit
from repro.net.faults import FaultKind, FaultPlan
from repro.net.link import AccessLink, StreamScheduling
from repro.net.origin import OriginServer, Response
from repro.net.simulator import SimulatorLike


class HttpVersion(enum.Enum):
    HTTP1 = "http/1.1"
    HTTP2 = "http/2"


@dataclass
class NetworkConfig:
    """Transport knobs for one experiment configuration."""

    version: HttpVersion = HttpVersion.HTTP2
    downlink_bps: float = LTE_DOWNLINK_BPS
    uplink_bps: float = LTE_UPLINK_BPS
    base_rtt: float = LTE_RTT
    use_tls: bool = True
    max_conns_per_domain: int = HTTP1_MAX_CONNS_PER_DOMAIN
    #: Response scheduling within an HTTP/2 connection.  FIFO models the
    #: paper's modified Mahimahi; FAIR is stock interleaving.
    h2_scheduling: StreamScheduling = StreamScheduling.FAIR
    #: Whether servers are allowed to push (they still decide what).
    push_enabled: bool = True
    #: Zero out all latency and shrink handshakes (CPU-bound lower bound).
    zero_latency: bool = False
    #: Per-packet loss probability on the access link (0 = clean).
    loss_rate: float = 0.0
    #: Injected-failure plan, shared with every origin server (None and
    #: an empty plan are both "clean": no rolls happen at all).
    fault_plan: Optional[FaultPlan] = None
    #: Per-attempt deadline from request send to last body byte.
    #: Zero disables timeouts (the historical behaviour).
    request_timeout: float = 0.0
    #: Re-dispatches after a failed attempt before the fetch fails for good.
    max_retries: int = 0
    #: First retry delay in seconds; doubles with each further retry.
    retry_backoff: float = 0.25
    #: Coalesce the link's refresh ticks into inline clock advances.
    #: Bit-identical to the event-per-tick path; off exists for the
    #: equivalence suite and for bisecting engine regressions.
    link_fast_forward: bool = True
    #: Batched timeline executor: array-backed event storage
    #: (:class:`~repro.net.simulator.ArraySimulator`) plus the link's
    #: homogeneous-run batch loop, busy-set cache and closed-form
    #: water-filling.  Bit-identical to the reference engine; off selects
    #: the PR-5 per-object engine for equivalence and bisection.
    batched_timeline: bool = True
    #: Route general water-filling recomputes through the numpy-backed
    #: vectorised solver (:mod:`repro.net.flow`).  Opt-in; numpy is a
    #: soft dependency — without it the solver falls back to pure python.
    vectorized_flow: bool = False
    #: Demand-driven browser wakeups: the preload scanner arms from
    #: fetch-created callbacks landing on the legacy poll's exact 5 ms
    #: grid, eliding every no-op poll tick so silent link windows stay
    #: open for batch runs.  Bit-identical to the poll engine; off keeps
    #: the standing poll loop for equivalence and bisection.
    event_driven_browser: bool = True

    def rtt_to(self, server: OriginServer) -> float:
        if self.zero_latency:
            return 0.0
        return self.base_rtt + server.server_rtt


@dataclass
class Fetch:
    """One client-initiated request/response exchange (or a push)."""

    url: str
    domain: str
    priority: float = 1.0
    is_push: bool = False
    #: Speculative hint-driven prefetch (vs. a locally-needed fetch).
    #: Fault plans can target these specifically.
    is_hint: bool = False
    requested_at: float = 0.0
    headers_at: Optional[float] = None
    completed_at: Optional[float] = None
    response: Optional[Response] = None
    #: 1-based attempt counter; each retry re-dispatches with the next one.
    attempt: int = 1
    #: Terminal failure: every attempt (1 + max_retries) was lost.
    failed: bool = False
    on_headers: Optional[Callable[["Fetch"], None]] = None
    on_complete: Optional[Callable[["Fetch"], None]] = None
    #: Invoked exactly once, on terminal failure.
    on_error: Optional[Callable[["Fetch"], None]] = None
    #: Not-yet-fired (body_offset, callback) watch points.  Kept on the
    #: fetch (not just the stream) and re-armed on every response attempt,
    #: so a retry never loses scanner callbacks.
    _body_watches: List = field(default_factory=list)
    _stream = None
    _header_bytes = float(RESPONSE_HEADER_BYTES)
    _timeout_event = None
    _drop_planned = False

    def watch_body_offset(self, offset: float, callback: Callable[[], None]) -> None:
        """Fire ``callback`` when ``offset`` bytes of the *body* arrived."""
        entry = (offset, callback)
        self._body_watches.append(entry)
        if self._stream is not None:
            self._arm_watch(entry)

    def _arm_watch(self, entry) -> None:
        stream = self._stream
        offset, callback = entry

        def fire() -> None:
            try:
                self._body_watches.remove(entry)
            except ValueError:
                pass
            callback()

        stream.watch_offset(
            min(offset + self._header_bytes, stream.bytes_total), fire
        )

    @property
    def in_flight(self) -> bool:
        return self.completed_at is None and not self.failed


class PushedResponse(Fetch):
    """A server-initiated response (HTTP/2 PUSH)."""


class _Connection:
    """One transport connection to a domain."""

    def __init__(self, client: "HttpClient", domain: str):
        self.client = client
        self.domain = domain
        self.ready_at: Optional[float] = None
        scheduling = (
            client.config.h2_scheduling
            if client.config.version is HttpVersion.HTTP2
            else StreamScheduling.FAIR
        )
        rtt = client.config.rtt_to(client.servers[domain])
        self.channel = client.link.open_channel(scheduling, rtt=rtt)
        self.busy = False  # HTTP/1.1: serving a response right now
        self.queue: List[Fetch] = []  # HTTP/1.1 waiting requests


class _DomainState:
    def __init__(self) -> None:
        self.dns_done_at: Optional[float] = None
        self.dns_waiters: List[Callable[[], None]] = []
        self.connections: List[_Connection] = []
        self.pending: List[Fetch] = []  # waiting for a free HTTP/1.1 conn


class HttpClient:
    """The browser's network stack."""

    def __init__(
        self,
        sim: SimulatorLike,
        servers: Dict[str, OriginServer],
        config: Optional[NetworkConfig] = None,
    ):
        self.sim = sim
        self.servers = servers
        self.config = config or NetworkConfig()
        self.link = AccessLink(
            sim,
            self.config.downlink_bps,
            loss_rate=self.config.loss_rate,
            fast_forward=self.config.link_fast_forward,
            batched=self.config.batched_timeline,
            vectorized_flow=self.config.vectorized_flow,
            lazy_ticks=self.config.event_driven_browser,
        )
        self._domains: Dict[str, _DomainState] = {}
        #: url -> Fetch for every exchange ever started (including pushes).
        self.fetches: Dict[str, Fetch] = {}
        #: Callback invoked when a push's headers arrive.
        self.on_push: Optional[Callable[[PushedResponse], None]] = None
        #: Tell servers whether a URL is already cached (skip pushing it).
        self.is_cached: Callable[[str], bool] = lambda url: False
        #: Resilience counters, folded into LoadMetrics by the engine.
        self.retries = 0
        self.timeouts = 0
        self.drops = 0
        self.failures = 0
        self.error_responses = 0
        #: Body/header bytes delivered for attempts that ultimately failed
        #: (injected 5xx bodies, partial transfers cut by drops/timeouts).
        self.fault_wasted_bytes = 0.0
        #: Audit state: (domain, weight) -> last completed stream id, for
        #: the per-origin FIFO completion-order invariant.
        self._audit_fifo_last: Dict = {}
        plan = self.config.fault_plan
        if plan is not None and plan.rules:
            for server in servers.values():
                if server.fault_plan is None:
                    server.fault_plan = plan

    # -- public API ----------------------------------------------------------

    def fetch(
        self,
        url: str,
        *,
        priority: float = 1.0,
        is_hint: bool = False,
        on_headers: Optional[Callable[[Fetch], None]] = None,
        on_complete: Optional[Callable[[Fetch], None]] = None,
        on_error: Optional[Callable[[Fetch], None]] = None,
    ) -> Fetch:
        """Request ``url``; duplicate in-flight requests are coalesced."""
        existing = self.fetches.get(url)
        if existing is not None:
            if existing.failed:
                # Callers joining a dead exchange hear about it at once;
                # re-fetching requires forget() first.
                if on_error is not None:
                    self.sim.call_soon(lambda: on_error(existing))
                return existing
            self._attach(existing, on_headers, on_complete)
            return existing
        domain = url.partition("/")[0]
        fetch = Fetch(
            url=url,
            domain=domain,
            priority=priority,
            is_hint=is_hint,
            requested_at=self.sim.now,
            on_headers=on_headers,
            on_complete=on_complete,
            on_error=on_error,
        )
        self.fetches[url] = fetch
        self._after_dns(domain, lambda: self._dispatch(fetch))
        return fetch

    def forget(self, url: str) -> None:
        """Drop a terminally-failed exchange so the URL can be re-fetched."""
        fetch = self.fetches.get(url)
        if fetch is not None and fetch.failed:
            del self.fetches[url]

    def preconnect(self, domain: str) -> None:
        """Resolve DNS and warm a connection to ``domain`` ahead of use.

        Dependency hints tell the client every domain it will fetch from,
        so handshakes can run in parallel with earlier-stage downloads
        instead of serialising at each stage boundary.
        """
        if domain not in self.servers:
            return

        def connect() -> None:
            state = self._domain_state(domain)
            if not state.connections:
                self._new_connection(domain)

        self._after_dns(domain, connect)

    def _attach(
        self,
        fetch: Fetch,
        on_headers: Optional[Callable[[Fetch], None]],
        on_complete: Optional[Callable[[Fetch], None]],
    ) -> None:
        """Join callbacks onto an already-started exchange."""
        if on_headers is not None:
            if fetch.headers_at is not None:
                self.sim.call_soon(lambda: on_headers(fetch))
            else:
                previous = fetch.on_headers
                fetch.on_headers = _chain(previous, on_headers)
        if on_complete is not None:
            if fetch.completed_at is not None:
                self.sim.call_soon(lambda: on_complete(fetch))
            else:
                previous_done = fetch.on_complete
                fetch.on_complete = _chain(previous_done, on_complete)

    # -- DNS -----------------------------------------------------------------

    def _domain_state(self, domain: str) -> _DomainState:
        state = self._domains.get(domain)
        if state is None:
            state = _DomainState()
            self._domains[domain] = state
        return state

    def _after_dns(self, domain: str, proceed: Callable[[], None]) -> None:
        state = self._domain_state(domain)
        if state.dns_done_at is not None and state.dns_done_at <= self.sim.now:
            proceed()
            return
        first_waiter = not state.dns_waiters and state.dns_done_at is None
        state.dns_waiters.append(proceed)
        if first_waiter:
            delay = 0.0 if self.config.zero_latency else DNS_LOOKUP_TIME
            self.sim.schedule_drop(delay, lambda: self._dns_done(domain))

    def _dns_done(self, domain: str) -> None:
        state = self._domain_state(domain)
        state.dns_done_at = self.sim.now
        waiters, state.dns_waiters = state.dns_waiters, []
        for proceed in waiters:
            proceed()

    # -- connections ---------------------------------------------------------

    def _handshake_time(self, server: OriginServer) -> float:
        if self.config.zero_latency:
            return 0.0
        rtt = self.config.rtt_to(server)
        rtts = 1 + (TLS_HANDSHAKE_RTTS if self.config.use_tls else 0)
        return rtts * rtt

    def _new_connection(self, domain: str) -> _Connection:
        server = self.servers[domain]
        conn = _Connection(self, domain)
        conn.ready_at = self.sim.now + self._handshake_time(server)
        self._domain_state(domain).connections.append(conn)
        return conn

    def _dispatch(self, fetch: Fetch) -> None:
        if fetch.domain not in self.servers:
            raise KeyError(f"no origin server for domain {fetch.domain!r}")
        if self.config.version is HttpVersion.HTTP2:
            self._dispatch_h2(fetch)
        else:
            self._dispatch_h1(fetch)

    def _dispatch_h2(self, fetch: Fetch) -> None:
        state = self._domain_state(fetch.domain)
        if not state.connections:
            self._new_connection(fetch.domain)
        conn = state.connections[0]
        start = max(self.sim.now, conn.ready_at or 0.0)
        self.sim.schedule_at(start, lambda: self._send_request(conn, fetch))

    def _dispatch_h1(self, fetch: Fetch) -> None:
        state = self._domain_state(fetch.domain)
        idle = next(
            (
                conn
                for conn in state.connections
                if not conn.busy and not conn.queue
            ),
            None,
        )
        if idle is None and len(state.connections) < self.config.max_conns_per_domain:
            idle = self._new_connection(fetch.domain)
        if idle is None:
            state.pending.append(fetch)
            state.pending.sort(key=lambda item: item.priority)
            return
        idle.busy = True
        start = max(self.sim.now, idle.ready_at or 0.0)
        self.sim.schedule_at(start, lambda: self._send_request(idle, fetch))

    def _h1_connection_free(self, conn: _Connection) -> None:
        conn.busy = False
        state = self._domain_state(conn.domain)
        if state.pending:
            nxt = state.pending.pop(0)
            conn.busy = True
            self.sim.call_soon(lambda: self._send_request(conn, nxt))

    # -- request / response --------------------------------------------------

    def _send_request(self, conn: _Connection, fetch: Fetch) -> None:
        server = self.servers[fetch.domain]
        rtt = self.config.rtt_to(server)
        uplink = (
            0.0
            if self.config.zero_latency
            else REQUEST_BYTES * 8.0 / self.config.uplink_bps
        )
        if (
            self.config.version is HttpVersion.HTTP1
            and not self.config.zero_latency
        ):
            uplink += HTTP1_REQUEST_OVERHEAD
        fault = None
        plan = self.config.fault_plan
        if plan is not None and not fetch.is_push:
            fault = plan.transport_fault(
                fetch.url,
                fetch.domain,
                now=self.sim.now,
                attempt=fetch.attempt,
                is_hint=fetch.is_hint,
            )
        if fault is FaultKind.SLOW_START_RESET:
            # A loss burst collapses the window; the exchange still runs.
            conn.channel.reset_window()
            fault = None
        self._arm_timeout(conn, fetch)
        response = server.respond(
            fetch.url,
            is_push=fetch.is_push,
            now=self.sim.now,
            attempt=fetch.attempt,
            is_hint=fetch.is_hint,
        )
        if response is None:
            raise KeyError(f"{fetch.domain} has no content for {fetch.url!r}")
        fetch.response = response
        if fault is FaultKind.STALL:
            # The response vanishes in the network: nothing arrives, and
            # only the request timeout (if armed) ends the exchange.
            return
        fetch._drop_planned = fault is FaultKind.CONNECTION_DROP
        arrival = uplink + rtt / 2.0 + response.think_time + rtt / 2.0
        if fetch.is_push:
            # A pushed response skips the request leg entirely.
            arrival = response.think_time
        self.sim.schedule_drop(
            arrival, lambda: self._start_response(conn, fetch, response)
        )

    def _start_response(
        self, conn: _Connection, fetch: Fetch, response: Response
    ) -> None:
        header_bytes = RESPONSE_HEADER_BYTES + HINT_HEADER_BYTES_PER_URL * len(
            response.hints
        )
        total = header_bytes + response.size
        stream = conn.channel.start_stream(
            total,
            on_complete=lambda: self._response_done(conn, fetch),
            weight=1.0 / max(fetch.priority, 0.05),
        )
        fetch._stream = stream
        fetch._header_bytes = float(header_bytes)
        stream.watch_offset(
            min(header_bytes, total), lambda: self._headers_arrived(fetch)
        )
        for entry in list(fetch._body_watches):
            fetch._arm_watch(entry)
        if fetch._drop_planned:
            fraction = self.config.fault_plan.drop_fraction(
                fetch.url, fetch.attempt
            )
            drop_at = min(max(1.0, fraction * total), max(0.0, total - 1.0))
            stream.watch_offset(
                drop_at,
                lambda: self._connection_dropped(conn, fetch, stream),
            )
        # Server push rides the same connection, after this response starts.
        if (
            self.config.push_enabled
            and not fetch.is_push
            and response.pushes
        ):
            for push_url in response.pushes:
                self._start_push(conn, push_url)

    def _start_push(self, conn: _Connection, url: str) -> None:
        if url in self.fetches or self.is_cached(url):
            return
        server = self.servers[conn.domain]
        push = PushedResponse(
            url=url,
            domain=conn.domain,
            is_push=True,
            requested_at=self.sim.now,
        )
        self.fetches[url] = push
        self.sim.call_soon(lambda: self._send_request(conn, push))

    def _headers_arrived(self, fetch: Fetch) -> None:
        if fetch.headers_at is not None:
            return
        fetch.headers_at = self.sim.now
        if isinstance(fetch, PushedResponse) and self.on_push is not None:
            self.on_push(fetch)
        if fetch.on_headers is not None:
            fetch.on_headers(fetch)

    def _response_done(self, conn: _Connection, fetch: Fetch) -> None:
        if fetch.failed or fetch.completed_at is not None:
            return
        self._cancel_timeout(fetch)
        response = fetch.response
        if response is not None and response.error and not fetch.is_push:
            # Injected 5xx: the body arrived but it isn't the content.
            self.error_responses += 1
            if fetch._stream is not None:
                self.fault_wasted_bytes += fetch._stream.bytes_total
            if self.config.version is HttpVersion.HTTP1:
                self._h1_connection_free(conn)
            self._retry_or_fail(fetch)
            return
        if fetch.headers_at is None:
            self._headers_arrived(fetch)
        fetch.completed_at = self.sim.now
        if audit.ENABLED and fetch._stream is not None:
            audit.fetch_bytes_accounted(
                fetch.url,
                fetch._stream.bytes_total,
                fetch._header_bytes,
                response.size if response is not None else 0.0,
            )
            if (
                self.config.version is HttpVersion.HTTP2
                and self.config.h2_scheduling is StreamScheduling.FIFO
            ):
                audit.fifo_order(
                    self._audit_fifo_last,
                    fetch.domain,
                    fetch._stream.weight,
                    fetch._stream.id,
                )
        if self.config.version is HttpVersion.HTTP1:
            self._h1_connection_free(conn)
        if fetch.on_complete is not None:
            fetch.on_complete(fetch)

    # -- timeouts, faults, retries -------------------------------------------

    def _arm_timeout(self, conn: _Connection, fetch: Fetch) -> None:
        """Per-attempt deadline covering think time and the full body."""
        if fetch.is_push or self.config.request_timeout <= 0:
            return
        fetch._timeout_event = self.sim.schedule(
            self.config.request_timeout, lambda: self._timed_out(conn, fetch)
        )

    def _cancel_timeout(self, fetch: Fetch) -> None:
        if fetch._timeout_event is not None:
            fetch._timeout_event.cancel()
            fetch._timeout_event = None

    def _timed_out(self, conn: _Connection, fetch: Fetch) -> None:
        fetch._timeout_event = None
        if fetch.failed or fetch.completed_at is not None:
            return
        self.timeouts += 1
        stream = fetch._stream
        if stream is not None and not stream.done:
            self.fault_wasted_bytes += stream.bytes_done
        if self.config.version is HttpVersion.HTTP1:
            self._h1_connection_free(conn)
        self._retry_or_fail(fetch)

    def _connection_dropped(
        self, conn: _Connection, fetch: Fetch, stream
    ) -> None:
        if (
            fetch._stream is not stream
            or fetch.failed
            or fetch.completed_at is not None
        ):
            return
        self.drops += 1
        self.fault_wasted_bytes += stream.bytes_done
        self._cancel_timeout(fetch)
        if self.config.version is HttpVersion.HTTP1:
            self._h1_connection_free(conn)
        self._retry_or_fail(fetch)

    def _abort_attempt(self, fetch: Fetch) -> None:
        """Tear down the current attempt's timer and stream, keeping the
        fetch's unfired body watches for the next attempt (if any)."""
        self._cancel_timeout(fetch)
        stream, fetch._stream = fetch._stream, None
        fetch._drop_planned = False
        fetch.response = None
        fetch.headers_at = None
        if stream is not None and not stream.done:
            stream.abort()

    def _retry_or_fail(self, fetch: Fetch) -> None:
        self._abort_attempt(fetch)
        if fetch.attempt > self.config.max_retries:
            fetch.failed = True
            self.failures += 1
            if fetch.on_error is not None:
                handler = fetch.on_error
                self.sim.call_soon(lambda: handler(fetch))
            return
        fetch.attempt += 1
        self.retries += 1
        delay = self.config.retry_backoff * (2.0 ** (fetch.attempt - 2))
        self.sim.schedule_drop(delay, lambda: self._dispatch(fetch))


def _chain(
    first: Optional[Callable[[Fetch], None]],
    second: Callable[[Fetch], None],
) -> Callable[[Fetch], None]:
    def combined(fetch: Fetch) -> None:
        if first is not None:
            first(fetch)
        second(fetch)

    return combined

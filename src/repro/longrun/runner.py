"""Long-horizon streaming runner: days of service time, constant memory.

:class:`LongRunner` drives a :class:`~repro.service.backend.HintService`
through the workload a :class:`~repro.scenario.spec.ScenarioSpec`
describes — Zipf×Poisson lookups, periodic offline-resolution ticks,
shards failing and healing on the spec's cycle, content rotating under
the store per the corpus churn model — without the fixed-size event
list the DES-based :meth:`HintService.run` builds.  Three disciplines
make horizons of simulated days (millions of lookups) tractable:

**Streaming generation.**  Arrivals are drawn one at a time with the
exact draw order of :class:`repro.service.workload.Workload` (gap, page,
device, user), so the stream is a pure function of the workload seed;
at most one generated-but-unprocessed lookup exists at any moment.

**Constant-memory aggregation.**  Per-lookup records are never kept.
A :class:`RollupAggregator` folds each lookup into the current rollup
window (fixed-bucket :class:`LatencyHistogram` + Welford running stats)
and emits one row per window; state is O(horizon / rollup_hours).
Per-page resolver memo tables are trimmed after every tick — they are
keyed by resolution hour and would otherwise grow forever for zero
hit-rate benefit.

**Checkpoint/resume.**  The runner's whole state (service, RNG, clock,
pending lookahead, aggregator, digests, fingerprint chain) pickles into
a self-verifying checkpoint.  Resuming and running to the horizon is
bit-identical to the uninterrupted run: the final report fingerprint
matches exactly, and :func:`checkpoint_roundtrip` asserts it under
``REPRO_AUDIT=1``.

The served-hint stream is fingerprinted as a *hex-string* sha1 chain —
``chain = sha1(chain + record)`` per lookup — rather than a live hash
object, because hashlib objects do not pickle and the chain must ride
through checkpoints.
"""

from __future__ import annotations

import hashlib
import json
import math
import pickle
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import audit
from repro.core.cache_digest import CacheDigest, filter_pushes
from repro.scenario.spec import ScenarioSpec
from repro.service.backend import HintService
from repro.service.store import LatencyHistogram, LookupStatus
from repro.service.workload import Lookup, ZipfPopularity

CHECKPOINT_VERSION = 1

#: Event-kind priorities at equal simulated times: close the rollup
#: window first (events *at* the boundary belong to the next window),
#: then run the scheduler tick, then serve arrivals.
_KIND_ROLLUP, _KIND_TICK, _KIND_ARRIVAL = 0, 1, 2


@dataclass
class RunningStats:
    """Welford-style running mean/variance — O(1) per sample."""

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0
    min_value: float = math.inf
    max_value: float = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value

    @property
    def variance(self) -> float:
        return self.m2 / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": round(self.mean, 6),
            "std": round(math.sqrt(self.variance), 6),
            "min": round(self.min_value, 6) if self.count else 0.0,
            "max": round(self.max_value, 6) if self.count else 0.0,
        }


class RollupAggregator:
    """Folds per-lookup outcomes into per-window rollup rows.

    One row per simulated rollup window; the open window holds a
    fixed-bucket histogram and a handful of counters, so memory never
    scales with the lookup count.
    """

    def __init__(self, window_hours: float):
        self.window_hours = window_hours
        self.rows: List[dict] = []
        self.overall = RunningStats()
        self._window = self._fresh_window()
        self._prev: Dict[str, float] = {}

    @staticmethod
    def _fresh_window() -> dict:
        return {
            "lookups": 0,
            "hits": 0,
            "stale_hits": 0,
            "cold": 0,
            "unavailable": 0,
            "digest_lookups": 0,
            "digest_filtered_urls": 0,
            "hist": LatencyHistogram(),
            "stats": RunningStats(),
        }

    def record(
        self,
        status: LookupStatus,
        latency_ms: float,
        *,
        unavailable: bool,
        digest_used: bool,
        filtered_urls: int,
    ) -> None:
        window = self._window
        window["lookups"] += 1
        if status is LookupStatus.HIT:
            window["hits"] += 1
        elif status is LookupStatus.STALE_HIT:
            window["stale_hits"] += 1
        else:
            window["cold"] += 1
        if unavailable:
            window["unavailable"] += 1
        if digest_used:
            window["digest_lookups"] += 1
            window["digest_filtered_urls"] += filtered_urls
        window["hist"].record(latency_ms)
        window["stats"].add(latency_ms)
        self.overall.add(latency_ms)

    def close_window(
        self,
        begin_hours: float,
        end_hours: float,
        snapshot: Dict[str, float],
        down_shards: List[int],
    ) -> None:
        """Emit the open window's row; ``snapshot`` drives the deltas."""
        window = self._window
        summary = window["hist"].summary()
        served = window["hits"] + window["stale_hits"]
        row = {
            "window": len(self.rows),
            "begin_hours": round(begin_hours, 6),
            "end_hours": round(end_hours, 6),
            "lookups": window["lookups"],
            "served": served,
            "served_rate": (
                round(served / window["lookups"], 6)
                if window["lookups"]
                else 0.0
            ),
            "hits": window["hits"],
            "stale_hits": window["stale_hits"],
            "cold": window["cold"],
            "unavailable": window["unavailable"],
            "digest_lookups": window["digest_lookups"],
            "digest_filtered_urls": window["digest_filtered_urls"],
            "mean_ms": round(window["stats"].mean, 6),
            "p50_ms": summary["p50_ms"],
            "p99_ms": summary["p99_ms"],
            "down_shards": list(down_shards),
        }
        for key in sorted(snapshot):
            row[f"{key}_delta"] = snapshot[key] - self._prev.get(key, 0)
        self._prev = dict(snapshot)
        self.rows.append(row)
        self._window = self._fresh_window()


class LongRunner:
    """Streaming continuous-operation driver for one scenario.

    ``run_to(t)`` advances the simulation to run-relative hour ``t``
    (events are processed in time order, resumable at any boundary);
    ``report()`` is valid once the horizon is reached.  The runner is
    picklable at any pause point — see :meth:`to_checkpoint_bytes`.
    """

    def __init__(self, spec: ScenarioSpec):
        self.spec = spec
        self.pages = spec.build_pages()
        self.service = HintService(self.pages, spec.service_config())
        self.popularity = ZipfPopularity(spec.pages, spec.zipf_exponent)
        self._rng = random.Random(spec.workload_seed)
        self._mean_gap = 1.0 / spec.rate_per_hour
        self._seq = 0
        self._last_when = 0.0
        self._pending: Optional[Lookup] = None
        self._exhausted = False
        self._ticks_done = 0
        self._windows_closed = 0
        self._begun = False
        self._finished = False
        #: Run-relative hours advanced so far.
        self.clock = 0.0
        self.agg = RollupAggregator(spec.rollup_hours)
        #: Hex sha1 chain over every served lookup, seeded with the
        #: spec fingerprint so two scenarios can never share a chain.
        self.chain = spec.fingerprint()
        #: (user, page_index) -> digest of that visit's served hints;
        #: bounded by user_pool × pages, not by the horizon.
        self._digests: Dict[Tuple[str, int], CacheDigest] = {}
        self.digest_lookups = 0
        self.digest_filtered_urls = 0

    # -- stream generation ------------------------------------------------

    def _draw(self) -> Lookup:
        """Next arrival, with Workload's exact per-arrival draw order."""
        rng = self._rng
        self._last_when += rng.expovariate(1.0 / self._mean_gap)
        page_index = self.popularity.sample(rng.random())
        device_class = (
            "phone" if rng.random() < self.spec.phone_fraction else "tablet"
        )
        user = f"user{rng.randrange(self.spec.user_pool)}"
        lookup = Lookup(
            seq=self._seq,
            when_hours=self._last_when,
            page_index=page_index,
            device_class=device_class,
            user=user,
        )
        self._seq += 1
        return lookup

    # -- event handlers ---------------------------------------------------

    def _process_arrival(self, lookup: Lookup) -> None:
        spec = self.spec
        now_abs = spec.start_hour + lookup.when_hours
        result, latency_ms = self.service.process_lookup(lookup, now_abs)
        entry, status = result.entry, result.status
        served = status in (LookupStatus.HIT, LookupStatus.STALE_HIT)
        urls: List[str] = []
        if served and entry is not None:
            urls = sorted(entry.payload.get("urls", []))
        filtered = urls
        digest_used = False
        if spec.digest_filter_bits and served:
            key = (lookup.user, lookup.page_index)
            digest = self._digests.get(key)
            if digest is not None:
                digest_used = True
                filtered = filter_pushes(urls, digest)
                self.digest_lookups += 1
                self.digest_filtered_urls += len(urls) - len(filtered)
            if urls:
                # This visit's served hints become the next visit's
                # digest: the warm-client repeat-visit model.
                self._digests[key] = CacheDigest(
                    urls, bits_per_entry=spec.digest_filter_bits
                )
        record = (
            f"{lookup.seq}|{status.value if served else 'cold'}|"
            f"{','.join(filtered)}"
        )
        self.chain = hashlib.sha1(
            (self.chain + "\n" + record).encode()
        ).hexdigest()
        self.agg.record(
            status,
            latency_ms,
            unavailable=result.unavailable,
            digest_used=digest_used,
            filtered_urls=len(urls) - len(filtered),
        )

    def _process_tick(self, when_hours: float) -> None:
        self.service.process_batch(self.spec.start_hour + when_hours)
        self.service.trim_resolver_caches()
        self._ticks_done += 1

    def _counter_snapshot(self) -> Dict[str, float]:
        totals = self.service.store.totals()
        counters = self.service.scheduler.counters
        return {
            "evictions": totals["evictions"],
            "inserts": totals["inserts"],
            "failovers": totals["failovers"],
            "entries_lost": totals["entries_lost"],
            "executed": counters.executed,
            "loads_spent": counters.loads_spent,
        }

    def _close_window(self, end_hours: float) -> None:
        begin = self._windows_closed * self.spec.rollup_hours
        self.agg.close_window(
            begin,
            end_hours,
            self._counter_snapshot(),
            sorted(self.service.store.down),
        )
        self._windows_closed += 1

    # -- the loop ---------------------------------------------------------

    def run_to(self, until_hours: float) -> "LongRunner":
        """Advance to run-relative hour ``until_hours`` (clamped)."""
        spec = self.spec
        horizon = spec.horizon_hours
        until = min(until_hours, horizon)
        if until < self.clock:
            raise ValueError(
                f"cannot run backwards: at {self.clock}h, asked {until}h"
            )
        if not self._begun:
            self.service.begin()
            self._begun = True
        while True:
            if self._pending is None and not self._exhausted:
                lookup = self._draw()
                if lookup.when_hours > horizon:
                    # The stream ends at the horizon; the draw itself
                    # happens in straight and resumed runs alike, so
                    # the RNG state stays aligned.
                    self._exhausted = True
                else:
                    self._pending = lookup
            arrival = (
                self._pending.when_hours
                if self._pending is not None
                else math.inf
            )
            next_tick = (self._ticks_done + 1) * spec.batch_period_hours
            tick = next_tick if next_tick <= horizon else math.inf
            next_rollup = (self._windows_closed + 1) * spec.rollup_hours
            rollup = next_rollup if next_rollup <= horizon else math.inf
            when, kind = min(
                (rollup, _KIND_ROLLUP),
                (tick, _KIND_TICK),
                (arrival, _KIND_ARRIVAL),
            )
            if when > until:
                break
            if audit.ENABLED:
                audit.clock_monotonic(self.clock, when, "longrun event")
            if kind == _KIND_ROLLUP:
                self._close_window(when)
            elif kind == _KIND_TICK:
                self._process_tick(when)
            else:
                lookup, self._pending = self._pending, None
                self._process_arrival(lookup)
            self.clock = when
        self.clock = until
        if until >= horizon and not self._finished:
            # Close the final (possibly partial) window.
            if self._windows_closed * spec.rollup_hours < horizon:
                self._close_window(horizon)
            self._finished = True
        return self

    # -- results ----------------------------------------------------------

    def report(self) -> dict:
        """The run's constant-size report; requires the horizon reached."""
        if not self._finished:
            raise RuntimeError(
                f"report requested at {self.clock}h before the "
                f"{self.spec.horizon_hours}h horizon"
            )
        service_report = self.service.final_report(self.clock).as_dict()
        out = {
            "spec": self.spec.as_dict(),
            "spec_fingerprint": self.spec.fingerprint(),
            "horizon_hours": self.spec.horizon_hours,
            "chain": self.chain,
            "totals": service_report["totals"],
            "latency": service_report["latency"],
            "overall_latency": self.agg.overall.as_dict(),
            "scheduler": service_report["scheduler"],
            "placement": service_report["placement"],
            "tenants": service_report["tenants"],
            "warmup_hit_rate": service_report["warmup_hit_rate"],
            "digest": {
                "bits_per_entry": self.spec.digest_filter_bits,
                "filtered_lookups": self.digest_lookups,
                "filtered_urls": self.digest_filtered_urls,
            },
            "rollups": self.agg.rows,
        }
        out["fingerprint"] = report_fingerprint(out)
        return out

    # -- checkpoint / resume ----------------------------------------------

    def to_checkpoint_bytes(self) -> bytes:
        """Serialise the runner; self-verifying and resume-exact."""
        state = pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)
        return pickle.dumps(
            {
                "version": CHECKPOINT_VERSION,
                "spec_fingerprint": self.spec.fingerprint(),
                "clock_hours": self.clock,
                "state_sha256": hashlib.sha256(state).hexdigest(),
                "state": state,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    @classmethod
    def from_checkpoint_bytes(cls, data: bytes) -> "LongRunner":
        envelope = pickle.loads(data)
        if envelope.get("version") != CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {envelope.get('version')!r}"
            )
        state = envelope["state"]
        if hashlib.sha256(state).hexdigest() != envelope["state_sha256"]:
            raise ValueError("checkpoint state digest mismatch")
        runner = pickle.loads(state)
        if not isinstance(runner, cls):
            raise ValueError("checkpoint does not hold a LongRunner")
        if runner.spec.fingerprint() != envelope["spec_fingerprint"]:
            raise ValueError("checkpoint spec fingerprint mismatch")
        if audit.ENABLED:
            audit.require(
                runner.clock == envelope["clock_hours"],
                "longrun-checkpoint",
                "restored clock disagrees with the envelope",
            )
        return runner

    def save_checkpoint(self, path: str) -> None:
        with open(path, "wb") as handle:
            handle.write(self.to_checkpoint_bytes())

    @classmethod
    def load_checkpoint(cls, path: str) -> "LongRunner":
        with open(path, "rb") as handle:
            return cls.from_checkpoint_bytes(handle.read())


def report_fingerprint(payload: dict) -> str:
    """sha256 over the canonical JSON form of a report."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


def run_scenario(spec: ScenarioSpec) -> dict:
    """Run a scenario straight through and return its report."""
    return LongRunner(spec).run_to(spec.horizon_hours).report()


def checkpoint_roundtrip(
    spec: ScenarioSpec, checkpoint_at_hours: Optional[float] = None
) -> dict:
    """Prove resume ≡ straight-through for one scenario.

    Runs the scenario uninterrupted, then again with a checkpoint/
    serialise/restore cycle at ``checkpoint_at_hours`` (default: half
    the horizon), and compares the final report fingerprints.  Under
    ``REPRO_AUDIT=1`` a mismatch raises instead of merely reporting.
    """
    at = (
        checkpoint_at_hours
        if checkpoint_at_hours is not None
        else spec.horizon_hours / 2.0
    )
    straight = run_scenario(spec)
    first = LongRunner(spec).run_to(at)
    blob = first.to_checkpoint_bytes()
    resumed = LongRunner.from_checkpoint_bytes(blob)
    resumed_report = resumed.run_to(spec.horizon_hours).report()
    match = resumed_report["fingerprint"] == straight["fingerprint"]
    if audit.ENABLED:
        audit.require(
            match,
            "longrun-resume",
            "resumed report fingerprint diverged from straight-through",
        )
    return {
        "checkpoint_at_hours": at,
        "checkpoint_bytes": len(blob),
        "straight_fingerprint": straight["fingerprint"],
        "resumed_fingerprint": resumed_report["fingerprint"],
        "match": match,
        "report": straight,
    }

"""Water-filling bandwidth allocators for the fluid-flow link model.

The link divides its byte budget across busy connections by iterative
water-filling: equal shares, with any connection capped below its share
pinned to its cap and the surplus recycled into the next round
(:meth:`repro.net.link.AccessLink._channel_rates` is the in-situ
original).  This module hosts three implementations of that exact
computation, all bit-identical to the original on the same inputs:

* :func:`waterfill` — the general iterative solver on plain lists.
* :func:`waterfill_small` — closed-form unrolled solutions for the 1–3
  busy-connection signatures that dominate real page loads.  Every
  branch performs the same float operations in the same order as the
  iterative solver would, just without building the round's intermediate
  lists; under ``REPRO_AUDIT=1`` the link cross-checks the two on every
  fast-path hit (``audit.waterfill_equivalent``).
* :func:`waterfill_vectorized` — opt-in (``NetworkConfig.vectorized_flow``)
  solver using numpy for the elementwise work.  numpy stays a *soft*
  dependency: the import is guarded and the function silently falls back
  to :func:`waterfill` when it is absent.  Reductions that the iterative
  solver performs sequentially (the budget subtraction per capped
  connection) stay sequential Python-float arithmetic even in numpy
  mode, because pairwise/SIMD summation would round differently and
  break the bit-identity contract.

Bit-identity is the load-bearing property here: allocations feed
per-stream rates, rates feed delivery timestamps, and the equivalence
suite asserts ``LoadMetrics`` equality across engine configurations down
to the last ulp.
"""

from __future__ import annotations

from typing import List, Optional

try:  # numpy is optional; the pure-python paths cover its absence.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

_EPS_BYTES = 1e-6


def waterfill(caps: List[float], budget: float) -> List[float]:
    """General iterative water-filling over connection rate caps.

    Returns byte rates aligned with ``caps``.  The float operations and
    their order replicate ``AccessLink._channel_rates`` exactly: shares
    are ``budget / len(remaining)``, a connection is capped when its cap
    is below ``share - _EPS_BYTES``, and capped connections subtract
    from the budget one at a time in list order.
    """
    n = len(caps)
    rates = [0.0] * n
    remaining = list(range(n))
    for _ in range(n + 1):
        if not remaining:
            break
        share = budget / len(remaining)
        # repro: allow[PERF401] water-filling rebuilds the capped set each
        # round by construction; rounds are O(n) and n is tiny.
        capped = [i for i in remaining if caps[i] < share - _EPS_BYTES]
        if not capped:
            for i in remaining:
                rates[i] = share
            break
        for i in capped:
            rates[i] = caps[i]
            budget -= caps[i]
            remaining.remove(i)
    return rates


def _fill_two(cap_a: float, cap_b: float, budget: float) -> List[float]:
    """Closed-form two-connection water-filling (helper for 2 and 3)."""
    share = budget / 2
    capped_a = cap_a < share - _EPS_BYTES
    capped_b = cap_b < share - _EPS_BYTES
    if not capped_a and not capped_b:
        return [share, share]
    if capped_a and capped_b:
        return [cap_a, cap_b]
    if capped_a:
        rest = budget - cap_a
        return [cap_a, cap_b if cap_b < rest - _EPS_BYTES else rest]
    rest = budget - cap_b
    return [cap_a if cap_a < rest - _EPS_BYTES else rest, cap_b]


def waterfill_small(caps: List[float], budget: float) -> Optional[List[float]]:
    """Closed-form water-filling for 1–3 connections; None above that.

    Unrolls the iterative solver's rounds for the small signatures the
    link sees almost exclusively, skipping the per-call list/dict churn.
    Budget subtractions happen in ``caps`` order, matching the solver's
    in-order walk of each round's capped set.
    """
    n = len(caps)
    if n == 1:
        cap = caps[0]
        return [budget if budget < cap else cap]
    if n == 2:
        return _fill_two(caps[0], caps[1], budget)
    if n == 3:
        cap_a, cap_b, cap_c = caps
        share = budget / 3
        capped_a = cap_a < share - _EPS_BYTES
        capped_b = cap_b < share - _EPS_BYTES
        capped_c = cap_c < share - _EPS_BYTES
        ncapped = capped_a + capped_b + capped_c
        if ncapped == 0:
            return [share, share, share]
        if ncapped == 3:
            return [cap_a, cap_b, cap_c]
        if ncapped == 1:
            if capped_a:
                pair = _fill_two(cap_b, cap_c, budget - cap_a)
                return [cap_a, pair[0], pair[1]]
            if capped_b:
                pair = _fill_two(cap_a, cap_c, budget - cap_b)
                return [pair[0], cap_b, pair[1]]
            pair = _fill_two(cap_a, cap_b, budget - cap_c)
            return [pair[0], pair[1], cap_c]
        # Two capped: subtract both in caps order, remainder to the third.
        if not capped_c:
            rest = budget - cap_a - cap_b
            return [cap_a, cap_b, cap_c if cap_c < rest - _EPS_BYTES else rest]
        if not capped_b:
            rest = budget - cap_a - cap_c
            return [cap_a, cap_b if cap_b < rest - _EPS_BYTES else rest, cap_c]
        rest = budget - cap_b - cap_c
        return [cap_a if cap_a < rest - _EPS_BYTES else rest, cap_b, cap_c]
    return None


def numpy_available() -> bool:
    """Whether the vectorised solver would actually use numpy."""
    return _np is not None


def waterfill_vectorized(caps: List[float], budget: float) -> List[float]:
    """Water-filling with numpy elementwise comparisons; soft dependency.

    The per-round capped-set test (``caps < share - eps``) runs as one
    vector comparison; the budget subtraction stays a sequential Python
    loop in index order so the result is bit-identical to
    :func:`waterfill` (vector reductions would associate differently).
    Falls back to the pure-python solver when numpy is unavailable.
    """
    if _np is None:
        return waterfill(caps, budget)
    n = len(caps)
    arr = _np.asarray(caps, dtype=_np.float64)
    rates = [0.0] * n
    alive = _np.ones(n, dtype=bool)
    count = n
    for _ in range(n + 1):
        if count == 0:
            break
        share = budget / count
        capped_mask = alive & (arr < share - _EPS_BYTES)
        capped = _np.nonzero(capped_mask)[0]
        if capped.size == 0:
            for i in _np.nonzero(alive)[0]:
                rates[i] = share
            break
        for i in capped:
            cap = caps[i]
            rates[i] = cap
            budget -= cap
        alive &= ~capped_mask
        count = int(alive.sum())
    return rates

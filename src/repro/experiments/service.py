"""Service experiments: crawl budget vs staleness, end to end.

The knob a Vroom operator actually controls is the **crawl budget** —
how many server-side page loads per hour the offline-resolution fleet
may spend.  This module sweeps that budget against *identical* traffic
(the workload is a pure function of its seed, independent of the store
or scheduler configuration) and reports what the budget buys:

* the stale-hit rate, which must fall monotonically as the budget
  grows (the driver's regression check);
* the accuracy bridge's precision/recall/PLT numbers for at least two
  budget settings, so the staleness cost is quantified in real loads
  rather than inferred from counters.

``service_benchmark`` assembles the whole ``BENCH_service.json``
payload: one full-scale run plus the budget sweep.  Everything here is
bit-identical under a fixed seed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.pages.corpus import news_sports_corpus
from repro.pages.page import PageBlueprint
from repro.replay.cache import SnapshotCache
from repro.service.backend import HintService, ServiceConfig
from repro.service.bridge import evaluate_samples

#: Crawl budgets (page loads per simulated hour) swept by default.
DEFAULT_BUDGETS: Sequence[float] = (6.0, 15.0, 60.0)

#: Budgets whose sampled lookups get the full end-to-end bridge.
DEFAULT_BRIDGE_BUDGETS = 2


def staleness_experiment(
    pages: Optional[List[PageBlueprint]] = None,
    *,
    count: int = 12,
    budgets: Sequence[float] = DEFAULT_BUDGETS,
    lookups: int = 20_000,
    rate_per_hour: float = 4_000.0,
    freshness_hours: float = 0.5,
    ttl_hours: float = 6.0,
    seed: int = 0,
    bridge_sample_every: int = 2_000,
    bridge_budgets: int = DEFAULT_BRIDGE_BUDGETS,
    bridge_max_samples: int = 6,
    bridge_with_loads: bool = True,
    cache: Optional[SnapshotCache] = None,
) -> dict:
    """Sweep the crawl budget against one fixed workload.

    Returns ``{"budgets": [row...], "monotone_stale_hit_rate": bool}``.
    Each row carries the budget, the run's hit/stale-hit/miss rates and
    scheduler counters, and — for the first ``bridge_budgets`` budgets —
    the accuracy bridge's aggregate.  A fresh :class:`HintService` is
    built per budget (services hold per-run counters); the page fleet
    and workload seed are shared, so the traffic is identical and the
    stale-hit-rate column isolates the budget's effect.

    Runs are **prewarmed** (every key resolved once at the start hour):
    from a cold start, a starved budget turns would-be stale hits into
    misses, so the stale-hit rate rises *and then* falls with budget.
    Warm, the relationship is clean — more budget, fresher entries,
    monotonically fewer stale hits.
    """
    if pages is None:
        pages = news_sports_corpus(count)
    active_cache = cache if cache is not None else SnapshotCache()
    rows = []
    stale_rates = []
    for index, budget in enumerate(budgets):
        config = ServiceConfig(
            pages=len(pages),
            lookups=lookups,
            rate_per_hour=rate_per_hour,
            freshness_hours=freshness_hours,
            ttl_hours=ttl_hours,
            crawl_budget_per_hour=budget,
            prewarm=True,
            seed=seed,
            bridge_sample_every=bridge_sample_every,
        )
        report = HintService(pages, config).run()
        row = {
            "crawl_budget_per_hour": budget,
            "hit_rate": report.totals["hit_rate"],
            "fresh_hit_rate": report.totals["fresh_hit_rate"],
            "stale_hit_rate": report.totals["stale_hit_rate"],
            "miss_rate": report.totals["miss_rate"],
            "evictions": report.totals["evictions"],
            "scheduler": report.scheduler,
        }
        if index < bridge_budgets and report.samples:
            bridge = evaluate_samples(
                pages,
                report.samples,
                max_samples=bridge_max_samples,
                with_loads=bridge_with_loads,
                cache=active_cache,
            )
            row["bridge"] = bridge["aggregate"]
        stale_rates.append(row["stale_hit_rate"])
        rows.append(row)
    monotone = all(
        later <= earlier + 1e-9
        for earlier, later in zip(stale_rates, stale_rates[1:])
    )
    return {"budgets": rows, "monotone_stale_hit_rate": monotone}


def service_benchmark(
    pages: Optional[List[PageBlueprint]] = None,
    *,
    count: int = 50,
    lookups: int = 100_000,
    rate_per_hour: float = 20_000.0,
    shards: int = 8,
    shard_memory_bytes: int = 256 * 1024,
    ttl_hours: float = 12.0,
    freshness_hours: float = 2.0,
    batch_period_hours: float = 0.25,
    crawl_budget_per_hour: float = 60.0,
    zipf_exponent: float = 1.1,
    seed: int = 0,
    bridge_sample_every: int = 10_000,
    budgets: Sequence[float] = DEFAULT_BUDGETS,
    cache: Optional[SnapshotCache] = None,
) -> dict:
    """The full ``BENCH_service.json`` payload.

    One full-scale service run (the headline counters) plus the
    crawl-budget staleness sweep on a smaller fleet.  Pure function of
    its arguments — no wall clock anywhere.
    """
    if pages is None:
        pages = news_sports_corpus(count)
    active_cache = cache if cache is not None else SnapshotCache()
    config = ServiceConfig(
        pages=len(pages),
        lookups=lookups,
        rate_per_hour=rate_per_hour,
        zipf_exponent=zipf_exponent,
        shards=shards,
        shard_memory_bytes=shard_memory_bytes,
        ttl_hours=ttl_hours,
        freshness_hours=freshness_hours,
        batch_period_hours=batch_period_hours,
        crawl_budget_per_hour=crawl_budget_per_hour,
        seed=seed,
        bridge_sample_every=bridge_sample_every,
    )
    report = HintService(pages, config).run()
    payload = {"benchmark": "service", "report": report.as_dict()}
    if report.samples:
        payload["bridge"] = evaluate_samples(
            pages,
            report.samples,
            max_samples=6,
            cache=active_cache,
        )
    payload["staleness"] = staleness_experiment(
        budgets=budgets, seed=seed, cache=active_cache
    )
    return payload


#: Smoke-check configuration: small, fast, and pinned.  CI runs the
#: ``repro service --smoke`` command and asserts these counters, so a
#: change to the store, scheduler, workload or hashing shows up as a
#: loud diff instead of silent drift.
SMOKE_CONFIG = ServiceConfig(
    pages=8,
    lookups=5_000,
    rate_per_hour=2_000.0,
    freshness_hours=0.5,
    ttl_hours=6.0,
    crawl_budget_per_hour=24.0,
    seed=1701,
    bridge_sample_every=0,
)

#: Golden counters for :data:`SMOKE_CONFIG` (asserted by ``--smoke``).
EXPECTED_SMOKE = {
    "lookups": 5000,
    "hits": 1186,
    "stale_hits": 2601,
    "misses": 1213,
    "evictions": 0,
    "hit_rate": 0.7574,
    "stale_hit_rate": 0.5202,
}


def smoke_run(cache: Optional[SnapshotCache] = None) -> dict:
    """Run the pinned smoke configuration; return its report dict."""
    del cache  # the smoke run records no engine loads
    pages = news_sports_corpus(SMOKE_CONFIG.pages)
    report = HintService(pages, SMOKE_CONFIG).run()
    return report.as_dict()


def smoke_check(report: dict) -> List[str]:
    """Mismatches between a smoke report and the golden counters."""
    problems = []
    totals = report["totals"]
    for field, expected in EXPECTED_SMOKE.items():
        actual = totals.get(field)
        if actual != expected:
            problems.append(f"{field}: expected {expected!r}, got {actual!r}")
    return problems

"""Property test: random small pages load correctly under every policy.

Hypothesis generates miniature page structures (a root document with a
random mix of CSS, sync/async scripts, media, chains and iframes); every
generated page must load to completion under the stock browser, Vroom
and the fetch-ASAP strawman, with the universal invariants holding.
This is the broadest net for scheduling/bookkeeping bugs in the stack.
"""

from hypothesis import given, settings, strategies as st

from repro.browser.engine import BrowserConfig, load_page
from repro.core.scheduler import FetchAsapScheduler, VroomScheduler
from repro.core.server import vroom_servers
from repro.net.http import NetworkConfig
from repro.net.link import StreamScheduling
from repro.pages.dynamics import LoadStamp
from repro.pages.page import PageBlueprint
from repro.pages.resources import Discovery, ResourceSpec, ResourceType
from repro.replay.recorder import record_snapshot
from repro.replay.replayer import build_servers

STAMP = LoadStamp(when_hours=77.0)

_child_kind = st.sampled_from(
    ["css", "sync_js", "async_js", "image", "iframe", "chain_js"]
)


@st.composite
def small_pages(draw):
    page = PageBlueprint(name="prop", root="root")
    page.add(
        ResourceSpec(
            name="root",
            rtype=ResourceType.HTML,
            domain="fp.com",
            size=draw(st.integers(min_value=5_000, max_value=40_000)),
        )
    )
    kinds = draw(st.lists(_child_kind, min_size=1, max_size=12))
    last_js = None
    for index, kind in enumerate(kinds):
        name = f"r{index}"
        position = draw(
            st.floats(min_value=0.02, max_value=0.98)
        )
        size = draw(st.integers(min_value=500, max_value=60_000))
        domain = draw(st.sampled_from(["fp.com", "tp1.com", "tp2.com"]))
        if kind == "css":
            page.add(
                ResourceSpec(name, ResourceType.CSS, domain, size,
                             parent="root", position=position)
            )
        elif kind == "sync_js":
            spec = ResourceSpec(name, ResourceType.JS, domain, size,
                                parent="root", position=position)
            page.add(spec)
            last_js = spec
        elif kind == "async_js":
            spec = ResourceSpec(name, ResourceType.JS, domain, size,
                                parent="root", position=position,
                                exec_async=True)
            page.add(spec)
            last_js = spec
        elif kind == "image":
            page.add(
                ResourceSpec(name, ResourceType.IMAGE, domain, size,
                             parent="root", position=position,
                             above_fold=True, pixel_weight=1.0)
            )
        elif kind == "iframe":
            page.add(
                ResourceSpec(name, ResourceType.HTML, domain,
                             max(size, 2_000), parent="root",
                             position=position)
            )
        elif kind == "chain_js" and last_js is not None:
            spec = ResourceSpec(
                name, ResourceType.JS, domain, size,
                parent=last_js.name,
                discovery=Discovery.SCRIPT_COMPUTED,
            )
            page.add(spec)
            last_js = spec
    page.validate()
    return page


@given(small_pages())
@settings(max_examples=25, deadline=None)
def test_random_pages_load_under_every_policy(page):
    snapshot = page.materialize(STAMP)
    store = record_snapshot(snapshot)
    browser = BrowserConfig(when_hours=STAMP.when_hours)

    plain = load_page(snapshot, build_servers(store), NetworkConfig(), browser)
    vroom = load_page(
        snapshot,
        vroom_servers(page, snapshot, store),
        NetworkConfig(h2_scheduling=StreamScheduling.FIFO),
        browser,
        policy=VroomScheduler(),
    )
    asap = load_page(
        snapshot,
        vroom_servers(page, snapshot, store),
        NetworkConfig(),
        browser,
        policy=FetchAsapScheduler(),
    )
    for metrics in (plain, vroom, asap):
        assert metrics.plt > 0
        for resource in snapshot.all_resources():
            timeline = metrics.timelines[resource.url]
            assert timeline.fetched_at is not None, resource.name
            if resource.processable:
                assert timeline.processed_at is not None, resource.name
        assert metrics.aft <= metrics.plt + 1e-9

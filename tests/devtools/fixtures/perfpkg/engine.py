"""Hot-seeded fixture: every PERF4xx rule fires exactly where marked.

``# expect: CODE`` tags the line each finding must anchor to;
test_perf_rules.py scans this package through the real call graph, so
``tick`` is the only seed and everything else is heated (or left cold)
through resolved edges.
"""

import re

from perfpkg.helper import Gadget, HelperError, Kind, Slotted, make_rng


# repro: hotpath
def tick(jobs, config):
    rng = make_rng(7)
    wanted = {Kind.ALPHA, Kind.BETA}  # expect: PERF401
    total = 0
    for job in jobs:
        names = [str(job) for _ in jobs]  # expect: PERF401
        total += len(names)
        total += config.limit  # expect: PERF403
        total += config.limit
        total += config.limit
        try:  # expect: PERF404
            total += wanted == job
        except TypeError:
            raise HelperError("unorderable job")
    return drain(jobs, rng, total)


def drain(jobs, rng, total):
    """Hot via the ``tick -> drain`` edge."""
    for job in jobs:
        if re.match("a+", str(job)):  # expect: PERF402
            total += len(sorted(jobs))  # expect: PERF401
    gadget = Gadget(total)  # expect: PERF405
    keep = Slotted(rng.random())
    return gadget, keep, total


def cold_path(jobs):
    """Unreachable from the seed: the same patterns must stay silent."""
    out = []
    for job in jobs:
        out.append([str(job) for _ in jobs])
        out.append(sorted(jobs))
    return out

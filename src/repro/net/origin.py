"""Origin web servers.

An :class:`OriginServer` owns one domain.  What it returns for a URL —
body size, think time, dependency hints, push list — is decided by a
pluggable *responder*, so the same network machinery serves the plain
replay baseline, every push strawman, and the full Vroom policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.calibration import (
    SERVER_HTML_THINK_TIME,
    SERVER_THINK_TIME,
)
from repro.net.faults import ERROR_RESPONSE_BYTES, FaultKind, FaultPlan


@dataclass
class Response:
    """Everything a server hands back for one request."""

    url: str
    size: int
    #: Server-side processing latency before the first response byte.
    think_time: float = SERVER_THINK_TIME
    #: Dependency hints (opaque to the network layer; the browser and the
    #: Vroom scheduler interpret them).  Carried in response headers.
    hints: List[Any] = field(default_factory=list)
    #: URLs this server will push on the same connection, in order.
    pushes: List[str] = field(default_factory=list)
    #: Arbitrary payload for upper layers (usually the Resource object).
    meta: Any = None
    #: Whether the client may cache this response.
    cacheable: bool = True
    #: Injected 5xx: the body is a small error page, not the content.
    #: The client treats the exchange as a failed attempt and retries.
    error: bool = False

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("response size must be non-negative")


#: A responder maps (url, is_push) to a Response, or None for a 404.
Responder = Callable[[str, bool], Optional[Response]]


class OriginServer:
    """One domain's server: content lookup plus a response policy."""

    def __init__(
        self,
        domain: str,
        responder: Responder,
        server_rtt: float = 0.040,
        fault_plan: Optional[FaultPlan] = None,
    ):
        self.domain = domain
        self.responder = responder
        self.server_rtt = server_rtt
        #: Injected-failure plan; installed by the client's NetworkConfig.
        self.fault_plan = fault_plan
        #: Count of requests served (push responses excluded).
        self.requests_served = 0
        #: Count of push streams initiated.
        self.pushes_sent = 0
        #: Count of injected 5xx responses.
        self.errors_served = 0

    def respond(
        self,
        url: str,
        *,
        is_push: bool = False,
        now: float = 0.0,
        attempt: int = 1,
        is_hint: bool = False,
    ) -> Optional[Response]:
        # Pushes ride an already-committed response stream; faulting them
        # would orphan obligations the client never requested, so only
        # client-initiated requests can draw a server error.
        if self.fault_plan is not None and not is_push:
            kind = self.fault_plan.server_fault(
                url, self.domain, now=now, attempt=attempt, is_hint=is_hint
            )
            if kind is FaultKind.SERVER_ERROR:
                self.errors_served += 1
                return Response(
                    url=url,
                    size=ERROR_RESPONSE_BYTES,
                    think_time=SERVER_THINK_TIME,
                    cacheable=False,
                    error=True,
                )
        response = self.responder(url, is_push)
        if response is None:
            return None
        if is_push:
            self.pushes_sent += 1
        else:
            self.requests_served += 1
        return response


def static_responder(
    contents: Dict[str, int],
    html_urls: Optional[set] = None,
) -> Responder:
    """Plain responder: look up a size table, no hints, no pushes.

    HTML responses get the larger dynamic-generation think time.
    """
    html_urls = html_urls or set()

    def respond(url: str, is_push: bool) -> Optional[Response]:
        if url not in contents:
            return None
        think = (
            SERVER_HTML_THINK_TIME if url in html_urls else SERVER_THINK_TIME
        )
        return Response(url=url, size=contents[url], think_time=think)

    return respond

"""Resource model: types, discovery semantics, priorities, concrete instances.

A :class:`ResourceSpec` is the *template* for a resource inside a page
blueprint — it carries all the knobs that determine how the resource's URL
and body vary across loads.  A :class:`Resource` is a concrete instance
inside one materialised load (a snapshot): fixed URL, fixed size, fixed body.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


class ResourceType(enum.Enum):
    """MIME-class of a resource, driving CPU cost and priority."""

    HTML = "html"
    CSS = "css"
    JS = "js"
    IMAGE = "image"
    FONT = "font"
    VIDEO = "video"
    JSON = "json"
    OTHER = "other"


#: Types that must be parsed or executed on the client CPU.
PROCESSABLE_TYPES = frozenset(
    {ResourceType.HTML, ResourceType.CSS, ResourceType.JS}
)


class Discovery(enum.Enum):
    """How a browser discovers the need for this resource."""

    #: Referenced by a tag in the parent's markup; visible to the preload
    #: scanner as soon as the enclosing bytes arrive, and to server-side
    #: online HTML analysis.
    STATIC_MARKUP = "static"

    #: URL computed by JavaScript; only discovered when the parent script
    #: executes.  Invisible to online HTML analysis.
    SCRIPT_COMPUTED = "script"

    #: Referenced from a stylesheet (font / background image); discovered
    #: when the CSS is parsed.  Invisible to online HTML analysis.
    CSS_REF = "css"


class Priority(enum.IntEnum):
    """Vroom priority classes (Table 1), ordered high to low."""

    PRELOAD = 0
    SEMI_IMPORTANT = 1
    UNIMPORTANT = 2


def priority_of(
    rtype: ResourceType,
    *,
    exec_async: bool = False,
    in_iframe: bool = False,
    is_iframe_doc: bool = False,
) -> Priority:
    """Classify a resource per Table 1 and footnote 4 of the paper.

    Resources that must be parsed/executed are ``PRELOAD``; lazily-processed
    ones (async scripts, media-gated CSS) are ``SEMI_IMPORTANT``; everything
    else is ``UNIMPORTANT``.  Descendants of third-party HTML documents —
    including the embedded documents themselves — are ``UNIMPORTANT``
    because browsers only process iframes after the root document's parse.
    """
    if in_iframe or is_iframe_doc:
        return Priority.UNIMPORTANT
    if rtype in PROCESSABLE_TYPES:
        return Priority.SEMI_IMPORTANT if exec_async else Priority.PRELOAD
    return Priority.UNIMPORTANT


@dataclass
class ResourceSpec:
    """Template for one resource in a :class:`~repro.pages.page.PageBlueprint`.

    The ``name`` is the resource's stable identity across loads; the URL a
    given load sees is derived from the name plus whatever flux applies
    (rotation epoch, nonce, device class, personalization hash).
    """

    name: str
    rtype: ResourceType
    domain: str
    size: int
    parent: Optional[str] = None
    discovery: Discovery = Discovery.STATIC_MARKUP
    #: Relative position of the reference inside the parent body (0..1).
    position: float = 0.5
    exec_async: bool = False
    above_fold: bool = False
    #: Relative visual weight for Speed Index (only meaningful if rendered).
    pixel_weight: float = 0.0
    cacheable: bool = True
    #: Cache freshness lifetime in hours (0 = uncacheable response headers).
    max_age_hours: float = 24.0
    #: If set, the resource's URL rotates to a new one every N hours.
    lifetime_hours: Optional[float] = None
    #: Fresh URL on every load (ad/analytics nonce).
    unpredictable: bool = False
    #: URL varies with the client's device equivalence class.
    device_dependent: bool = False
    #: URL varies with the (user, domain) pair.
    personalized: bool = False
    #: Script whose computed children depend on user-specific state such as
    #: local time (Sec 4.2: left to clients to discover).
    user_state_script: bool = False
    #: Server-side generation latency; ``None`` uses the type default.
    server_think_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"resource {self.name!r} must have positive size")
        if not 0.0 <= self.position <= 1.0:
            raise ValueError(f"resource {self.name!r} position out of [0, 1]")

    @property
    def processable(self) -> bool:
        return self.rtype in PROCESSABLE_TYPES

    @property
    def is_document(self) -> bool:
        return self.rtype is ResourceType.HTML


@dataclass
class Resource:
    """A concrete resource inside one materialised page load."""

    spec: ResourceSpec
    url: str
    size: int
    #: Names resolved to concrete child resources, ordered by position.
    children: List["Resource"] = field(default_factory=list)
    parent: Optional["Resource"] = None
    #: The synthetic body (markup for documents/CSS/JS; empty for binaries).
    body: str = ""
    #: True if this document is an embedded (iframe) HTML, not the root.
    is_iframe_doc: bool = False
    #: True if this resource lives inside an iframe's subtree.
    in_iframe: bool = False
    #: Position of this document's subtree in root processing order.
    process_order: int = -1

    def __hash__(self) -> int:
        return hash((id(self.spec), self.url))

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def rtype(self) -> ResourceType:
        return self.spec.rtype

    @property
    def domain(self) -> str:
        return self.spec.domain

    @property
    def processable(self) -> bool:
        return self.spec.processable

    @property
    def is_document(self) -> bool:
        return self.spec.is_document

    @property
    def priority(self) -> Priority:
        return priority_of(
            self.rtype,
            exec_async=self.spec.exec_async,
            in_iframe=self.in_iframe,
            is_iframe_doc=self.is_iframe_doc,
        )

    def descendants(self) -> List["Resource"]:
        """All resources below this one, in pre-order."""
        out: List[Resource] = []
        stack = list(reversed(self.children))
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(reversed(node.children))
        return out

    def subtree(self) -> List["Resource"]:
        """This resource plus :meth:`descendants`, in pre-order."""
        return [self] + self.descendants()


def split_url(url: str) -> Tuple[str, str]:
    """Split ``domain/path`` into ``(domain, path)``."""
    domain, _, path = url.partition("/")
    return domain, path

"""Lint findings and the rule registry.

A finding's identity for baseline matching is ``(path, code, message,
occurrence)`` — deliberately *not* the line number, so unrelated edits
moving code around do not invalidate the baseline, while a second
identical violation in the same file still counts as new.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: Rule registry: code -> one-line description.  ``repro lint --rules``
#: prints this table; tests assert every rule has fixture coverage.
RULES: Dict[str, str] = {
    "DET101": (
        "iteration over an unordered set/frozenset — order follows "
        "PYTHONHASHSEED; wrap in sorted() or deduplicate with dict.fromkeys()"
    ),
    "DET102": (
        "iteration over dict.keys() — iterate the dict itself (insertion "
        "order) or sorted(d) to make the intended order explicit"
    ),
    "DET103": (
        "unseeded randomness — random.Random() without a seed, or a "
        "module-level random.* / numpy.random.* call, draws from global "
        "process state"
    ),
    "DET104": (
        "wall-clock read inside a pure simulation layer — simulated time "
        "comes from Simulator.now, never time.time()/datetime.now()"
    ),
    "DET105": (
        "builtin hash()/id() feeding ordering or keys — hash() of a str "
        "is PYTHONHASHSEED-dependent and id() varies per process; use "
        "hashlib/zlib.crc32 or a stable attribute"
    ),
    "PUR201": (
        "I/O inside a pure simulation layer — print/open/os.environ and "
        "friends belong to the harness layers (experiments/analysis/cli)"
    ),
    "LAY301": (
        "layering violation — module imports a package its layer may not "
        "depend on (see LAYER_DEPS in repro.devtools.layering)"
    ),
    "LAY302": (
        "package-level import cycle — two or more packages import each "
        "other, so no layering order exists for them"
    ),
    "PERF401": (
        "per-iteration container allocation in a hot region — a "
        "comprehension/constructor inside a loop, or a constant display "
        "rebuilt per call; hoist it out of the hot path"
    ),
    "PERF402": (
        "per-call construction in a hot region — random.Random, "
        "re.compile (or implicit re.* compilation), datetime objects; "
        "build once, reuse per call"
    ),
    "PERF403": (
        "repeated attribute-chain loads inside one hot loop — CPython "
        "re-resolves the chain every trip; hoist an invariant chain to "
        "a local before the loop"
    ),
    "PERF404": (
        "try/except inside a hot loop — handler trips build a traceback "
        "per iteration; prefer an explicit check"
    ),
    "PERF405": (
        "hot region instantiates a project class without __slots__ — "
        "every instance carries a dict; add __slots__ (or "
        "dataclass(slots=True)) to classes churned per tick"
    ),
    "CFG601": (
        "undocumented knob — a registered config dataclass field has no "
        "row in its docs/API.md knob table"
    ),
    "CFG602": (
        "ghost knob — docs/API.md documents a field (or class) the code "
        "no longer defines"
    ),
    "CFG603": (
        "default drift — a knob's default differs between the config "
        "dataclass and docs/API.md or a cli.py flag"
    ),
}

#: Rule family (``--only-family`` filter) -> its code prefixes.
FAMILIES: Dict[str, Tuple[str, ...]] = {
    "det": ("DET", "PUR"),
    "layering": ("LAY",),
    "perf": ("PERF",),
    "config": ("CFG",),
}


def family_of(code: str) -> str:
    """The rule family a code belongs to."""
    for family, prefixes in FAMILIES.items():
        if code.startswith(prefixes):
            return family
    raise ValueError(f"unknown rule code {code!r}")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str
    path: str  # posix path relative to the linted package root
    line: int
    message: str
    #: 0-based index among findings in the same file with the same
    #: (code, message); keeps duplicate violations distinct in baselines
    #: without pinning fragile line numbers.
    occurrence: int = 0

    @property
    def key(self) -> Tuple[str, str, str, int]:
        return (self.path, self.code, self.message, self.occurrence)

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "occurrence": self.occurrence,
        }

#!/usr/bin/env python3
"""Scenario: watch the CPU/network decoupling happen.

The paper's Sec 3 argument is that page loads ping-pong between the CPU
and the network, leaving both idle half the time, and that server-aided
discovery lets them run concurrently.  This script samples both
resources through one load under HTTP/2 and under Vroom and draws the
two timelines side by side.

Run:  python examples/utilization_timeline.py
"""

from repro import LoadStamp, news_sports_corpus, record_snapshot
from repro.browser.engine import BrowserConfig, load_page
from repro.core.scheduler import VroomScheduler
from repro.core.server import vroom_servers
from repro.net.http import NetworkConfig
from repro.net.link import StreamScheduling
from repro.replay.replayer import build_servers


def timeline_row(trace, pick, width=78, horizon=None):
    """Render one boolean-ish series as a text strip."""
    horizon = horizon or trace[-1][0]
    cells = ["."] * width
    for time, busy, streams in trace:
        slot = min(width - 1, int(time / horizon * (width - 1)))
        if pick(busy, streams):
            cells[slot] = "#"
    return "".join(cells)


def main() -> None:
    page = news_sports_corpus(count=1)[0]
    stamp = LoadStamp(when_hours=1000.0)
    snapshot = page.materialize(stamp)
    store = record_snapshot(snapshot)
    browser = BrowserConfig(when_hours=stamp.when_hours, sample_interval=0.1)

    http2 = load_page(snapshot, build_servers(store), NetworkConfig(), browser)
    vroom = load_page(
        snapshot,
        vroom_servers(page, snapshot, store),
        NetworkConfig(h2_scheduling=StreamScheduling.FIFO),
        browser,
        policy=VroomScheduler(),
    )

    horizon = max(http2.plt, vroom.plt)
    print(f"page {page.name!r}; axis 0..{horizon:.1f}s; '#' = busy\n")
    for name, metrics in (("HTTP/2", http2), ("Vroom", vroom)):
        trace = metrics.utilization_trace
        print(
            f"{name:<7} plt={metrics.plt:5.2f}s  "
            f"cpu util={metrics.cpu_utilization:.0%}  "
            f"link util={metrics.link_utilization:.0%}"
        )
        print(
            "  cpu  |"
            + timeline_row(trace, lambda busy, _: busy, horizon=horizon)
            + "|"
        )
        print(
            "  link |"
            + timeline_row(trace, lambda _, streams: streams > 0,
                           horizon=horizon)
            + "|"
        )
        print()


if __name__ == "__main__":
    main()

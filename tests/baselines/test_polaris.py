"""Tests for the Polaris-style baseline."""

from repro.baselines.polaris import (
    chain_weights,
    polaris_load,
    prior_load_weights,
)
from repro.replay.replayer import build_servers


class TestChainWeights:
    def test_parents_outweigh_children(self, snapshot):
        weights = chain_weights(snapshot)
        for resource in snapshot.all_resources():
            for child in resource.children:
                assert weights[resource.url] >= weights[child.url]

    def test_media_leaves_have_zero_weight(self, snapshot):
        weights = chain_weights(snapshot)
        for resource in snapshot.all_resources():
            if not resource.processable and not resource.children:
                assert weights[resource.url] == 0.0

    def test_root_has_max_weight(self, snapshot):
        weights = chain_weights(snapshot)
        assert weights[snapshot.root.url] == max(weights.values())


class TestPriorLoadWeights:
    def test_keyed_by_stable_names(self, page, stamp):
        snapshot = page.materialize(stamp)
        weights = prior_load_weights(page, snapshot.stamp)
        names = {spec for spec in page.specs}
        assert set(weights) <= names
        assert len(weights) > len(page.specs) // 2


class TestPolarisLoad:
    def test_completes_and_respects_discovery(self, page, snapshot, store):
        metrics = polaris_load(page, snapshot, build_servers(store))
        assert metrics.plt > 0
        # Polaris still discovers chains itself: script children are
        # discovered at/after parent execution.
        for resource in snapshot.all_resources():
            timeline = metrics.timelines[resource.url]
            if timeline.discovered_via == "script":
                parent = metrics.timelines[resource.parent.url]
                assert timeline.discovered_at >= parent.processed_at - 1e-9

    def test_polaris_between_http2_and_vroom_on_median(self, corpus, stamp):
        """Fig 14's ordering, checked on the median of a small corpus."""
        import statistics

        from repro.baselines.configs import run_config
        from repro.replay.recorder import record_snapshot

        h2, polaris, vroom = [], [], []
        for page in corpus[:4]:
            snapshot = page.materialize(stamp)
            store = record_snapshot(snapshot)
            h2.append(run_config("http2", page, snapshot, store).plt)
            polaris.append(run_config("polaris", page, snapshot, store).plt)
            vroom.append(run_config("vroom", page, snapshot, store).plt)
        assert statistics.median(vroom) < statistics.median(h2)
        assert statistics.median(polaris) < statistics.median(h2) * 1.05

"""Tests for the utilization experiment (Sec 3's decoupling thesis)."""

import statistics

from repro.baselines.configs import run_config
from repro.experiments.utilization import utilization_comparison


class TestPerLoadUtilization:
    def test_utilizations_bounded(self, page, snapshot, store):
        metrics = run_config("http2", page, snapshot, store)
        assert 0.0 < metrics.cpu_utilization <= 1.0
        assert 0.0 < metrics.link_utilization <= 1.0

    def test_link_busy_time_positive(self, page, snapshot, store):
        metrics = run_config("http2", page, snapshot, store)
        assert metrics.link_busy_time > 0.5

    def test_vroom_raises_cpu_utilization(self, page, snapshot, store):
        """The headline mechanism: decoupling keeps the CPU fed."""
        http2 = run_config("http2", page, snapshot, store)
        vroom = run_config("vroom", page, snapshot, store)
        assert vroom.cpu_utilization > http2.cpu_utilization


class TestComparison:
    def test_sweep_shape(self):
        result = utilization_comparison(count=4)
        assert set(result) == {"http1", "http2", "vroom"}
        for rows in result.values():
            assert len(rows["cpu"]) == 4
            assert len(rows["link"]) == 4

    def test_vroom_best_cpu_utilization_at_median(self):
        result = utilization_comparison(count=6)
        vroom = statistics.median(result["vroom"]["cpu"])
        http2 = statistics.median(result["http2"]["cpu"])
        http1 = statistics.median(result["http1"]["cpu"])
        assert vroom > http2
        assert vroom > http1

"""Batch scheduler: coalescing, priority, crawl-budget enforcement."""

import pytest

from repro.service.scheduler import (
    COLD_STALENESS_HOURS,
    BatchScheduler,
    ResolutionJob,
)


def job(page="news0", device="phone", reason="miss", at=0.0):
    return ResolutionJob(
        page=page,
        device_class=device,
        page_index=0,
        enqueued_at_hours=at,
        reason=reason,
    )


def scheduler(budget=12.0, period=1.0, loads=3):
    return BatchScheduler(
        budget_loads_per_hour=budget,
        batch_period_hours=period,
        loads_per_job=loads,
    )


class TestEnqueue:
    def test_duplicate_keys_coalesce_and_bump_demand(self):
        sched = scheduler()
        sched.enqueue(job())
        sched.enqueue(job())
        sched.enqueue(job(device="tablet"))
        assert sched.counters.enqueued == 2
        assert sched.counters.coalesced == 1
        batch = sched.take_batch(1.0, lambda key: None)
        demands = {j.key: j.demand for j in batch}
        assert demands[("news0", "phone")] == 2
        assert demands[("news0", "tablet")] == 1


class TestPriority:
    def test_staler_and_hotter_first(self):
        sched = scheduler(budget=3.0, period=1.0)  # one job per batch
        sched.enqueue(job(page="cold"))
        sched.enqueue(job(page="hot"))
        sched.enqueue(job(page="hot"))

        def staleness(key):
            return 1.0  # equal staleness: demand decides

        batch = sched.take_batch(1.0, staleness)
        assert [j.page for j in batch] == ["hot"]

    def test_unknown_entries_outrank_everything(self):
        # A key with no stored entry (cold miss) gets COLD_STALENESS_HOURS.
        sched = scheduler(budget=3.0, period=1.0)
        sched.enqueue(job(page="stored"))
        sched.enqueue(job(page="absent"))

        def staleness(key):
            return 5.0 if key[0] == "stored" else None

        batch = sched.take_batch(1.0, staleness)
        assert [j.page for j in batch] == ["absent"]
        assert COLD_STALENESS_HOURS > 1e5

    def test_deterministic_tie_break(self):
        sched = scheduler(budget=3.0, period=1.0)
        sched.enqueue(job(page="b"))
        sched.enqueue(job(page="a"))
        batch = sched.take_batch(1.0, lambda key: 1.0)
        assert [j.page for j in batch] == ["a"]


class TestBudget:
    def test_budget_caps_batch_size(self):
        sched = scheduler(budget=6.0, period=1.0, loads=3)  # 2 jobs/batch
        for index in range(5):
            sched.enqueue(job(page=f"p{index}"))
        batch = sched.take_batch(1.0, lambda key: None)
        assert len(batch) == 2
        assert sched.counters.deferred == 3
        assert sched.counters.loads_spent == 6

    def test_unused_credit_banks_up_to_two_periods(self):
        sched = scheduler(budget=6.0, period=1.0, loads=3)
        assert sched.take_batch(1.0, lambda key: None) == []
        assert sched.take_batch(2.0, lambda key: None) == []
        # Credit is capped at 2 periods (12 loads = 4 jobs), not 3.
        for index in range(10):
            sched.enqueue(job(page=f"p{index}"))
        batch = sched.take_batch(3.0, lambda key: None)
        assert len(batch) == 4

    def test_starved_budget_executes_nothing(self):
        sched = scheduler(budget=1.0, period=1.0, loads=3)
        sched.enqueue(job())
        assert sched.take_batch(1.0, lambda key: None) == []
        assert sched.take_batch(2.0, lambda key: None) == []
        # Third period: 3 banked loads finally cover one job.
        assert len(sched.take_batch(3.0, lambda key: None)) == 1

    def test_deferred_jobs_survive_to_the_next_batch(self):
        sched = scheduler(budget=3.0, period=1.0, loads=3)
        sched.enqueue(job(page="a"))
        sched.enqueue(job(page="b"))
        first = sched.take_batch(1.0, lambda key: None)
        second = sched.take_batch(2.0, lambda key: None)
        assert {j.page for j in first + second} == {"a", "b"}

    def test_counters_track_utilization(self):
        sched = scheduler(budget=6.0, period=1.0, loads=3)
        sched.enqueue(job())
        sched.take_batch(1.0, lambda key: None)
        counters = sched.counters.as_dict()
        assert counters["executed"] == 1
        assert counters["loads_spent"] == 3
        assert counters["budget_offered"] == 6.0
        assert counters["budget_utilization"] == pytest.approx(0.5)


class TestDeferralAccounting:
    def test_deferral_counts_once_per_queue_stay(self):
        # Regression: a job sitting through k ticks used to count k
        # deferrals, so the counter grew with the batch period instead
        # of with actual contention.
        sched = scheduler(budget=3.0, period=1.0, loads=3)  # 1 job/batch
        sched.enqueue(job(page="a"))
        sched.enqueue(job(page="b"))
        sched.enqueue(job(page="c"))
        sched.take_batch(1.0, lambda key: 1.0)  # a runs; b, c defer
        assert sched.counters.deferred == 2
        sched.take_batch(2.0, lambda key: 1.0)  # b runs; c just waits
        assert sched.counters.deferred == 2
        assert sched.counters.pending_peak == 3

    def test_redeferral_after_execution_counts_again(self):
        sched = scheduler(budget=3.0, period=1.0, loads=3)
        sched.enqueue(job(page="a"))
        sched.enqueue(job(page="b"))
        sched.take_batch(1.0, lambda key: 1.0)  # a runs, b defers (1)
        sched.take_batch(2.0, lambda key: 1.0)  # b runs
        sched.enqueue(job(page="a"))
        sched.enqueue(job(page="b"))
        sched.take_batch(3.0, lambda key: 1.0)  # a runs, b defers anew
        assert sched.counters.deferred == 2


class TestValidation:
    def test_rejects_nonpositive_knobs(self):
        with pytest.raises(ValueError):
            scheduler(budget=0.0)
        with pytest.raises(ValueError):
            scheduler(period=0.0)
        with pytest.raises(ValueError):
            scheduler(loads=0)

"""Runtime invariant audit: cheap assertions armed by ``REPRO_AUDIT=1``.

Every headline claim this reproduction makes rests on the discrete-event
simulation being perfectly deterministic and internally consistent.  The
static linter (:mod:`repro.devtools`) proves what it can from source; the
invariants here are the ones it cannot prove statically, so they are
checked *while a load runs* instead:

* **sim-clock-monotonic** — no event callback ever rewinds the
  simulator's virtual clock.
* **fifo-discipline** — under the paper's FIFO server discipline
  (modified Mahimahi), an HTTP/2 connection delivers at most one
  response body at a time, and the one being delivered is the
  front-of-queue stream (highest weight, then lowest stream id).
* **fifo-order** — per origin, equal-priority responses complete in the
  order their bodies started (the server serialises its responses).
* **stage-gate** — the Vroom client scheduler never issues a
  speculative hint prefetch whose stage gate (preload →
  semi-important → unimportant) has not opened yet.
* **stage-transition** — scheduler stages only ever advance.
* **fetch-bytes** — every completed exchange's stream carried exactly
  its header bytes plus its body bytes.
* **byte-conservation** — bytes the link delivered equal the bytes the
  streams received and the bytes :class:`LoadMetrics` reports.
* **fast-forward-bounds** — an inline clock advance (the link's
  event-coalesced fast path) only ever jumps strictly forward and
  strictly before the next pending heap event, so coalescing is
  unobservable to every other model.
* **busy-set-cache** — the batched executor's incrementally maintained
  busy-channel set always equals a fresh recomputation from stream
  state (stale entries would silently misallocate bandwidth).
* **waterfill-fast-path** — the closed-form 1–3-connection
  water-filling allocation is bit-identical to the general iterative
  solver on the same inputs.
* **scanner-wakeup-bound** — a demand-driven scanner arming fires no
  later than the legacy 5 ms poll loop would have armed the same
  document (within one poll interval of the fetch-created transition
  that requested it), so eliding the poll is unobservable.

This module sits at layer 0 of the package DAG (like
:mod:`repro.calibration`): it imports nothing from ``repro``, so every
simulation layer may import it.  All hooks are behind ``if
audit.ENABLED`` checks at the call sites, so a disabled audit costs one
attribute read on the hot paths it guards.

Enable with the environment variable ``REPRO_AUDIT=1``, the CLI flag
``--audit``, or programmatically::

    from repro import audit
    audit.enable()
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, Tuple

__all__ = [
    "AuditError",
    "ENABLED",
    "enable",
    "disable",
    "enabled",
    "require",
    "clock_monotonic",
    "fifo_discipline",
    "fifo_order",
    "stage_gate",
    "stage_transition",
    "fetch_bytes_accounted",
    "bytes_conserved",
    "fast_forward_bounds",
    "busy_set_matches",
    "waterfill_equivalent",
    "scanner_wakeup_bound",
]


class AuditError(AssertionError):
    """A runtime invariant was violated.

    Derives from ``AssertionError``: an audit failure means the model
    broke its own contract, never that an input was bad.
    """

    def __init__(self, invariant: str, detail: str):
        self.invariant = invariant
        self.detail = detail
        super().__init__(f"audit invariant {invariant!r} violated: {detail}")


#: Global switch.  Reading the environment once at import keeps the
#: opt-in out of every hot path; this is infrastructure configuration,
#: not simulation state, so the purity rule is waived here.
ENABLED = os.environ.get("REPRO_AUDIT", "0") not in ("", "0")  # repro: allow[PUR201] audit opt-in is read once at import, never during a simulation


def enable() -> None:
    """Arm the audit for the rest of the process."""
    global ENABLED
    ENABLED = True


def disable() -> None:
    global ENABLED
    ENABLED = False


def enabled() -> bool:
    return ENABLED


def require(condition: bool, invariant: str, detail: str = "") -> None:
    """Raise :class:`AuditError` unless ``condition`` holds."""
    if not condition:
        raise AuditError(invariant, detail)


# -- invariant helpers (call sites guard with ``if audit.ENABLED``) --------


def clock_monotonic(before: float, after: float, context: str = "") -> None:
    """The virtual clock never moves backwards across a callback."""
    if after < before:
        raise AuditError(
            "sim-clock-monotonic",
            f"clock moved from {before!r} back to {after!r}"
            + (f" during {context}" if context else ""),
        )


def fifo_discipline(
    channel_ordinal: int,
    rated: Iterable[Tuple[float, int]],
    head: Tuple[float, int],
    active: Iterable[Tuple[float, int]],
) -> None:
    """FIFO connections serialise delivery and serve the queue head.

    ``rated`` are (weight, id) pairs of streams with a positive rate
    after allocation; ``head`` is the stream the allocator picked;
    ``active`` are all not-yet-done streams on the connection.
    """
    rated = list(rated)
    if len(rated) > 1:
        raise AuditError(
            "fifo-discipline",
            f"channel {channel_ordinal} delivers {len(rated)} bodies "
            f"concurrently under FIFO scheduling: {sorted(rated)}",
        )
    expected = min(active, key=lambda pair: (-pair[0], pair[1]), default=None)
    if expected is not None and head != expected:
        raise AuditError(
            "fifo-discipline",
            f"channel {channel_ordinal} serves stream {head} while "
            f"{expected} heads the queue",
        )


def fifo_order(
    last_by_key: Dict[Tuple[str, float], int],
    domain: str,
    weight: float,
    stream_id: int,
) -> None:
    """Equal-priority responses of one origin complete in start order.

    ``last_by_key`` is caller-owned state mapping (domain, weight) to the
    last completed stream id; stream ids increase in body-start order.
    """
    key = (domain, weight)
    last = last_by_key.get(key)
    if last is not None and stream_id < last:
        raise AuditError(
            "fifo-order",
            f"origin {domain!r} completed stream {stream_id} after "
            f"stream {last} of equal priority {weight!r}",
        )
    last_by_key[key] = stream_id


def stage_gate(
    current_stage: int,
    hint_stage: int,
    url: str,
    root_settled: bool,
) -> None:
    """A hint prefetch may only be issued once its stage gate is open.

    Stages are compared by their ``Priority`` ordinal: preload (0) <
    semi-important (1) < unimportant (2).  Preload hints fetch
    immediately by design; later stages additionally require the root
    document to have settled, since stage advancement is gated on it.
    """
    if hint_stage > current_stage:
        raise AuditError(
            "stage-gate",
            f"hint prefetch of {url!r} (stage {hint_stage}) issued while "
            f"the scheduler is in stage {current_stage}",
        )
    if hint_stage > 0 and not root_settled:
        raise AuditError(
            "stage-gate",
            f"stage-{hint_stage} hint prefetch of {url!r} issued before "
            "the root document settled",
        )


def stage_transition(old_stage: int, new_stage: int) -> None:
    """Scheduler stages only ever advance (preload → semi → unimportant)."""
    if new_stage < old_stage:
        raise AuditError(
            "stage-transition",
            f"scheduler stage moved backwards: {old_stage} -> {new_stage}",
        )


def fetch_bytes_accounted(
    url: str,
    stream_total: float,
    header_bytes: float,
    body_size: float,
    tolerance: float = 0.5,
) -> None:
    """A completed exchange's stream carried headers plus body, exactly."""
    expected = header_bytes + body_size
    if abs(stream_total - expected) > tolerance:
        raise AuditError(
            "fetch-bytes",
            f"{url!r} stream carried {stream_total!r} bytes; headers "
            f"({header_bytes!r}) + body ({body_size!r}) = {expected!r}",
        )


def fast_forward_bounds(
    now: float,
    target: float,
    next_event: "float | None",
) -> None:
    """An inline clock advance stays strictly inside the silent window.

    ``next_event`` is the time of the next pending heap event (None when
    the heap is empty); the advance must end strictly before it so the
    coalesced steps are indistinguishable from the event-per-tick trace.
    """
    if target <= now:
        raise AuditError(
            "fast-forward-bounds",
            f"inline advance from {now!r} to {target!r} does not move "
            "strictly forward",
        )
    if next_event is not None and next_event <= target:
        raise AuditError(
            "fast-forward-bounds",
            f"inline advance to {target!r} reaches past the next pending "
            f"event at {next_event!r}",
        )


def busy_set_matches(
    cached_ids: "list[int]",
    recomputed_ids: "list[int]",
) -> None:
    """The memoised busy-channel set equals a fresh recomputation.

    Both arguments are channel ids in link order; the cache must be
    invalidated on every stream start, completion, and abort, so any
    difference means a missed invalidation hook.
    """
    if cached_ids != recomputed_ids:
        raise AuditError(
            "busy-set-cache",
            f"cached busy channels {cached_ids!r} != recomputed "
            f"{recomputed_ids!r} (missed invalidation)",
        )


def waterfill_equivalent(
    caps: "list[float]",
    budget: float,
    fast: "list[float]",
    general: "list[float]",
) -> None:
    """Closed-form water-filling matches the general solver bit for bit."""
    if fast != general:
        raise AuditError(
            "waterfill-fast-path",
            f"closed-form allocation {fast!r} != general solver "
            f"{general!r} for caps {caps!r} budget {budget!r}",
        )


def scanner_wakeup_bound(
    armed_at: float,
    requested_at: float,
    interval: float,
) -> None:
    """A demand-driven scanner arming is never later than the poll's.

    ``requested_at`` is when the earliest pending fetch-created
    transition asked for a wakeup; the legacy loop would examine that
    document at the first poll tick strictly after it, at most
    ``interval`` later.  An arming beyond that bound (or before the
    request) means the event-driven engine drifted off the poll grid.
    The nanosecond of slack absorbs the float error the iterated
    grid addition legitimately accumulates.
    """
    if armed_at < requested_at:
        raise AuditError(
            "scanner-wakeup-bound",
            f"scanner armed at {armed_at!r}, before the wakeup request "
            f"at {requested_at!r}",
        )
    if armed_at - requested_at > interval + 1e-9:
        raise AuditError(
            "scanner-wakeup-bound",
            f"scanner armed at {armed_at!r}, more than one poll "
            f"interval ({interval!r}) after the wakeup request at "
            f"{requested_at!r} — later than the poll loop would arm",
        )


def bytes_conserved(
    bytes_delivered: float,
    stream_bytes: float,
    metrics_bytes: float,
    tolerance: float,
) -> None:
    """Link, stream, and metrics byte counts agree within ``tolerance``."""
    if abs(bytes_delivered - stream_bytes) > tolerance:
        raise AuditError(
            "byte-conservation",
            f"link delivered {bytes_delivered!r} bytes but streams "
            f"received {stream_bytes!r} (tolerance {tolerance!r})",
        )
    if metrics_bytes != bytes_delivered:
        raise AuditError(
            "byte-conservation",
            f"LoadMetrics reports {metrics_bytes!r} bytes fetched; the "
            f"link delivered {bytes_delivered!r}",
        )

"""Corpus-level calibration checks against the paper's measurements.

These tests pin the statistics the paper reports about its page sets:
back-to-back URL flux (Sec 4.1), persistence over time (Fig 7), the
predictable-subset share (Fig 21a) and the byte mix.
"""

import statistics

from repro.analysis.accuracy import predictable_share
from repro.analysis.persistence import persistence_fraction
from repro.calibration import DEFAULT_EVAL_HOUR
from repro.pages.corpus import alexa_top100_corpus, news_sports_corpus
from repro.pages.dynamics import LoadStamp

STAMP = LoadStamp(when_hours=DEFAULT_EVAL_HOUR)


def b2b_flux(page):
    now = set(page.materialize(STAMP).urls())
    b2b = set(page.materialize(STAMP.back_to_back()).urls())
    return 1.0 - len(now & b2b) / len(now)


def test_back_to_back_flux_near_paper():
    """Sec 4.1: ~22% of the median page's URLs change across b2b loads."""
    fluxes = [b2b_flux(page) for page in alexa_top100_corpus(count=12)]
    med = statistics.median(fluxes)
    assert 0.08 <= med <= 0.35


def test_persistence_decreases_with_horizon():
    """Fig 7: longer horizons keep fewer resources."""
    pages = alexa_top100_corpus(count=10)
    hour = statistics.median(
        persistence_fraction(p, STAMP, 1.0) for p in pages
    )
    day = statistics.median(
        persistence_fraction(p, STAMP, 24.0) for p in pages
    )
    week = statistics.median(
        persistence_fraction(p, STAMP, 24.0 * 7) for p in pages
    )
    assert hour >= day >= week


def test_persistence_levels_near_paper():
    """Fig 7 medians: ~70% over one hour, ~50% over one week."""
    pages = alexa_top100_corpus(count=12)
    hour = statistics.median(
        persistence_fraction(p, STAMP, 1.0) for p in pages
    )
    week = statistics.median(
        persistence_fraction(p, STAMP, 24.0 * 7) for p in pages
    )
    assert 0.55 <= hour <= 0.95
    assert 0.30 <= week <= 0.75


def test_predictable_share_near_paper():
    """Fig 21a: predictable subset >=~80% of count, >=~95% of bytes."""
    pages = news_sports_corpus(count=10)
    shares = [predictable_share(page, STAMP) for page in pages]
    count_share = statistics.median(s[0] for s in shares)
    byte_share = statistics.median(s[1] for s in shares)
    assert count_share >= 0.65
    assert byte_share >= 0.80
    assert byte_share >= count_share  # nonce resources are small


def test_news_sports_heavier_than_alexa():
    """Fig 1's premise: News/Sports pages are more complex."""
    news = news_sports_corpus(count=8)
    alexa = alexa_top100_corpus(count=8)
    news_bytes = statistics.median(
        page.materialize(STAMP).total_bytes() for page in news
    )
    alexa_bytes = statistics.median(
        page.materialize(STAMP).total_bytes() for page in alexa
    )
    assert news_bytes > alexa_bytes


def test_processable_byte_share():
    """HTTP Archive calibration: ~a quarter of bytes need processing."""
    shares = []
    for page in news_sports_corpus(count=8):
        snap = page.materialize(STAMP)
        shares.append(snap.processable_bytes() / snap.total_bytes())
    assert 0.15 <= statistics.median(shares) <= 0.40

"""Contract tests: every figure function returns the documented series.

Benchmarks consume these dictionaries positionally; a silently renamed
key would turn a figure bench into a KeyError at bench time.  These
contracts run in the fast suite on tiny corpora.
"""

import pytest

from repro.experiments import extensions, figures

FIGURE_CONTRACTS = {
    figures.fig1_plt_today: {
        "top100_http1_plt", "news_sports_http1_plt",
    },
    figures.fig2_lower_bounds: {
        "network_bound", "cpu_bound", "max_cpu_network", "loads_from_web",
    },
    figures.fig3_http2_estimate: {
        "http2_baseline", "push_all_static", "http1", "loads_from_web",
    },
    figures.fig4_critical_path: {
        "http2_network_fraction", "vroom_network_fraction",
    },
    figures.fig7_persistence: {"one_hour", "one_day", "one_week"},
    figures.fig9_device_iou: {"oneplus3", "nexus10"},
    figures.fig14_polaris: {"vroom", "polaris"},
    figures.fig16_discovery_fetch: {
        "discovery_all", "discovery_high", "fetch_all", "fetch_high",
    },
    figures.flux_calibration: {"back_to_back_flux"},
}


@pytest.mark.parametrize(
    "func,expected_keys",
    list(FIGURE_CONTRACTS.items()),
    ids=[func.__name__ for func in FIGURE_CONTRACTS],
)
def test_figure_series_contract(func, expected_keys):
    result = func(count=2)
    assert set(result) == expected_keys
    for key, series in result.items():
        assert isinstance(series, list), key
        assert all(isinstance(v, float) for v in series), key


def test_fig13_contract():
    collected = figures.fig13_headline(count=2)
    assert set(collected) == {"plt", "aft", "speed_index"}
    for metric_map in collected.values():
        assert set(metric_map) == {"http1", "http2", "vroom", "lower_bound"}


def test_quartile_figures_contract():
    result = figures.fig17_prev_load(count=2)
    assert set(result) == {
        "lower_bound", "vroom", "deps_from_previous_load", "http2_baseline",
    }
    for quartile_tuple in result.values():
        assert len(quartile_tuple) == 3


def test_extension_contracts():
    sweep = extensions.adoption_sweep(count=2, fractions=(0.0, 1.0))
    assert set(sweep) == {"adopt_000", "adopt_100"}
    econ = extensions.clustering_economics(count=4)
    assert set(econ) == {
        "pages", "clusters", "hourly_load_reduction",
        "median_stable_coverage",
    }

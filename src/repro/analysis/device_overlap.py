"""Cross-device stable-set overlap (paper Fig 9).

The stable set of URLs a page fetches differs across devices because
responsive pages pull different image variants.  The paper compares each
page's Nexus 6 stable set against a Nexus 10 (tablet) and a OnePlus 3
(another phone) via intersection-over-union; phones overlap heavily,
tablets much less — motivating device *equivalence classes* rather than
per-model offline loads.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.core.offline import OfflineResolver
from repro.pages.dynamics import LoadStamp
from repro.pages.page import PageBlueprint


def intersection_over_union(
    page: PageBlueprint,
    stamp: LoadStamp,
    device_a: str,
    device_b: str,
) -> float:
    """IoU of the two devices' stable URL sets for one page."""
    urls = {}
    for device in (device_a, device_b):
        device_stamp = LoadStamp(
            when_hours=stamp.when_hours,
            device=device,
            user=stamp.user,
            nonce=stamp.nonce,
        )
        resolver = OfflineResolver(page)
        stable = resolver.stable_set(
            device_stamp.when_hours, device_stamp.device_class
        )
        urls[device] = set(stable.urls)
    union = urls[device_a] | urls[device_b]
    if not union:
        return 1.0
    return len(urls[device_a] & urls[device_b]) / len(union)


def iou_distributions(
    pages: Iterable[PageBlueprint],
    stamp: LoadStamp,
    reference: str = "nexus6",
    others: Iterable[str] = ("oneplus3", "nexus10"),
) -> Dict[str, List[float]]:
    """Per-device IoU-vs-reference across a corpus."""
    out: Dict[str, List[float]] = {device: [] for device in others}
    for page in pages:
        for device in out:
            out[device].append(
                intersection_over_union(page, stamp, reference, device)
            )
    return out

"""Minimal deterministic discrete-event simulation engine.

Events are ``(time, sequence, callback)`` triples in a binary heap.  The
sequence number breaks time ties in scheduling order, which keeps every run
fully deterministic.  Time is float seconds from an arbitrary origin.

Cancelled events are *compacted* out of the heap lazily: the simulator
counts cancellations and rebuilds the heap once cancelled entries dominate,
so models that churn timer events (e.g. the link's rate-refresh tick) never
drag a long tail of dead events through every ``heappop``.  The live-event
count is maintained incrementally, making :meth:`Simulator.pending` O(1)
instead of an O(n) scan.

For models that tick themselves repeatedly (again, the link's refresh
tick), :meth:`Simulator.advance_inline` lets the *currently executing*
callback move the clock forward without a heap round-trip.  The advance is
refused unless it is unobservable — strictly forward, strictly before the
next pending event, and within the active ``run(until=...)`` cap — so a
model that checks the return value executes the exact same callbacks at
the exact same times as its event-per-tick equivalent.

Two executors share that contract:

* :class:`Simulator` — the reference engine: one :class:`Event` object per
  scheduled callback, popped and dispatched one at a time.
* :class:`ArraySimulator` — the batched timeline executor's storage layer:
  struct-of-arrays event state (a heap of packed ``(time, seq, slot)``
  tuples ordered entirely by C-level tuple comparison, plus slot-indexed
  parallel lists for callback and generation) with a tiny ``__slots__``
  :class:`EventHandle` handed out only at the API boundary.  It executes
  the exact same callbacks at the exact same times in the exact same order
  as :class:`Simulator` — the heap ordering key is identical — it just
  stops allocating one Python object and one rich-comparison call chain
  per event.  Selected by ``NetworkConfig.batched_timeline``.

The deterministic perf counters (``events_scheduled``, ``executed``,
``events_cancelled``, ``inline_advances``, ``compactions``) depend only on
the event trace, never on wall time, so they are stable across machines
and usable as CI regression goldens.  Both executors maintain them with
identical semantics.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple, Union

from repro import audit

#: Compaction threshold: rebuild the heap once at least this many events are
#: cancelled *and* they outnumber the live ones.  Rebuilding is O(n); with
#: this policy its amortised cost per cancellation is O(1).
_COMPACT_MIN_CANCELLED = 64


class Event:
    """Handle to a scheduled callback; supports cancellation."""

    __slots__ = ("time", "seq", "callback", "cancelled", "sim")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        #: Owning simulator while the event sits in the heap; detached
        #: (set to None) once popped so late cancels don't skew accounting.
        self.sim: Optional["Simulator"] = None

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        if self.sim is not None:
            self.sim._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """Event queue with a monotone virtual clock."""

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        #: ``until`` cap of the active :meth:`run`, honoured by
        #: :meth:`advance_inline`; None outside a capped run.
        self._until: Optional[float] = None
        #: Deferred materialisation hook (see :meth:`defer`).
        self._deferred: Optional[Callable[[], None]] = None
        #: Microtask batching (see :meth:`call_soon`).  Off by default —
        #: the event-driven browser engine opts in; the reference trace
        #: every equivalence suite compares against keeps one heap event
        #: per deferral.
        self.microtask_batching = False
        self._soon_batch: Optional[List[Callable[[], None]]] = None
        self._soon_last = -1
        self._soon_event: Optional[Event] = None
        #: Microtask-batch counter: deferrals appended to a pending batch
        #: instead of pushed as their own heap event.
        self.soon_coalesced = 0
        #: Cancelled events still sitting in the heap.
        self._cancelled = 0
        #: Total events executed (exposed for runaway detection / stats).
        self.executed = 0
        #: Heap rebuilds performed by lazy compaction (exposed for tests).
        self.compactions = 0
        #: Deterministic perf counters: heap events pushed, in-heap events
        #: cancelled, and clock advances taken inline (no heap event).
        self.events_scheduled = 0
        self.events_cancelled = 0
        self.inline_advances = 0

    @property
    def now(self) -> float:
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        event = Event(self._now + delay, next(self._seq), callback)
        event.sim = self
        heapq.heappush(self._queue, event)
        self.events_scheduled += 1
        return event

    def schedule_drop(self, delay: float, callback: Callable[[], None]) -> None:
        """:meth:`schedule` for fire-and-forget callers.

        Most of the engine's scheduled events — DNS completions, response
        arrivals, CPU-task finishes, the sampler and scanner loops — are
        never cancelled, so the returned handle goes straight to garbage.
        This variant lets the array executor skip building it; here it is
        plain :meth:`schedule` with the result dropped, so both executors
        expose one API with identical trace semantics.
        """
        self.schedule(delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` at absolute simulated time ``time``.

        The event lands at exactly ``max(now, time)`` — not at
        ``now + (time - now)``, whose round trip through a relative
        delay can be off by one ulp.  Callers that must hit a shared
        absolute grid point bit-exactly (the browser's event-driven
        scanner wakeups reproducing the legacy poll grid) depend on
        this.
        """
        event = Event(max(self._now, time), next(self._seq), callback)
        event.sim = self
        heapq.heappush(self._queue, event)
        self.events_scheduled += 1
        return event

    # repro: hotpath
    def call_soon(self, callback: Callable[[], None]) -> Event:
        """Run ``callback`` at the current time, after pending same-time events.

        With :attr:`microtask_batching` enabled (the event-driven browser
        mode), *consecutive* deferrals drain through one heap event: a
        ``call_soon`` whose allocated sequence number immediately follows
        the previous batched deferral's — proof that nothing else was
        scheduled in between, so no event can possibly order between the
        two — appends to the pending batch instead of pushing.  Execution
        order is identical by construction, not by measure: same-time
        events interleave purely by sequence number, and the guard
        guarantees the gap between batched neighbours is empty.  Appends
        remain sound *during* the batch's own drain (a drained callback's
        first deferral lands exactly where the reference would run it);
        the batch seals when the drain returns.  Stands down under
        ``REPRO_AUDIT=1`` so the audited trace keeps one executed event
        per deferral for the per-event clock checks.  Batched deferrals
        share one :class:`Event`; no caller in the tree cancels a
        soon-event, so the shared handle is safe.
        """
        if self.microtask_batching and not audit.ENABLED:
            seq = next(self._seq)
            batch = self._soon_batch
            if batch is not None and seq == self._soon_last + 1:
                batch.append(callback)
                self._soon_last = seq
                self.soon_coalesced += 1
                return self._soon_event  # type: ignore[return-value]
            batch = [callback]
            self._soon_batch = batch
            self._soon_last = seq

            def drain() -> None:
                try:
                    i = 0
                    while i < len(batch):
                        batch[i]()
                        i += 1
                finally:
                    if self._soon_batch is batch:
                        self._soon_batch = None

            event = Event(self._now, seq, drain)
            event.sim = self
            heapq.heappush(self._queue, event)
            self.events_scheduled += 1
            self._soon_event = event
            return event
        return self.schedule(0.0, callback)

    def defer(self, materialize: Callable[[], None]) -> None:
        """Run ``materialize`` once, just before the clock next advances.

        The hook fires when the executor is about to leave the current
        timestamp — before executing any strictly-later event, before
        concluding a drained or ``until``-capped run, and before any
        :meth:`peek_time` heap inspection — so whatever events it pushes
        land in the heap exactly when an eager caller's would become
        *observable*.  Callers that re-derive one wakeup many times
        within a single timestamp (the access link's refresh tick) use
        it to collapse every same-timestamp schedule/cancel pair into at
        most one real heap push.  Single-slot by contract: at most one
        component per simulator defers (a second owner would overwrite
        the first), which the access link — its only user — satisfies.
        The hook must only push events at strictly future times;
        same-time wakeups must be scheduled eagerly, or they would jump
        the queue of already-pending same-time events.
        """
        self._deferred = materialize

    def cancel_deferred(self) -> None:
        """Drop a pending :meth:`defer` hook without running it."""
        self._deferred = None

    def _note_cancelled(self) -> None:
        self._cancelled += 1
        self.events_cancelled += 1
        if (
            self._cancelled >= _COMPACT_MIN_CANCELLED
            and self._cancelled * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled events and restore the heap invariant.

        Safe at any point: event ordering is total (time, seq), so
        ``heapify`` over the surviving events reproduces exactly the order
        a pop-by-pop drain would have seen.
        """
        for event in self._queue:
            if event.cancelled:
                event.sim = None
        self._queue = [event for event in self._queue if not event.cancelled]
        heapq.heapify(self._queue)
        self._cancelled = 0
        self.compactions += 1

    # repro: hotpath
    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 5_000_000,
    ) -> float:
        """Drain the queue; returns the final clock value.

        ``until`` caps virtual time; ``max_events`` guards against runaway
        feedback loops in buggy models (raises ``RuntimeError``).
        """
        if self._running:
            raise RuntimeError("simulator is not reentrant")
        self._running = True
        self._until = until
        heappop = heapq.heappop
        heappush = heapq.heappush
        try:
            # Callbacks may cancel events and trigger a compaction that
            # replaces ``self._queue``, so re-read the attribute each loop.
            while True:
                # repro: allow[PERF403] hoisting would pin the
                # pre-compaction queue object and silently drop events.
                if not self._queue:
                    deferred = self._deferred
                    if deferred is None:
                        break
                    self._deferred = None
                    deferred()
                    continue
                event = heappop(self._queue)
                if event.cancelled:
                    event.sim = None
                    self._cancelled -= 1
                    continue
                if self._deferred is not None and event.time > self._now:
                    # About to leave the current timestamp: let the
                    # deferred hook materialise its wakeup first (it may
                    # land earlier than this event), then re-enter.
                    heappush(self._queue, event)
                    deferred = self._deferred
                    self._deferred = None
                    deferred()
                    continue
                if until is not None and event.time > until:
                    heappush(self._queue, event)
                    self._now = until
                    break
                event.sim = None
                if event.time < self._now - 1e-12:
                    raise RuntimeError("event scheduled in the past")
                if event.time > self._now:
                    self._now = event.time
                self.executed += 1
                if self.executed > max_events:
                    raise RuntimeError(
                        f"exceeded {max_events} events; likely a model loop"
                    )
                if audit.ENABLED:
                    before = self._now
                    event.callback()
                    audit.clock_monotonic(
                        before, self._now, f"event #{event.seq}"
                    )
                else:
                    event.callback()
        finally:
            self._running = False
            self._until = None
        return self._now

    def advance_inline(self, target: float) -> bool:
        """Move the clock to ``target`` from inside a running callback.

        Returns True and advances only when the jump is *unobservable*:
        strictly forward, strictly before the next pending event, and not
        past the active ``run(until=...)`` cap.  Otherwise returns False
        and leaves the clock untouched, so the caller falls back to
        scheduling a regular heap event — which keeps the executed event
        trace bit-identical to the event-per-tick engine.
        """
        if target <= self._now:
            return False
        if self._until is not None and target > self._until:
            return False
        next_time = self.peek_time()
        if next_time is not None and next_time <= target:
            return False
        if audit.ENABLED:
            audit.fast_forward_bounds(self._now, target, next_time)
        self._now = target
        self.inline_advances += 1
        return True

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, if any.

        Flushes a pending :meth:`defer` hook first: a deferred wakeup is
        a scheduling decision already taken, so any heap inspection must
        see the event it will push.
        """
        deferred = self._deferred
        if deferred is not None:
            self._deferred = None
            deferred()
        queue = self._queue
        while queue and queue[0].cancelled:
            dead = heapq.heappop(queue)
            dead.sim = None
            self._cancelled -= 1
        return queue[0].time if queue else None

    def pending(self) -> int:
        """Number of live (non-cancelled) events, in O(1)."""
        return len(self._queue) - self._cancelled


class EventHandle:
    """API-boundary handle to an :class:`ArraySimulator` event.

    The simulator itself never touches these — event state lives in the
    struct-of-arrays storage — so the handle only carries enough to cancel:
    the owning simulator, the slot its payload occupies, and the sequence
    number that proves the slot still holds *this* event (slots are
    recycled; a stale handle's seq no longer matches and the cancel is a
    no-op, mirroring the reference engine's detach-on-pop behaviour).
    """

    __slots__ = ("sim", "seq", "slot", "time", "cancelled")

    def __init__(
        self, sim: "ArraySimulator", seq: int, slot: int, time: float
    ):
        self.sim = sim
        self.seq = seq
        self.slot = slot
        self.time = time
        self.cancelled = False

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        sim = self.sim
        # Generation check: only cancel if the slot still holds this event
        # (not popped, not recycled).  Late cancels don't skew accounting.
        if sim._slot_seq[self.slot] == self.seq:
            sim._cancel_slot(self.slot)


class ArraySimulator:
    """Struct-of-arrays event queue — same contract as :class:`Simulator`.

    Storage layout: the heap holds packed ``(time, seq, slot)`` tuples —
    compared by C-level tuple comparison on exactly the ``(time, seq)``
    key the reference engine uses — and two slot-indexed parallel lists
    hold the payload: ``_cb[slot]`` is the callback (``None`` once
    cancelled) and ``_slot_seq[slot]`` the generation guard.  Popped slots
    go on a free list and are recycled, so steady-state execution
    allocates one small tuple per event instead of a five-field object,
    and every heap sift runs without entering Python ``__lt__``.

    Determinism: ``seq`` comes from the same monotone counter discipline,
    so same-time events execute in scheduling order, bit-identical to the
    reference engine.  All perf counters keep reference semantics.
    """

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, int]] = []
        self._cb: List[Optional[Callable[[], None]]] = []
        self._slot_seq: List[int] = []
        self._free: List[int] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self._until: Optional[float] = None
        #: Deferred materialisation hook (see :meth:`Simulator.defer`).
        self._deferred: Optional[Callable[[], None]] = None
        #: Microtask batching (see :meth:`Simulator.call_soon`).
        self.microtask_batching = False
        self._soon_batch: Optional[List[Callable[[], None]]] = None
        self._soon_last = -1
        self.soon_coalesced = 0
        self._cancelled = 0
        self.executed = 0
        self.compactions = 0
        self.events_scheduled = 0
        self.events_cancelled = 0
        self.inline_advances = 0

    @property
    def now(self) -> float:
        return self._now

    def schedule(
        self, delay: float, callback: Callable[[], None]
    ) -> EventHandle:
        """Run ``callback`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        time = self._now + delay
        seq = next(self._seq)
        free = self._free
        if free:
            slot = free.pop()
            self._cb[slot] = callback
            self._slot_seq[slot] = seq
        else:
            slot = len(self._cb)
            self._cb.append(callback)
            self._slot_seq.append(seq)
        heapq.heappush(self._queue, (time, seq, slot))
        self.events_scheduled += 1
        return EventHandle(self, seq, slot, time)

    def schedule_raw(self, delay: float, callback: Callable[[], None]) -> int:
        """Heap-schedule without building an :class:`EventHandle`.

        Returns the storage slot.  For hot callers (the link's refresh
        tick) that keep the *only* reference to the event and know it is
        still pending — the callback clears the caller's record when it
        runs — the slot plus :meth:`_cancel_slot` replaces the handle at
        zero allocations.  The sequence counter, heap entry and counters
        are exactly those of :meth:`schedule`; only the handle is
        skipped.  Precondition: ``delay >= 0`` (callers clamp).
        """
        time = self._now + delay
        seq = next(self._seq)
        free = self._free
        if free:
            slot = free.pop()
            self._cb[slot] = callback
            self._slot_seq[slot] = seq
        else:
            slot = len(self._cb)
            self._cb.append(callback)
            self._slot_seq.append(seq)
        heapq.heappush(self._queue, (time, seq, slot))
        self.events_scheduled += 1
        return slot

    def schedule_drop(self, delay: float, callback: Callable[[], None]) -> None:
        """:meth:`schedule` for fire-and-forget callers: no handle at all.

        Same storage writes, sequence consumption and counters as
        :meth:`schedule`; the :class:`EventHandle` (which the reference
        engine's callers would discard anyway) is never built.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        self.schedule_raw(delay, callback)

    def schedule_at(
        self, time: float, callback: Callable[[], None]
    ) -> EventHandle:
        """Run ``callback`` at absolute simulated time ``time``.

        Exact-time semantics match :meth:`Simulator.schedule_at`: the
        heap entry carries ``max(now, time)`` itself, never a value
        re-derived from a relative delay (one ulp of drift there would
        break the scanner-wakeup grid's bit-identity contract).
        """
        when = max(self._now, time)
        seq = next(self._seq)
        free = self._free
        if free:
            slot = free.pop()
            self._cb[slot] = callback
            self._slot_seq[slot] = seq
        else:
            slot = len(self._cb)
            self._cb.append(callback)
            self._slot_seq.append(seq)
        heapq.heappush(self._queue, (when, seq, slot))
        self.events_scheduled += 1
        return EventHandle(self, seq, slot, when)

    def schedule_raw_at(
        self, time: float, callback: Callable[[], None]
    ) -> int:
        """:meth:`schedule_at` without building an :class:`EventHandle`.

        Returns the storage slot, with the same exact-time heap entry
        (``max(now, time)``) as :meth:`schedule_at` and the same
        slot/cancel contract as :meth:`schedule_raw`.  Used by the
        access link's deferred tick materialisation, which must land on
        a previously computed absolute target bit-exactly.
        """
        when = max(self._now, time)
        seq = next(self._seq)
        free = self._free
        if free:
            slot = free.pop()
            self._cb[slot] = callback
            self._slot_seq[slot] = seq
        else:
            slot = len(self._cb)
            self._cb.append(callback)
            self._slot_seq.append(seq)
        heapq.heappush(self._queue, (when, seq, slot))
        self.events_scheduled += 1
        return slot

    # repro: hotpath
    def call_soon(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` at the current time, after pending same-time events.

        No caller in the tree cancels a soon-event, so unlike the
        reference engine this returns no handle — sparing one allocation
        on what is (with watch fires and completions) one of the hottest
        scheduling paths.  Scheduling semantics and counters are exactly
        :meth:`schedule` with zero delay.

        With :attr:`microtask_batching` enabled, consecutive deferrals
        coalesce into one heap event under the sequence-gap guard proven
        in :meth:`Simulator.call_soon`; stands down under audit.
        """
        if self.microtask_batching and not audit.ENABLED:
            seq = next(self._seq)
            batch = self._soon_batch
            if batch is not None and seq == self._soon_last + 1:
                batch.append(callback)
                self._soon_last = seq
                self.soon_coalesced += 1
                return
            batch = [callback]
            self._soon_batch = batch
            self._soon_last = seq

            def drain() -> None:
                try:
                    i = 0
                    while i < len(batch):
                        batch[i]()
                        i += 1
                finally:
                    if self._soon_batch is batch:
                        self._soon_batch = None

            free = self._free
            if free:
                slot = free.pop()
                self._cb[slot] = drain
                self._slot_seq[slot] = seq
            else:
                slot = len(self._cb)
                self._cb.append(drain)
                self._slot_seq.append(seq)
            heapq.heappush(self._queue, (self._now, seq, slot))
            self.events_scheduled += 1
            return
        self.schedule_raw(0.0, callback)

    def defer(self, materialize: Callable[[], None]) -> None:
        """Run ``materialize`` just before the clock next advances.

        Contract identical to :meth:`Simulator.defer`: single slot, must
        only push strictly-future events, flushed before any strictly
        later event executes and before any heap inspection.
        """
        self._deferred = materialize

    def cancel_deferred(self) -> None:
        """Drop a pending :meth:`defer` hook without running it."""
        self._deferred = None

    def _cancel_slot(self, slot: int) -> None:
        self._cb[slot] = None
        self._cancelled += 1
        self.events_cancelled += 1
        if (
            self._cancelled >= _COMPACT_MIN_CANCELLED
            and self._cancelled * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and restore the heap invariant, in place.

        In-place (``queue[:] = ...``) so the ``run`` loop's local binding
        to the heap list stays valid across a mid-run compaction.
        """
        queue = self._queue
        free = self._free
        survivors = []
        cb = self._cb
        slot_seq = self._slot_seq
        for entry in queue:
            slot = entry[2]
            if cb[slot] is None:
                slot_seq[slot] = -1
                free.append(slot)
            else:
                survivors.append(entry)
        queue[:] = survivors
        heapq.heapify(queue)
        self._cancelled = 0
        self.compactions += 1

    # repro: hotpath
    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 5_000_000,
    ) -> float:
        """Drain the queue; returns the final clock value.

        Semantics match :meth:`Simulator.run` exactly — cancelled-head
        skipping, the ``until`` push-back, past-event detection, per-event
        audit hooks — only the storage the loop walks is array-backed.
        """
        if self._running:
            raise RuntimeError("simulator is not reentrant")
        self._running = True
        self._until = until
        heappop = heapq.heappop
        heappush = heapq.heappush
        # Compaction is in-place, so these locals stay valid; callbacks
        # append via the same list objects.
        queue = self._queue
        cb = self._cb
        slot_seq = self._slot_seq
        free = self._free
        audit_enabled = audit.ENABLED
        try:
            while True:
                if not queue:
                    deferred = self._deferred
                    if deferred is None:
                        break
                    self._deferred = None
                    deferred()
                    continue
                time, seq, slot = heappop(queue)
                callback = cb[slot]
                if callback is None:
                    slot_seq[slot] = -1
                    free.append(slot)
                    self._cancelled -= 1
                    continue
                if self._deferred is not None and time > self._now:
                    # About to leave the current timestamp: let the
                    # deferred hook materialise its wakeup first (it may
                    # land earlier than this event), then re-enter.
                    heappush(queue, (time, seq, slot))
                    deferred = self._deferred
                    self._deferred = None
                    deferred()
                    continue
                if until is not None and time > until:
                    heappush(queue, (time, seq, slot))
                    self._now = until
                    break
                # Free the slot before dispatch; stamping the generation
                # to -1 makes any late cancel via the handle a no-op.
                cb[slot] = None
                slot_seq[slot] = -1
                free.append(slot)
                if time < self._now - 1e-12:
                    raise RuntimeError("event scheduled in the past")
                if time > self._now:
                    self._now = time
                self.executed += 1
                if self.executed > max_events:
                    raise RuntimeError(
                        f"exceeded {max_events} events; likely a model loop"
                    )
                if audit_enabled:
                    before = self._now
                    callback()
                    audit.clock_monotonic(before, self._now, f"event #{seq}")
                else:
                    callback()
        finally:
            self._running = False
            self._until = None
        return self._now

    def advance_inline(self, target: float) -> bool:
        """Move the clock to ``target`` from inside a running callback.

        Identical contract to :meth:`Simulator.advance_inline`: the jump
        must be strictly forward, strictly before the next pending event,
        and within the active ``run(until=...)`` cap.
        """
        if target <= self._now:
            return False
        if self._until is not None and target > self._until:
            return False
        next_time = self.peek_time()
        if next_time is not None and next_time <= target:
            return False
        if audit.ENABLED:
            audit.fast_forward_bounds(self._now, target, next_time)
        self._now = target
        self.inline_advances += 1
        return True

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, if any.

        Flushes a pending :meth:`defer` hook first, exactly as
        :meth:`Simulator.peek_time` does.
        """
        deferred = self._deferred
        if deferred is not None:
            self._deferred = None
            deferred()
        queue = self._queue
        cb = self._cb
        while queue and cb[queue[0][2]] is None:
            dead = heapq.heappop(queue)
            self._slot_seq[dead[2]] = -1
            self._free.append(dead[2])
            self._cancelled -= 1
        return queue[0][0] if queue else None

    def pending(self) -> int:
        """Number of live (non-cancelled) events, in O(1)."""
        return len(self._queue) - self._cancelled


#: Either executor; they implement one contract (see module docstring), so
#: models annotate against the union and stay engine-agnostic.
SimulatorLike = Union[Simulator, ArraySimulator]

#: Either engine's cancellation handle.
EventLike = Union[Event, EventHandle]

"""Network substrate: discrete-event engine, shared access link, HTTP models.

The model is fluid-flow: response bodies are continuous byte streams whose
rates are recomputed whenever the set of active streams changes.  The access
link divides its downlink bandwidth equally across connections carrying
data; each connection divides its share across its streams according to its
scheduling mode (fair, FIFO, or priority-weighted).
"""

from repro.net.simulator import Simulator
from repro.net.link import AccessLink, StreamHandle, StreamScheduling
from repro.net.origin import OriginServer, Response
from repro.net.faults import (
    FaultKind,
    FaultPlan,
    FaultRule,
    ResiliencePolicy,
    hint_fault_plan,
)
from repro.net.http import (
    Fetch,
    HttpClient,
    HttpVersion,
    NetworkConfig,
    PushedResponse,
)

__all__ = [
    "Simulator",
    "AccessLink",
    "StreamHandle",
    "StreamScheduling",
    "OriginServer",
    "Response",
    "FaultKind",
    "FaultPlan",
    "FaultRule",
    "ResiliencePolicy",
    "hint_fault_plan",
    "Fetch",
    "HttpClient",
    "HttpVersion",
    "NetworkConfig",
    "PushedResponse",
]

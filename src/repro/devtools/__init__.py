"""Repo-specific static analysis: determinism linting and layer checking.

The reproduction's results are only trustworthy if identical inputs give
bit-identical simulations and the simulation layers stay pure.  This
package machine-checks both properties:

* :mod:`repro.devtools.astrules` — AST determinism rules (unordered-set
  iteration, unseeded randomness, wall-clock reads, ``hash()``/``id()``
  hazards, I/O inside pure simulation layers).
* :mod:`repro.devtools.layering` — import-graph checker enforcing the
  package DAG (``audit``/``calibration`` → ``net``/``pages`` →
  ``browser``/``replay`` → ``core`` → ``baselines`` → ``analysis`` →
  ``experiments`` → ``cli``).
* :mod:`repro.devtools.callgraph` — import-resolved project call graph;
  ``# repro: hotpath`` pragma seeds and transitive hot-region
  propagation, cached per tree state.
* :mod:`repro.devtools.perfrules` — PERF4xx hot-path allocation rules
  (per-tick allocation, per-call construction, hoistable attribute
  chains, try/except in hot loops, missing ``__slots__``).
* :mod:`repro.devtools.driftrules` — CFG6xx config/contract drift rules
  (dataclass fields vs docs/API.md knob tables vs the CLI flag surface).
* :mod:`repro.devtools.baseline` — suppression file for fully-explained
  pre-existing debt, so new violations gate CI without blocking on old
  ones.
* :mod:`repro.devtools.runner` — file walking, pragma handling, family
  and ``--select`` filters, and the human/JSON reports behind
  ``repro lint``.

The package is pure tooling: it imports nothing from the simulation (it
reads *source text*, never runs it), so it sits outside the simulation
DAG entirely and may never be imported by a simulation layer.
"""

from repro.devtools.findings import FAMILIES, Finding, RULES, family_of
from repro.devtools.baseline import Baseline
from repro.devtools.callgraph import (
    CallGraph,
    build_call_graph,
    cached_project,
    parse_package,
)
from repro.devtools.layering import LAYER_DEPS, check_layering, import_edges
from repro.devtools.runner import (
    LintReport,
    LintStats,
    lint_package,
    resolve_selection,
)

__all__ = [
    "FAMILIES",
    "Finding",
    "RULES",
    "family_of",
    "Baseline",
    "CallGraph",
    "build_call_graph",
    "cached_project",
    "parse_package",
    "LAYER_DEPS",
    "check_layering",
    "import_edges",
    "LintReport",
    "LintStats",
    "lint_package",
    "resolve_selection",
]

"""Device registry: the phones and tablets the paper evaluates with.

A :class:`Device` bundles everything the simulation varies per model:
CPU speed (relative to the Nexus 6), the equivalence class that drives
responsive-image variants (Sec 4.1.2), and display metadata explaining
*why* the classes differ.  The registry is the single source of truth;
`calibration.DEVICE_CPU_SPEEDUP` and `calibration.DEVICE_CLASSES` are
derived views kept for backwards compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.browser.cpu import CpuProfile
from repro.calibration import DEVICE_CLASSES, DEVICE_CPU_SPEEDUP


@dataclass(frozen=True)
class Device:
    """One client device model."""

    name: str
    #: CPU speed relative to the Nexus 6 baseline.
    cpu_speedup: float
    #: Equivalence class for offline resolution ("phone" / "tablet").
    device_class: str
    #: Viewport CSS pixels (drives which image variants pages serve).
    viewport: tuple
    #: Marketing-era description, for reports.
    description: str = ""

    def cpu_profile(self) -> CpuProfile:
        return CpuProfile(device=self.name, speedup=self.cpu_speedup)


DEVICES: Dict[str, Device] = {
    "nexus6": Device(
        name="nexus6",
        cpu_speedup=1.00,
        device_class="phone",
        viewport=(412, 732),
        description="the paper's primary test device (2014 flagship)",
    ),
    "oneplus3": Device(
        name="oneplus3",
        cpu_speedup=1.45,
        device_class="phone",
        viewport=(412, 732),
        description="2016 flagship; same display class, faster CPU",
    ),
    "nexus10": Device(
        name="nexus10",
        cpu_speedup=0.85,
        device_class="tablet",
        viewport=(800, 1280),
        description="tablet; pulls larger responsive-image variants",
    ),
}


def get_device(name: str) -> Device:
    try:
        return DEVICES[name]
    except KeyError:
        raise ValueError(
            f"unknown device {name!r}; choose from {sorted(DEVICES)}"
        ) from None


def _check_consistency() -> None:
    """The derived calibration views must agree with the registry."""
    for name, device in DEVICES.items():
        assert DEVICE_CPU_SPEEDUP[name] == device.cpu_speedup, name
        assert DEVICE_CLASSES[name] == device.device_class, name


_check_consistency()

"""Tests for page-type clustering (offline-load economics, Sec 7)."""

from repro.core.clustering import (
    cluster_pages,
    evaluate_clustering,
    stable_name_set,
)
from repro.pages.corpus import accuracy_corpus, news_sports_corpus


class TestStableNameSet:
    def test_nonempty_for_real_pages(self, page, stamp):
        names = stable_name_set(page, stamp.when_hours)
        assert len(names) > 10

    def test_names_belong_to_page(self, page, stamp):
        names = stable_name_set(page, stamp.when_hours)
        assert names <= set(page.specs)


class TestClusterPages:
    def test_every_page_placed_once(self, stamp):
        pages = news_sports_corpus(count=8)
        clusters = cluster_pages(pages, stamp.when_hours)
        placed = [member for cluster in clusters for member in cluster.members]
        assert sorted(p.name for p in placed) == sorted(
            p.name for p in pages
        )

    def test_probe_is_member(self, stamp):
        pages = news_sports_corpus(count=6)
        for cluster in cluster_pages(pages, stamp.when_hours):
            assert cluster.probe in cluster.members

    def test_threshold_one_isolates_everything(self, stamp):
        pages = news_sports_corpus(count=5)
        clusters = cluster_pages(
            pages, stamp.when_hours, similarity_threshold=1.01
        )
        assert len(clusters) == len(pages)

    def test_threshold_zero_merges_everything(self, stamp):
        pages = news_sports_corpus(count=5)
        clusters = cluster_pages(
            pages, stamp.when_hours, similarity_threshold=0.0
        )
        assert len(clusters) == 1


class TestEconomics:
    def test_load_reduction_bounds(self, stamp):
        pages = accuracy_corpus(count=10)
        economics = evaluate_clustering(pages, stamp.when_hours)
        assert 0.0 <= economics.load_reduction < 1.0
        assert economics.clusters <= economics.pages
        assert 0.0 <= economics.median_coverage <= 1.0

    def test_same_template_pages_cluster(self, stamp):
        """Pages generated from the same profile with similar structure
        should yield fewer clusters than pages."""
        pages = accuracy_corpus(count=12)
        economics = evaluate_clustering(
            pages, stamp.when_hours, similarity_threshold=0.4
        )
        assert economics.clusters < economics.pages

    def test_lower_threshold_saves_more_loads(self, stamp):
        pages = accuracy_corpus(count=10)
        strict = evaluate_clustering(
            pages, stamp.when_hours, similarity_threshold=0.8
        )
        loose = evaluate_clustering(
            pages, stamp.when_hours, similarity_threshold=0.3
        )
        assert loose.load_reduction >= strict.load_reduction

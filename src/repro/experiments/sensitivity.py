"""Sensitivity analysis: is "Vroom wins" an artifact of calibration?

The reproduction's constants (bandwidth, RTT, CPU speed) were calibrated
to the paper's testbed (docs/CALIBRATION.md).  A fair question is whether
the headline conclusion — Vroom beats the HTTP/2 baseline — survives
perturbation of those constants.  This module sweeps multipliers around
the calibrated operating point and reports the Vroom/HTTP2 PLT ratio at
each setting.

Expected shape: the ratio stays below 1.0 across a wide neighbourhood,
degrading toward 1.0 (and beyond) only in the regimes the paper itself
exempts (severely bandwidth-starved links; see `net.profiles`).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.stats import median
from repro.browser.engine import BrowserConfig, load_page
from repro.calibration import DEFAULT_EVAL_HOUR, LTE_DOWNLINK_BPS, LTE_RTT
from repro.core.scheduler import VroomScheduler
from repro.core.server import vroom_servers
from repro.net.http import NetworkConfig
from repro.net.link import StreamScheduling
from repro.pages.corpus import news_sports_corpus
from repro.pages.dynamics import LoadStamp
from repro.replay.recorder import record_snapshot
from repro.replay.replayer import build_servers


def _ratio_at(
    pages,
    stamp: LoadStamp,
    *,
    bandwidth_mult: float = 1.0,
    rtt_mult: float = 1.0,
    cpu_mult: float = 1.0,
) -> float:
    """Median Vroom/HTTP2 PLT ratio at one calibration point."""
    ratios: List[float] = []
    for page in pages:
        snapshot = page.materialize(stamp)
        store = record_snapshot(snapshot)
        browser = BrowserConfig(
            when_hours=stamp.when_hours, cpu_scale=cpu_mult
        )
        base_net = dict(
            downlink_bps=LTE_DOWNLINK_BPS * bandwidth_mult,
            base_rtt=LTE_RTT * rtt_mult,
        )
        http2 = load_page(
            snapshot,
            build_servers(store),
            NetworkConfig(**base_net),
            browser,
        )
        vroom = load_page(
            snapshot,
            vroom_servers(page, snapshot, store),
            NetworkConfig(
                h2_scheduling=StreamScheduling.FIFO, **base_net
            ),
            browser,
            policy=VroomScheduler(),
        )
        ratios.append(vroom.plt / http2.plt)
    return median(ratios)


def sensitivity_sweep(
    count: int = 6,
    multipliers: Sequence[float] = (0.5, 1.0, 2.0),
) -> Dict[str, Dict[float, float]]:
    """Vroom/HTTP2 ratio as each knob varies (others at calibration)."""
    stamp = LoadStamp(when_hours=DEFAULT_EVAL_HOUR)
    pages = news_sports_corpus(count)
    out: Dict[str, Dict[float, float]] = {
        "bandwidth": {}, "rtt": {}, "cpu_speed": {},
    }
    for multiplier in multipliers:
        out["bandwidth"][multiplier] = _ratio_at(
            pages, stamp, bandwidth_mult=multiplier
        )
        out["rtt"][multiplier] = _ratio_at(
            pages, stamp, rtt_mult=multiplier
        )
        # cpu_speed multiplier speeds the CPU up; cpu_scale is a cost
        # multiplier, so invert.
        out["cpu_speed"][multiplier] = _ratio_at(
            pages, stamp, cpu_mult=1.0 / multiplier
        )
    return out

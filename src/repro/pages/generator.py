"""Statistical synthesis of page blueprints from a corpus profile.

The generator builds pages whose aggregate statistics match the profile in
:mod:`repro.calibration`: resource counts, byte mix (with the processable
share near 25%), domain spread, dependency-chain depth, iframe counts and
the fractions of script-computed / nonce / rotating / device / personalised
resources.  All randomness flows from one seeded ``random.Random`` so a
corpus is a pure function of its seed.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.calibration import CorpusProfile
from repro.pages.page import PageBlueprint
from repro.pages.resources import Discovery, ResourceSpec, ResourceType

#: Relative frequency of non-processable resource types.
_MEDIA_MIX = [
    (ResourceType.IMAGE, 0.72),
    (ResourceType.FONT, 0.10),
    (ResourceType.JSON, 0.10),
    (ResourceType.VIDEO, 0.03),
    (ResourceType.OTHER, 0.05),
]


class PageGenerator:
    """Generates :class:`PageBlueprint` objects matching a profile."""

    def __init__(self, profile: CorpusProfile, seed: int = 0):
        self.profile = profile
        self.rng = random.Random(seed)

    # -- low-level samplers -------------------------------------------------

    def _gauss_int(self, mean_sd: tuple, lo: int, hi: int) -> int:
        mean, sd = mean_sd
        return int(min(hi, max(lo, self.rng.gauss(mean, sd))))

    def _gauss(self, mean_sd: tuple, lo: float) -> float:
        mean, sd = mean_sd
        return max(lo, self.rng.gauss(mean, sd))

    def _media_type(self) -> ResourceType:
        roll = self.rng.random()
        acc = 0.0
        for rtype, weight in _MEDIA_MIX:
            acc += weight
            if roll <= acc:
                return rtype
        return ResourceType.IMAGE

    def _sizes(self, count: int, total: float) -> List[int]:
        """Split ``total`` bytes into ``count`` lognormal-ish shares."""
        weights = [self.rng.lognormvariate(0.0, 1.0) for _ in range(count)]
        scale = total / sum(weights)
        return [max(200, int(weight * scale)) for weight in weights]

    # -- page assembly -------------------------------------------------------

    def generate(self, page_name: str, dynamic_bias: float = 1.0) -> PageBlueprint:
        """Build one page.

        ``dynamic_bias`` scales the unpredictable/rotating fractions, used
        to create the heavy-flux tail pages where Vroom's hints help least.
        """
        profile = self.profile
        n_total = self._gauss_int(profile.resource_count, 12, 400)
        total_bytes = self._gauss(profile.total_bytes, 100_000.0)
        n_domains = self._gauss_int(profile.domain_count, 2, 60)
        n_iframes = self._gauss_int(profile.iframe_count, 0, 8)
        n_iframes = min(n_iframes, max(0, n_total // 10))

        first_party = f"{page_name}.com"
        third_parties = [
            f"cdn{index}.{page_name}-3p{index}.com" for index in range(n_domains - 1)
        ]
        domains = [first_party] + third_parties

        # Byte budget: processable vs media.
        processable_budget = total_bytes * profile.processable_byte_share
        media_budget = total_bytes - processable_budget

        # Resource count budget.
        n_css = max(1, int(n_total * 0.08))
        n_js = max(2, int(n_total * 0.26))
        n_docs = 1 + n_iframes
        n_media = max(1, n_total - n_css - n_js - n_docs)

        page = PageBlueprint(name=page_name, root=f"{page_name}_root")

        doc_sizes = [
            max(25_000, min(65_000, size))
            for size in self._sizes(n_docs, processable_budget * 0.12)
        ]
        css_sizes = self._sizes(n_css, processable_budget * 0.18)
        js_sizes = self._sizes(n_js, processable_budget * 0.70)
        media_sizes = self._sizes(n_media, media_budget)

        root = page.add(
            ResourceSpec(
                name=f"{page_name}_root",
                rtype=ResourceType.HTML,
                domain=first_party,
                size=doc_sizes[0],
                parent=None,
                lifetime_hours=self._rotation_lifetime(0.9),
                cacheable=False,  # dynamically generated, always refetched
            )
        )

        # Processable skeleton: CSS and JS attached to the root document,
        # with some JS chained under other JS to create dependency depth.
        max_depth = self._gauss_int(self.profile.chain_depth, 2, 16)
        css_specs = [
            self._add_child(
                page,
                name=f"{page_name}_css{index}",
                rtype=ResourceType.CSS,
                parent=root,
                size=size,
                domain=self._pick_domain(domains, first_party_bias=0.6),
                dynamic_bias=dynamic_bias * 0.3,
                position=self.rng.uniform(0.02, 0.25),
            )
            for index, size in enumerate(css_sizes)
        ]

        js_specs: List[ResourceSpec] = []
        for index, size in enumerate(js_sizes):
            parent: ResourceSpec = root
            discovery = Discovery.STATIC_MARKUP
            chainable = [
                spec
                for spec in js_specs
                if self._depth(page, spec) < max_depth - 1
            ]
            if chainable and self.rng.random() < 0.82:
                # Prefer extending the deepest chain: ad/analytics loaders
                # form long linear handoffs (loader -> auction -> creative
                # -> tracker ...), not balanced trees.
                if self.rng.random() < 0.7:
                    parent = max(
                        chainable, key=lambda spec: self._depth(page, spec)
                    )
                else:
                    parent = self.rng.choice(chainable)
                discovery = Discovery.SCRIPT_COMPUTED
            js_specs.append(
                self._add_child(
                    page,
                    name=f"{page_name}_js{index}",
                    rtype=ResourceType.JS,
                    parent=parent,
                    size=size,
                    domain=self._pick_domain(domains, first_party_bias=0.35),
                    dynamic_bias=dynamic_bias,
                    discovery=discovery,
                    position=self.rng.uniform(0.05, 0.9),
                    exec_async=(
                        discovery is Discovery.STATIC_MARKUP
                        and self.rng.random() < self.profile.async_script_frac
                    ),
                )
            )

        # Embedded third-party documents (ads / widgets), personalised.
        iframe_docs: List[ResourceSpec] = []
        for index in range(n_iframes):
            iframe_docs.append(
                self._add_child(
                    page,
                    name=f"{page_name}_frame{index}",
                    rtype=ResourceType.HTML,
                    parent=root,
                    size=doc_sizes[1 + index],
                    domain=self.rng.choice(third_parties or [first_party]),
                    dynamic_bias=dynamic_bias,
                    position=self.rng.uniform(0.5, 0.98),
                    personalized=True,
                    cacheable=False,
                )
            )

        # Media resources hang off documents, scripts and stylesheets.
        for index, size in enumerate(media_sizes):
            rtype = self._media_type()
            host_roll = self.rng.random()
            if host_roll < self.profile.script_computed_frac and js_specs:
                parent = self.rng.choice(js_specs)
                discovery = Discovery.SCRIPT_COMPUTED
            elif host_roll < self.profile.script_computed_frac + 0.10 and css_specs:
                parent = self.rng.choice(css_specs)
                discovery = Discovery.CSS_REF
            elif iframe_docs and self.rng.random() < 0.30:
                parent = self.rng.choice(iframe_docs)
                discovery = Discovery.STATIC_MARKUP
            else:
                parent = root
                discovery = Discovery.STATIC_MARKUP
            above_fold = self.rng.random() < self.profile.above_fold_frac
            self._add_child(
                page,
                name=f"{page_name}_media{index}",
                rtype=rtype,
                parent=parent,
                size=size,
                domain=self._pick_domain(domains, first_party_bias=0.35),
                dynamic_bias=dynamic_bias,
                discovery=discovery,
                position=self.rng.random(),
                above_fold=above_fold,
                pixel_weight=(
                    self.rng.uniform(0.5, 3.0) if above_fold else 0.0
                ),
            )

        page.validate()
        return page

    # -- helpers -------------------------------------------------------------

    def _depth(self, page: PageBlueprint, spec: ResourceSpec) -> int:
        depth = 0
        node: Optional[str] = spec.name
        while node is not None:
            node = page.specs[node].parent
            depth += 1
        return depth

    def _pick_domain(self, domains: List[str], first_party_bias: float) -> str:
        """First party with the given bias; otherwise zipf over third parties.

        Real pages concentrate most third-party bytes on a few CDNs with a
        long tail of single-resource domains — which is what makes the
        six-connections-per-domain HTTP/1.1 limit matter.
        """
        if self.rng.random() < first_party_bias or len(domains) == 1:
            return domains[0]
        third_parties = domains[1:]
        weights = [1.0 / (rank + 1) ** 1.4 for rank in range(len(third_parties))]
        return self.rng.choices(third_parties, weights=weights, k=1)[0]

    def _rotation_lifetime(
        self, rotate_prob: float, stretch: float = 1.0
    ) -> Optional[float]:
        if self.rng.random() >= rotate_prob:
            return None
        return stretch * self._gauss(
            self.profile.rotation_lifetime_hours, 0.75
        )

    def _add_child(
        self,
        page: PageBlueprint,
        *,
        name: str,
        rtype: ResourceType,
        parent: ResourceSpec,
        size: int,
        domain: str,
        dynamic_bias: float,
        discovery: Discovery = Discovery.STATIC_MARKUP,
        position: float = 0.5,
        exec_async: bool = False,
        above_fold: bool = False,
        pixel_weight: float = 0.0,
        personalized: Optional[bool] = None,
        cacheable: Optional[bool] = None,
    ) -> ResourceSpec:
        profile = self.profile
        unpredictable_frac = profile.unpredictable_frac * dynamic_bias
        if discovery is Discovery.STATIC_MARKUP:
            # Nonce URLs come overwhelmingly from ad/analytics scripts;
            # markup-declared references are mostly stable content.
            unpredictable_frac *= 0.25
        unpredictable = self.rng.random() < unpredictable_frac
        if parent.user_state_script and self.rng.random() < 0.75:
            # Children of user-state-dependent scripts embed local time or
            # similar state in their URLs: fresh on every load.
            unpredictable = True
        if unpredictable and rtype not in (ResourceType.JS, ResourceType.HTML):
            # Nonce-bearing URLs are ad beacons and tracking pixels: tiny.
            size = min(size, self.rng.randint(400, 4000))
        rotating_frac = profile.rotating_frac * dynamic_bias
        rotation_stretch = 1.0
        if discovery is not Discovery.STATIC_MARKUP:
            # Content churn (fresh stories, rotated creatives) lives in
            # the markup; script- and CSS-referenced assets are mostly
            # library-stable.  This is what keeps Vroom's false-negative
            # rate low: online HTML analysis sees almost all of the flux.
            rotating_frac *= 0.25
            rotation_stretch = 4.0
        rotating = (
            not unpredictable and self.rng.random() < rotating_frac
        )
        if personalized is None:
            personalized = self.rng.random() < profile.personalized_frac
        spec = ResourceSpec(
            name=name,
            rtype=rtype,
            domain=domain,
            size=size,
            parent=parent.name,
            discovery=discovery,
            position=position,
            exec_async=exec_async,
            above_fold=above_fold,
            pixel_weight=pixel_weight,
            cacheable=cacheable
            if cacheable is not None
            else self.rng.random() < (
                # Ad/analytics script endpoints are typically no-store;
                # other third-party JS caches poorly too.
                profile.cacheable_frac * 0.55
                if rtype is ResourceType.JS
                and domain != f"{page.name}.com"
                else profile.cacheable_frac
            ),
            max_age_hours=self.rng.choice([1.0, 6.0, 24.0, 24.0 * 7]),
            lifetime_hours=(
                self._rotation_lifetime(1.0, rotation_stretch)
                if rotating
                else None
            ),
            unpredictable=unpredictable,
            device_dependent=(
                rtype is ResourceType.IMAGE
                and self.rng.random() < profile.device_dependent_frac * 3
            ),
            personalized=personalized,
            user_state_script=(
                rtype is ResourceType.JS and self.rng.random() < 0.08
            ),
            server_think_time=self._think_time(rtype, domain, page.name),
        )
        return page.add(spec)

    def _think_time(
        self, rtype: ResourceType, domain: str, page_name: str
    ) -> Optional[float]:
        """Third-party script/HTML endpoints (ads, analytics) are slow."""
        first_party = domain == f"{page_name}.com"
        if first_party or rtype not in (ResourceType.JS, ResourceType.HTML):
            return None
        return self.rng.uniform(0.02, 0.14)


def generate_page(
    profile: CorpusProfile,
    page_name: str,
    seed: int = 0,
    dynamic_bias: float = 1.0,
) -> PageBlueprint:
    """Convenience wrapper: one page from a fresh generator."""
    return PageGenerator(profile, seed=seed).generate(
        page_name, dynamic_bias=dynamic_bias
    )

"""`ScenarioSpec`: one declarative, fingerprintable run description.

Every experiment so far wires its corpus, workload, store policy and
fault schedule together imperatively.  A spec replaces that with a
single frozen dataclass whose fields are the *complete* causal surface
of a long-horizon run: two specs with equal fingerprints describe
bit-identical runs, and a spec survives a JSON round trip unchanged —
which is what lets a checkpoint name the run it belongs to.

The fingerprint reuses the length-prefixed hashing discipline of
:func:`repro.replay.cache.blueprint_fingerprint`: every component is
written as ``len:bytes`` before hashing, so no value can bleed into its
neighbour and no field boundary depends on values containing no
delimiter characters.

The spec is registered in the devtools config-drift contract
(:data:`repro.devtools.driftrules.DEFAULT_CONTRACTS`), so its knob
table in ``docs/API.md`` is machine-checked against this file.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, fields
from typing import Callable, Dict, List, Optional, Tuple

from repro.calibration import DEFAULT_EVAL_HOUR
from repro.net.faults import FaultKind, FaultPlan, FaultRule
from repro.net.profiles import PROFILES, NetworkProfile, profile
from repro.pages.corpus import (
    accuracy_corpus,
    alexa_top100_corpus,
    alexa_top400_sample_corpus,
    news_sports_corpus,
    shopping_corpus,
)
from repro.pages.page import PageBlueprint
from repro.service.backend import ServiceConfig
from repro.service.placement import shard_outage_rule

#: Corpus name -> builder; the declarative half of ``cli.CORPORA`` plus
#: the shopping corpus (the CLI keeps its own map because the scenario
#: layer must not import the CLI).
CORPUS_BUILDERS: Dict[str, Callable[..., List[PageBlueprint]]] = {
    "news": news_sports_corpus,
    "alexa100": alexa_top100_corpus,
    "alexa400": alexa_top400_sample_corpus,
    "accuracy": accuracy_corpus,
    "shopping": shopping_corpus,
}


def fault_rule_to_dict(rule: FaultRule) -> dict:
    """JSON-clean form of one fault rule (``inf`` becomes ``None``)."""
    return {
        "kind": rule.kind.value,
        "rate": rule.rate,
        "url_substring": rule.url_substring,
        "domain": rule.domain,
        "hints_only": rule.hints_only,
        "not_before": rule.not_before,
        "not_after": (
            None if rule.not_after == float("inf") else rule.not_after
        ),
    }


def fault_rule_from_dict(data: dict) -> FaultRule:
    """Inverse of :func:`fault_rule_to_dict`."""
    return FaultRule(
        kind=FaultKind(data["kind"]),
        rate=data["rate"],
        url_substring=data["url_substring"],
        domain=data["domain"],
        hints_only=data.get("hints_only", False),
        not_before=data["not_before"],
        not_after=(
            float("inf") if data["not_after"] is None else data["not_after"]
        ),
    )


@dataclass(frozen=True)
class ScenarioSpec:
    """Everything a continuous-operation run depends on, declaratively."""

    # -- corpus ----------------------------------------------------------
    corpus: str = "news"
    pages: int = 12
    #: Override the corpus builder's pinned seed (None keeps it).
    corpus_seed: Optional[int] = None
    # -- horizon ---------------------------------------------------------
    horizon_hours: float = 48.0
    start_hour: float = DEFAULT_EVAL_HOUR
    # -- workload (the stream A/B lanes must share) ----------------------
    rate_per_hour: float = 1500.0
    zipf_exponent: float = 1.1
    phone_fraction: float = 0.85
    user_pool: int = 32
    workload_seed: int = 0
    # -- network class (declarative; grids vary it) ----------------------
    network_profile: str = "lte"
    # -- store policy ----------------------------------------------------
    shards: int = 8
    vnodes: int = 64
    shard_memory_bytes: int = 256 * 1024
    replication: int = 2
    ttl_hours: float = 12.0
    freshness_hours: float = 2.0
    frontend_cache_entries: int = 0
    frontend_cache_ttl_hours: float = 0.05
    # -- offline-resolution scheduler ------------------------------------
    batch_period_hours: float = 0.25
    crawl_budget_per_hour: float = 60.0
    prewarm: bool = True
    # -- client cache digests (repro.core.cache_digest) ------------------
    #: Bits per digest entry for the warm-client hint filter (0 = off).
    #: When on, each (user, page) repeat visit summarises its previous
    #: visit's served hints as a cache digest and served hints are
    #: filtered through it — the CASPer-style "don't push what I hold".
    digest_filter_bits: int = 0
    # -- shard fail/heal cycle -------------------------------------------
    #: Take one shard down every this many hours (0 = no cycle); the
    #: victim rotates round-robin through the fleet.
    shard_cycle_every_hours: float = 0.0
    shard_cycle_down_hours: float = 1.0
    #: Run-relative hour of the first outage.
    shard_cycle_start_hours: float = 6.0
    fault_seed: int = 0
    #: Extra hand-written fault rules appended after the cycle's.
    extra_fault_rules: Tuple[FaultRule, ...] = ()
    # -- aggregation cadence ---------------------------------------------
    #: Rollup-row window (simulated hours): the runner keeps one row per
    #: window, never per-lookup records.
    rollup_hours: float = 1.0

    def __post_init__(self) -> None:
        if self.corpus not in CORPUS_BUILDERS:
            raise ValueError(
                f"unknown corpus {self.corpus!r}; "
                f"choose from {sorted(CORPUS_BUILDERS)}"
            )
        if self.pages < 1:
            raise ValueError("a scenario needs at least one page")
        if self.horizon_hours <= 0:
            raise ValueError("horizon must be positive")
        if self.rate_per_hour <= 0:
            raise ValueError("arrival rate must be positive")
        if not 0.0 <= self.phone_fraction <= 1.0:
            raise ValueError("phone fraction must be within [0, 1]")
        if self.user_pool < 1:
            raise ValueError("user pool must be positive")
        if self.network_profile not in PROFILES:
            raise ValueError(
                f"unknown network profile {self.network_profile!r}; "
                f"choose from {sorted(PROFILES)}"
            )
        if self.shards < 1:
            raise ValueError("need at least one shard")
        if not 1 <= self.replication <= self.shards:
            raise ValueError(
                f"replication {self.replication} outside [1, {self.shards}]"
            )
        if self.ttl_hours <= 0 or self.freshness_hours <= 0:
            raise ValueError("TTL and freshness horizons must be positive")
        if self.batch_period_hours <= 0:
            raise ValueError("batch period must be positive")
        if self.crawl_budget_per_hour <= 0:
            raise ValueError("crawl budget must be positive")
        if self.digest_filter_bits and not (
            1 <= self.digest_filter_bits <= 32
        ):
            raise ValueError("digest_filter_bits must be 0 or in [1, 32]")
        if self.shard_cycle_every_hours < 0:
            raise ValueError("shard cycle period must be non-negative")
        if self.shard_cycle_every_hours > 0:
            if not 0 < self.shard_cycle_down_hours < (
                self.shard_cycle_every_hours
            ):
                raise ValueError(
                    "outage length must sit inside the cycle period"
                )
            if self.shard_cycle_start_hours < 0:
                raise ValueError("first outage must not predate the run")
        if self.rollup_hours <= 0:
            raise ValueError("rollup window must be positive")

    # -- composition -----------------------------------------------------

    def build_pages(self) -> List[PageBlueprint]:
        """Materialise the page fleet this spec names."""
        builder = CORPUS_BUILDERS[self.corpus]
        if self.corpus_seed is None:
            return builder(count=self.pages)
        return builder(count=self.pages, seed=self.corpus_seed)

    def network(self) -> NetworkProfile:
        """The last-mile class client-side evaluations should assume."""
        return profile(self.network_profile)

    def lookups_estimate(self) -> int:
        """Expected stream length (the Poisson mean over the horizon)."""
        return max(1, int(math.ceil(self.rate_per_hour * self.horizon_hours)))

    def cycle_rules(self) -> Tuple[FaultRule, ...]:
        """The shard fail/heal schedule as placement outage rules.

        Outage ``k`` hits shard ``k % shards`` at run-relative hour
        ``start + k * every`` for ``down`` hours; windows are expressed
        in absolute simulated hours, as the placement layer expects.
        """
        if self.shard_cycle_every_hours <= 0:
            return ()
        rules: List[FaultRule] = []
        k = 0
        while (
            self.shard_cycle_start_hours
            + k * self.shard_cycle_every_hours
            < self.horizon_hours
        ):
            down_at = (
                self.start_hour
                + self.shard_cycle_start_hours
                + k * self.shard_cycle_every_hours
            )
            rules.append(
                shard_outage_rule(
                    k % self.shards,
                    down_at_hours=down_at,
                    up_at_hours=down_at + self.shard_cycle_down_hours,
                )
            )
            k += 1
        return tuple(rules)

    def fault_plan(self) -> Optional[FaultPlan]:
        rules = self.cycle_rules() + self.extra_fault_rules
        if not rules:
            return None
        return FaultPlan(seed=self.fault_seed, rules=rules)

    def service_config(self) -> ServiceConfig:
        """The backend configuration this spec compiles down to.

        ``fingerprint`` stays off (the runner chains its own hex digest,
        which — unlike a live sha1 object — survives pickling) and the
        bridge stays off (per-lookup samples would break the constant-
        memory contract).
        """
        return ServiceConfig(
            pages=self.pages,
            lookups=self.lookups_estimate(),
            rate_per_hour=self.rate_per_hour,
            zipf_exponent=self.zipf_exponent,
            phone_fraction=self.phone_fraction,
            user_pool=self.user_pool,
            shards=self.shards,
            vnodes=self.vnodes,
            shard_memory_bytes=self.shard_memory_bytes,
            ttl_hours=self.ttl_hours,
            freshness_hours=self.freshness_hours,
            replication=self.replication,
            frontend_cache_entries=self.frontend_cache_entries,
            frontend_cache_ttl_hours=self.frontend_cache_ttl_hours,
            shard_fault_rules=self.cycle_rules() + self.extra_fault_rules,
            fault_seed=self.fault_seed,
            batch_period_hours=self.batch_period_hours,
            crawl_budget_per_hour=self.crawl_budget_per_hour,
            prewarm=self.prewarm,
            start_hour=self.start_hour,
            seed=self.workload_seed,
            fingerprint=False,
            bridge_sample_every=0,
        )

    # -- identity --------------------------------------------------------

    def fingerprint(self) -> str:
        """Stable content hash over every field of the spec.

        Length-prefixed like ``blueprint_fingerprint``; fault rules are
        expanded field by field so two rule tuples can never collide by
        concatenation.
        """
        digest = hashlib.sha256()

        def put(text: str) -> None:
            data = text.encode()
            digest.update(str(len(data)).encode())
            digest.update(b":")
            digest.update(data)

        for spec_field in fields(self):
            put(spec_field.name)
            value = getattr(self, spec_field.name)
            if spec_field.name == "extra_fault_rules":
                put(str(len(value)))
                for rule in value:
                    for rule_field in fields(rule):
                        put(rule_field.name)
                        put(repr(getattr(rule, rule_field.name)))
            else:
                put(repr(value))
        return digest.hexdigest()

    # -- JSON round trip -------------------------------------------------

    def as_dict(self) -> dict:
        out = {}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if spec_field.name == "extra_fault_rules":
                value = [fault_rule_to_dict(rule) for rule in value]
            out[spec_field.name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        kwargs = dict(data)
        kwargs["extra_fault_rules"] = tuple(
            fault_rule_from_dict(rule)
            for rule in kwargs.get("extra_fault_rules", ())
        )
        return cls(**kwargs)

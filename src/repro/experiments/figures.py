"""Per-figure regeneration functions (one per table/figure in the paper).

Each ``figN_*`` function runs the experiment behind that figure on a
(possibly downsized) corpus and returns a plain dict of series — the same
rows/curves the paper plots — which the benchmark harness prints next to
the paper's reported values.  Corpus sizes default small enough to run in
a benchmark session; pass larger counts for fuller CDFs.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.accuracy import predictable_share, score_strategy
from repro.analysis.device_overlap import iou_distributions
from repro.analysis.persistence import persistence_distributions
from repro.analysis.stats import median, quartiles
from repro.baselines.configs import run_config
from repro.browser.cache import BrowserCache
from repro.calibration import DEFAULT_EVAL_HOUR
from repro.core.resolver import ResolutionStrategy
from repro.experiments.harness import sweep_configs
from repro.pages.corpus import (
    accuracy_corpus,
    alexa_top100_corpus,
    alexa_top400_sample_corpus,
    news_sports_corpus,
)
from repro.pages.dynamics import LoadStamp
from repro.replay.recorder import record_snapshot


def _stamp() -> LoadStamp:
    return LoadStamp(when_hours=DEFAULT_EVAL_HOUR)


# ---------------------------------------------------------------------------
# Section 2: motivation
# ---------------------------------------------------------------------------

def fig1_plt_today(count: int = 20) -> Dict[str, List[float]]:
    """PLT CDFs on today's mobile web: top-100 vs News+Sports (HTTP/1.1).

    The paper's live-web loads closely match its HTTP/1.1 replay (Fig 3
    caption), so the replay stands in for the web here.
    """
    top100 = sweep_configs(alexa_top100_corpus(count), ["http1"])
    news = sweep_configs(news_sports_corpus(count), ["http1"])
    return {
        "top100_http1_plt": top100.series("http1"),
        "news_sports_http1_plt": news.series("http1"),
    }


def fig2_lower_bounds(count: int = 20) -> Dict[str, List[float]]:
    """Network-bottleneck, CPU-bottleneck, max(CPU, network), web loads."""
    run = sweep_configs(
        news_sports_corpus(count), ["network-bound", "cpu-bound", "http1"]
    )
    cpu = run.series("cpu-bound")
    net = run.series("network-bound")
    return {
        "network_bound": net,
        "cpu_bound": cpu,
        "max_cpu_network": [max(a, b) for a, b in zip(cpu, net)],
        "loads_from_web": run.series("http1"),
    }


def fig3_http2_estimate(count: int = 20) -> Dict[str, List[float]]:
    """HTTP/2 baseline vs push-all-static vs HTTP/1.1."""
    run = sweep_configs(
        news_sports_corpus(count), ["http2", "push-all-static", "http1"]
    )
    return {
        "http2_baseline": run.series("http2"),
        "push_all_static": run.series("push-all-static"),
        "http1": run.series("http1"),
        "loads_from_web": run.series("http1"),
    }


def fig4_critical_path(count: int = 20) -> Dict[str, List[float]]:
    """Fraction of the critical path waiting on the network, HTTP/2 and
    (Sec 6.1's 24%-reduction claim) Vroom."""
    run = sweep_configs(
        news_sports_corpus(count),
        ["http2", "vroom"],
        metric=lambda metrics: metrics.network_wait_fraction,
        metric_name="network_wait_fraction",
    )
    return {
        "http2_network_fraction": run.series("http2"),
        "vroom_network_fraction": run.series("vroom"),
    }


# ---------------------------------------------------------------------------
# Section 4: design measurements
# ---------------------------------------------------------------------------

def fig7_persistence(count: int = 30) -> Dict[str, List[float]]:
    """Fraction of resources persisting over 1 hour / 1 day / 1 week."""
    return persistence_distributions(alexa_top100_corpus(count), _stamp())


def fig9_device_iou(count: int = 30) -> Dict[str, List[float]]:
    """Stable-set IoU vs a Nexus 6 for a OnePlus 3 and a Nexus 10."""
    return iou_distributions(alexa_top100_corpus(count), _stamp())


def fig11_scheduling_example(page_index: int = 0) -> Dict[str, List[float]]:
    """Receipt-time change (vs HTTP/2) of the first 10 processable
    resources, for Push-All-Fetch-ASAP and Vroom (the eurosport example).
    """
    page = news_sports_corpus(4)[page_index]
    stamp = _stamp()
    snapshot = page.materialize(stamp)
    store = record_snapshot(snapshot)

    def receipt_times(config: str) -> List[float]:
        metrics = run_config(config, page, snapshot, store)
        processable = [
            timeline
            for timeline in metrics.referenced_timelines()
            if timeline.resource is not None
            and timeline.resource.processable
            and timeline.fetched_at is not None
        ]
        processable.sort(key=lambda timeline: timeline.fetched_at)
        return [timeline.fetched_at for timeline in processable[:10]]

    baseline = receipt_times("http2")
    asap = receipt_times("push-all-fetch-asap")
    vroom = receipt_times("vroom")
    size = min(len(baseline), len(asap), len(vroom))
    return {
        "push_all_fetch_asap_delta": [
            asap[i] - baseline[i] for i in range(size)
        ],
        "vroom_delta": [vroom[i] - baseline[i] for i in range(size)],
    }


# ---------------------------------------------------------------------------
# Section 6.1: client performance
# ---------------------------------------------------------------------------

def fig13_headline(count: int = 20) -> Dict[str, Dict[str, List[float]]]:
    """PLT / AFT / Speed Index CDFs: lower bound, Vroom, HTTP/2, HTTP/1.1."""
    configs = ["http1", "http2", "vroom", "cpu-bound", "network-bound"]
    collected: Dict[str, Dict[str, List[float]]] = {
        "plt": {}, "aft": {}, "speed_index": {},
    }

    def hook(page, config, metrics):
        collected["plt"].setdefault(config, []).append(metrics.plt)
        collected["aft"].setdefault(config, []).append(metrics.aft)
        collected["speed_index"].setdefault(config, []).append(
            metrics.speed_index
        )

    sweep_configs(news_sports_corpus(count), configs, per_page_hook=hook)
    for metric_map in collected.values():
        cpu = metric_map.pop("cpu-bound")
        net = metric_map.pop("network-bound")
        metric_map["lower_bound"] = [max(a, b) for a, b in zip(cpu, net)]
    return collected


def alexa400_and_partial_adoption(count: int = 20) -> Dict[str, List[float]]:
    """Sec 6.1 text: the lighter corpus, and first-party-only adoption."""
    light = sweep_configs(
        alexa_top400_sample_corpus(count), ["http2", "vroom"]
    )
    partial = sweep_configs(
        news_sports_corpus(count), ["vroom-first-party"]
    )
    return {
        "alexa400_http2": light.series("http2"),
        "alexa400_vroom": light.series("vroom"),
        "news_vroom_first_party_only": partial.series("vroom-first-party"),
    }


def fig14_polaris(count: int = 20) -> Dict[str, List[float]]:
    """Vroom vs Polaris PLT CDFs."""
    run = sweep_configs(news_sports_corpus(count), ["vroom", "polaris"])
    return {
        "vroom": run.series("vroom"),
        "polaris": run.series("polaris"),
    }


def fig15_aft_example(page_index: int = 2) -> Dict[str, float]:
    """One heavy page's above-the-fold time, Vroom vs HTTP/2 (Fox News)."""
    page = news_sports_corpus(6)[page_index]
    stamp = _stamp()
    snapshot = page.materialize(stamp)
    store = record_snapshot(snapshot)
    vroom = run_config("vroom", page, snapshot, store)
    http2 = run_config("http2", page, snapshot, store)
    return {
        "vroom_aft": vroom.aft,
        "http2_aft": http2.aft,
        "aft_gap": http2.aft - vroom.aft,
    }


def fig16_discovery_fetch(count: int = 20) -> Dict[str, List[float]]:
    """Relative improvement (vs HTTP/2) in time to discover / finish
    fetching all resources and high-priority resources."""
    out: Dict[str, List[float]] = {
        "discovery_all": [], "discovery_high": [],
        "fetch_all": [], "fetch_high": [],
    }
    stamp = _stamp()
    for page in news_sports_corpus(count):
        snapshot = page.materialize(stamp)
        store = record_snapshot(snapshot)
        base = run_config("http2", page, snapshot, store)
        vroom = run_config("vroom", page, snapshot, store)
        for key, func in (
            ("discovery_all", lambda m: m.discovery_complete_at(False)),
            ("discovery_high", lambda m: m.discovery_complete_at(True)),
            ("fetch_all", lambda m: m.fetch_complete_at(False)),
            ("fetch_high", lambda m: m.fetch_complete_at(True)),
        ):
            before, after = func(base), func(vroom)
            if before > 0:
                out[key].append((before - after) / before)
    return out


def fig17_prev_load(count: int = 20) -> Dict[str, tuple]:
    """Quartiles: lower bound, Vroom, deps-from-previous-load, HTTP/2."""
    run = sweep_configs(
        news_sports_corpus(count),
        ["http2", "vroom", "deps-prev-load", "cpu-bound", "network-bound"],
    )
    bound = [
        max(a, b)
        for a, b in zip(run.series("cpu-bound"), run.series("network-bound"))
    ]
    return {
        "lower_bound": quartiles(bound),
        "vroom": quartiles(run.series("vroom")),
        "deps_from_previous_load": quartiles(run.series("deps-prev-load")),
        "http2_baseline": quartiles(run.series("http2")),
    }


def fig18_push_only(count: int = 20) -> Dict[str, tuple]:
    """Quartiles: Vroom vs push-without-hints strawmen."""
    run = sweep_configs(
        news_sports_corpus(count),
        [
            "vroom",
            "push-high-pri-no-hints",
            "push-all-no-hints",
            "cpu-bound",
            "network-bound",
        ],
    )
    bound = [
        max(a, b)
        for a, b in zip(run.series("cpu-bound"), run.series("network-bound"))
    ]
    return {
        "lower_bound": quartiles(bound),
        "vroom": quartiles(run.series("vroom")),
        "push_high_priority_no_hints": quartiles(
            run.series("push-high-pri-no-hints")
        ),
        "push_all_no_hints": quartiles(run.series("push-all-no-hints")),
    }


def fig19_scheduling(count: int = 20) -> Dict[str, tuple]:
    """Quartiles: Vroom vs Push-All-Fetch-ASAP vs no-push-no-hints,
    plus the scheduling ablations DESIGN.md calls out."""
    run = sweep_configs(
        news_sports_corpus(count),
        [
            "vroom",
            "push-all-fetch-asap",
            "no-push-no-hints",
            "vroom-fair",
            "vroom-no-js-delay",
            "cpu-bound",
            "network-bound",
        ],
    )
    bound = [
        max(a, b)
        for a, b in zip(run.series("cpu-bound"), run.series("network-bound"))
    ]
    return {
        "lower_bound": quartiles(bound),
        "vroom": quartiles(run.series("vroom")),
        "push_all_fetch_asap": quartiles(run.series("push-all-fetch-asap")),
        "no_push_no_hints": quartiles(run.series("no-push-no-hints")),
        "ablation_vroom_fair_ordering": quartiles(run.series("vroom-fair")),
        "ablation_vroom_no_js_delay": quartiles(
            run.series("vroom-no-js-delay")
        ),
    }


def fig20_warm_cache(count: int = 16) -> Dict[str, Dict[str, tuple]]:
    """Warm-cache loads: back-to-back, one day later, one week later."""
    scenarios = {"b2b": 0.0, "1day": 24.0, "1week": 24.0 * 7}
    out: Dict[str, Dict[str, tuple]] = {}
    for label, gap_hours in scenarios.items():
        vroom_plts, http2_plts = [], []
        for page in news_sports_corpus(count):
            warm_stamp = LoadStamp(when_hours=DEFAULT_EVAL_HOUR - gap_hours)
            eval_stamp = LoadStamp(
                when_hours=DEFAULT_EVAL_HOUR, nonce=warm_stamp.nonce + 1
            )
            snapshot = page.materialize(eval_stamp)
            store = record_snapshot(snapshot)
            for config, sink in (("vroom", vroom_plts), ("http2", http2_plts)):
                cache = BrowserCache()
                cache.seed_from_snapshot(
                    page.materialize(warm_stamp).all_resources(),
                    when_hours=warm_stamp.when_hours,
                )
                metrics = run_config(
                    config, page, snapshot, store, cache=cache
                )
                sink.append(metrics.plt)
        out[label] = {
            "vroom": quartiles(vroom_plts),
            "http2": quartiles(http2_plts),
            "median_gain": (median(http2_plts) - median(vroom_plts),),
        }
    return out


# ---------------------------------------------------------------------------
# Section 6.2: accuracy of server-side dependency resolution
# ---------------------------------------------------------------------------

def fig21_accuracy(count: int = 40) -> Dict[str, List[float]]:
    """Predictable-subset share plus FP/FN per resolution strategy."""
    stamp = _stamp()
    pages = accuracy_corpus(count)
    out: Dict[str, List[float]] = {
        "predictable_count_share": [],
        "predictable_byte_share": [],
    }
    strategies = {
        "vroom": ResolutionStrategy.VROOM,
        "offline_only": ResolutionStrategy.OFFLINE_ONLY,
        "online_only": ResolutionStrategy.ONLINE_ONLY,
    }
    for name in strategies:
        out[f"{name}_fn"] = []
        out[f"{name}_fp"] = []
    for page in pages:
        count_share, byte_share = predictable_share(page, stamp)
        out["predictable_count_share"].append(count_share)
        out["predictable_byte_share"].append(byte_share)
        for name, strategy in strategies.items():
            result = score_strategy(page, stamp, strategy)
            out[f"{name}_fn"].append(result.fn_rate)
            out[f"{name}_fp"].append(result.fp_rate)
    return out


def flux_calibration(count: int = 20) -> Dict[str, List[float]]:
    """Sec 4.1 text: share of URLs changing across back-to-back loads."""
    stamp = _stamp()
    fluxes = []
    for page in alexa_top100_corpus(count):
        now = set(page.materialize(stamp).urls())
        b2b = set(page.materialize(stamp.back_to_back()).urls())
        fluxes.append(1.0 - len(now & b2b) / len(now))
    return {"back_to_back_flux": fluxes}

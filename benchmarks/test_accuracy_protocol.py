"""Sec 6.2's full accuracy protocol: four users, multiple hours.

The paper scores dependency resolution across loads from four users with
differently seeded cookies, hourly over a week.  This bench runs the
same protocol (downsampled in hours) and confirms Fig 21's orderings are
robust to user identity and to the time of day.
"""

from benchmarks.conftest import run_once
from repro.analysis.stats import median
from repro.experiments.accuracy_suite import (
    accuracy_over_time,
    multi_user_accuracy,
)
from repro.experiments.report import print_figure


def test_accuracy_multi_user(benchmark, accuracy_size):
    series = run_once(
        benchmark,
        multi_user_accuracy,
        count=max(10, accuracy_size // 2),
        hours=(0.0, 9.0, 30.0),
    )
    print_figure(
        "Sec 6.2 protocol: 4 users x 3 hours, FP/FN distributions",
        series,
        paper_values={
            "vroom_fn": 0.05,
            "offline_only_fn": 0.20,
            "online_only_fn": 0.00,
            "vroom_fp": 0.05,
            "offline_only_fp": 0.05,
            "online_only_fp": 0.20,
        },
    )
    assert median(series["vroom_fn"]) < median(series["offline_only_fn"])
    assert median(series["vroom_fn"]) < 0.10
    assert median(series["online_only_fp"]) > median(series["vroom_fp"])


def test_accuracy_over_time(benchmark):
    series = run_once(
        benchmark, accuracy_over_time, count=8, horizon_hours=48.0,
        step_hours=8.0,
    )
    print("== Vroom FN median by hour offset ==")
    for hour, fn in zip(series["hour"], series["vroom_fn_median"]):
        print(f"  t+{hour:5.1f}h  fn={fn:.3f}")
    # Accuracy holds across the content cycle — no rotation-boundary
    # spikes above 15%.
    assert max(series["vroom_fn_median"]) < 0.15

"""Simulator performance micro-benchmarks.

Unlike the figure benches (which run an experiment once and assert its
shape), these measure the simulator itself over multiple rounds: event
throughput of the DES core, and wall time of a single cold page load
under the baseline and under Vroom.  They guard against performance
regressions that would make the figure benches crawl.
"""

from repro.baselines.configs import run_config
from repro.calibration import DEFAULT_EVAL_HOUR
from repro.net.simulator import Simulator
from repro.pages.corpus import news_sports_corpus
from repro.pages.dynamics import LoadStamp
from repro.replay.recorder import record_snapshot


def test_perf_simulator_event_throughput(benchmark):
    def run_10k_events():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.001, tick)
        sim.run()
        return count[0]

    events = benchmark(run_10k_events)
    assert events == 10_000


def _page_fixture():
    page = news_sports_corpus(count=1)[0]
    snapshot = page.materialize(LoadStamp(when_hours=DEFAULT_EVAL_HOUR))
    store = record_snapshot(snapshot)
    return page, snapshot, store


def test_perf_http2_page_load(benchmark):
    page, snapshot, store = _page_fixture()
    metrics = benchmark(
        lambda: run_config("http2", page, snapshot, store)
    )
    assert metrics.plt > 0


def test_perf_vroom_page_load(benchmark):
    page, snapshot, store = _page_fixture()
    metrics = benchmark(
        lambda: run_config("vroom", page, snapshot, store)
    )
    assert metrics.plt > 0


def test_perf_corpus_generation(benchmark):
    pages = benchmark(lambda: news_sports_corpus(count=10, seed=909))
    assert len(pages) == 10

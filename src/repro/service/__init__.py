"""Simulated production hint-serving backend (``repro.service``).

The paper's server side is an operational loop: Vroom servers load each
page periodically, intersect recent loads into stable sets, and serve
dependency hints out of a store (Sec 4.1.2).  Everything below
``repro.service`` models that loop *per page*; this package models
*running it for a fleet of pages under traffic*:

* :mod:`repro.service.store` — a sharded dependency store
  (consistent-hash shards over page URL) holding per-(page,
  device-class) hint entries with TTL, a per-shard memory budget and
  deterministic LRU eviction.
* :mod:`repro.service.scheduler` — a batched offline-resolution job
  scheduler that prioritises by staleness × request popularity under a
  crawl budget (page loads per hour).
* :mod:`repro.service.workload` — a seeded workload generator
  (Zipf page popularity × Poisson arrivals).
* :mod:`repro.service.backend` — the :class:`HintService` simulation
  tying the three together on the DES clock, with per-shard and
  per-tenant counters, latency percentiles and a cold-start story
  (miss ⇒ serve no hints ⇒ enqueue resolution — Vroom's graceful
  fallback to vanilla HTTP/2).
* :mod:`repro.service.bridge` — the end-to-end accuracy bridge:
  sampled lookups materialise a real ``browser.engine`` load with the
  hints the store *actually* held at that instant, so the accuracy
  machinery quantifies the cost of staleness against oracle hints.

Every run is a pure function of its :class:`ServiceConfig` (seed
included): two runs produce bit-identical reports.
"""

from repro.service.backend import HintService, ServiceConfig, ServiceReport
from repro.service.bridge import BridgeSample, evaluate_samples
from repro.service.placement import (
    FleetLookup,
    FleetStore,
    FrontendCache,
    PlacementMap,
    shard_outage_rule,
)
from repro.service.scheduler import BatchScheduler, ResolutionJob
from repro.service.store import DependencyStore, LookupStatus, StoreEntry
from repro.service.workload import Workload, ZipfPopularity

__all__ = [
    "HintService",
    "ServiceConfig",
    "ServiceReport",
    "BridgeSample",
    "evaluate_samples",
    "BatchScheduler",
    "ResolutionJob",
    "DependencyStore",
    "FleetLookup",
    "FleetStore",
    "FrontendCache",
    "PlacementMap",
    "shard_outage_rule",
    "LookupStatus",
    "StoreEntry",
    "Workload",
    "ZipfPopularity",
]

"""Continuous-operation harness: long horizons, constant memory.

:class:`~repro.longrun.runner.LongRunner` streams a scenario's
Zipf×Poisson workload through the hint service over simulated days with
per-window rollup aggregation, a picklable checkpoint/resume cycle that
is bit-identical to running straight through, and paired A/B lanes
(:func:`~repro.longrun.ab.run_paired`) over the identical stream.
"""

from repro.longrun.ab import STREAM_FIELDS, run_paired
from repro.longrun.runner import (
    CHECKPOINT_VERSION,
    LongRunner,
    RollupAggregator,
    RunningStats,
    checkpoint_roundtrip,
    report_fingerprint,
    run_scenario,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "LongRunner",
    "RollupAggregator",
    "RunningStats",
    "STREAM_FIELDS",
    "checkpoint_roundtrip",
    "report_fingerprint",
    "run_paired",
    "run_scenario",
]

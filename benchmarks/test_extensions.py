"""Extension experiments beyond the paper's figures.

These probe what the paper flags but does not evaluate:

* incremental adoption (Sec 6.1 only tests first-party-only),
* the Vroom+Polaris hybrid (Sec 6.1's "promising direction"),
* alternate network regimes (Sec 4.3's caveat that the scheduler is
  tailored to CPU-bound LTE loads),
* page-type clustering economics for offline resolution (Sec 7).
"""

from benchmarks.conftest import run_once
from repro.analysis.stats import median, percentile
from repro.experiments import extensions
from repro.experiments.report import print_figure


def test_ext_adoption_sweep(benchmark):
    series = run_once(benchmark, extensions.adoption_sweep, count=10)
    print_figure("Extension: incremental adoption sweep (median PLT)", series)
    # More adoption never hurts much, and full adoption beats none.
    assert median(series["adopt_100"]) < median(series["adopt_000"])
    assert median(series["adopt_050"]) <= median(series["adopt_000"]) + 0.3


def test_ext_hybrid(benchmark):
    series = run_once(benchmark, extensions.hybrid_comparison, count=16)
    print_figure("Extension: Vroom + Polaris hybrid", series)
    assert median(series["hybrid"]) <= median(series["vroom"]) * 1.05
    assert median(series["hybrid"]) < median(series["polaris"])
    # The hybrid's value shows in the tail (unpredictable-heavy pages).
    assert percentile(series["hybrid"], 0.9) <= (
        percentile(series["vroom"], 0.9) * 1.05
    )


def test_ext_network_regimes(benchmark):
    result = run_once(benchmark, extensions.network_regimes, count=6)
    print("== Extension: Vroom gain by network regime ==")
    gains = {}
    for name, rows in result.items():
        gain = median(rows["http2"]) - median(rows["vroom"])
        gains[name] = gain
        print(
            f"{name:<11} http2={median(rows['http2']):7.2f}s "
            f"vroom={median(rows['vroom']):7.2f}s gain={gain:+6.2f}s"
        )
    # The design point (LTE) gains clearly.
    assert gains["lte"] > 0.5
    # Sec 4.3's caveat: when bandwidth is the bottleneck (2G), the staged
    # prefetching stops paying off.
    assert gains["2g"] < gains["lte"]


def test_ext_atf_first(benchmark):
    """Extension: order above-the-fold media first within x-unimportant.

    A pure hint-ordering change (no protocol or client change) that
    claws back part of the Speed Index cost of staged prefetching
    without touching PLT."""
    from repro.calibration import DEFAULT_EVAL_HOUR
    from repro.pages.corpus import news_sports_corpus
    from repro.pages.dynamics import LoadStamp
    from repro.replay.recorder import record_snapshot
    from repro.baselines.configs import run_config

    def sweep(count=10):
        stamp = LoadStamp(when_hours=DEFAULT_EVAL_HOUR)
        rows = {"vroom": [], "vroom-atf-first": []}
        for page in news_sports_corpus(count):
            snapshot = page.materialize(stamp)
            store = record_snapshot(snapshot)
            for config in rows:
                metrics = run_config(config, page, snapshot, store)
                rows[config].append((metrics.plt, metrics.speed_index))
        return rows

    rows = run_once(benchmark, sweep, count=10)
    for config, values in rows.items():
        print(
            f"{config:<16} plt={median([v[0] for v in values]):5.2f}s "
            f"si={median([v[1] for v in values]):6.0f}"
        )
    plain_si = median([v[1] for v in rows["vroom"]])
    atf_si = median([v[1] for v in rows["vroom-atf-first"]])
    assert atf_si <= plain_si * 1.02
    plain_plt = median([v[0] for v in rows["vroom"]])
    atf_plt = median([v[0] for v in rows["vroom-atf-first"]])
    assert abs(atf_plt - plain_plt) < plain_plt * 0.05


def test_ext_clustering(benchmark):
    result = run_once(benchmark, extensions.clustering_economics, count=30)
    print(
        "== Extension: page-type clustering (Sec 7) ==\n"
        f"pages={result['pages']:.0f} clusters={result['clusters']:.0f} "
        f"hourly-load reduction={result['hourly_load_reduction']:.0%} "
        f"median stable coverage={result['median_stable_coverage']:.0%}"
    )
    assert result["hourly_load_reduction"] > 0.2
    assert result["median_stable_coverage"] > 0.3

#!/usr/bin/env python3
"""Scenario: how much does Vroom help repeat visitors?

First visits fill the browser cache; later visits hit it with varying
staleness.  This reproduces the paper's warm-cache experiment (Fig 20) on
a small corpus and also shows the per-visit cache hit rates, answering a
deployment question the paper raises: do hints still matter once the
cache is warm?  (Yes — uncacheable ad chains and rotated content still
serialize without them.)

Run:  python examples/repeat_visitor_study.py
"""

import statistics

from repro import LoadStamp, news_sports_corpus, run_config
from repro.browser.cache import BrowserCache
from repro.replay.cache import materialize_cached

SCENARIOS = {
    "cold cache": None,
    "revisit immediately": 0.0,
    "revisit next day": 24.0,
    "revisit next week": 24.0 * 7,
}


def main() -> None:
    pages = news_sports_corpus(count=6)
    eval_hour = 1000.0

    print(f"{'scenario':<22} {'vroom':>8} {'http2':>8} {'gain':>7} {'hit rate':>9}")
    for label, gap_hours in SCENARIOS.items():
        vroom_plts, http2_plts, hit_rates = [], [], []
        for page in pages:
            stamp = LoadStamp(when_hours=eval_hour)
            # All four scenarios share one recorded snapshot per page via
            # the session-wide snapshot cache (only the browser cache
            # warmth differs between them).
            snapshot, store = materialize_cached(page, stamp)
            for config, sink in (
                ("vroom", vroom_plts),
                ("http2", http2_plts),
            ):
                cache = BrowserCache()
                if gap_hours is not None:
                    warm_stamp = LoadStamp(
                        when_hours=eval_hour - gap_hours, nonce=7
                    )
                    cache.seed_from_snapshot(
                        page.materialize(warm_stamp).all_resources(),
                        when_hours=warm_stamp.when_hours,
                    )
                metrics = run_config(
                    config, page, snapshot, store, cache=cache
                )
                sink.append(metrics.plt)
                if config == "http2":
                    hits = sum(
                        1
                        for t in metrics.referenced_timelines()
                        if t.from_cache
                    )
                    total = len(metrics.referenced_timelines())
                    hit_rates.append(hits / total)
        vroom = statistics.median(vroom_plts)
        http2 = statistics.median(http2_plts)
        print(
            f"{label:<22} {vroom:7.2f}s {http2:7.2f}s "
            f"{http2 - vroom:6.2f}s {statistics.median(hit_rates):8.1%}"
        )


if __name__ == "__main__":
    main()

"""Tests for critical-path composition analysis."""

import pytest

from repro.analysis.critical_path import critical_path_composition
from repro.baselines.configs import run_config


class TestComposition:
    def test_totals_consistent(self, page, snapshot, store):
        metrics = run_config("http2", page, snapshot, store)
        composition = critical_path_composition(metrics)
        assert composition.total == pytest.approx(
            composition.network_seconds + composition.cpu_seconds
        )
        assert composition.total == pytest.approx(
            sum(composition.by_resource_type.values())
        )

    def test_fraction_matches_metrics(self, page, snapshot, store):
        metrics = run_config("http2", page, snapshot, store)
        composition = critical_path_composition(metrics)
        assert composition.network_fraction == pytest.approx(
            metrics.network_wait_fraction
        )

    def test_party_attribution(self, page, snapshot, store):
        metrics = run_config("http2", page, snapshot, store)
        composition = critical_path_composition(
            metrics, first_party_domain=f"{page.name}.com"
        )
        assert set(composition.by_domain_party) <= {
            "first-party",
            "third-party",
        }
        assert sum(composition.by_domain_party.values()) == pytest.approx(
            composition.total
        )

    def test_processable_types_dominate_critical_path(
        self, page, snapshot, store
    ):
        """Chains of documents/scripts, not images, own the slow chain."""
        metrics = run_config("http2", page, snapshot, store)
        composition = critical_path_composition(metrics)
        processable = sum(
            composition.by_resource_type.get(kind, 0.0)
            for kind in ("html", "js", "css")
        )
        assert processable > composition.total * 0.5

    def test_describe_renders(self, page, snapshot, store):
        metrics = run_config("vroom", page, snapshot, store)
        text = critical_path_composition(metrics).describe()
        assert "critical path" in text
        assert "network" in text

"""Vroom's primary contribution: server-aided dependency resolution.

* :mod:`repro.core.hints` — the dependency-hint header model (Table 1).
* :mod:`repro.core.offline` — periodic offline page loads, stable-set
  intersection, device equivalence classes (Sec 4.1.2).
* :mod:`repro.core.online` — on-the-fly analysis of served HTML.
* :mod:`repro.core.resolver` — the combined offline + online resolver with
  the personalization rules of Sec 4.2.
* :mod:`repro.core.push_policy` — what a Vroom server pushes vs hints
  (Sec 4.3), plus the strawman policies evaluated in Figs 18/19.
* :mod:`repro.core.scheduler` — the client-side staged fetch scheduler
  (Secs 4.3, 5.2).
* :mod:`repro.core.server` — decorating replay servers into
  Vroom-compliant ones.
"""

from repro.core.hints import DependencyHint, HintBundle
from repro.core.offline import OfflineResolver, StableSet
from repro.core.online import analyze_html
from repro.core.resolver import ResolutionStrategy, VroomResolver
from repro.core.push_policy import PushPolicy
from repro.core.scheduler import VroomScheduler
from repro.core.server import make_vroom_decorator, vroom_servers

__all__ = [
    "DependencyHint",
    "HintBundle",
    "OfflineResolver",
    "StableSet",
    "analyze_html",
    "ResolutionStrategy",
    "VroomResolver",
    "PushPolicy",
    "VroomScheduler",
    "make_vroom_decorator",
    "vroom_servers",
]

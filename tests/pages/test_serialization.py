"""Tests for blueprint JSON serialization."""

import json

import pytest

from repro.pages.serialization import (
    blueprint_from_dict,
    blueprint_to_dict,
    dump_blueprint,
    dump_corpus,
    load_blueprint,
    load_corpus,
    spec_from_dict,
    spec_to_dict,
)
from repro.pages.corpus import news_sports_corpus


class TestRoundTrip:
    def test_blueprint_round_trips(self, page, stamp):
        restored = blueprint_from_dict(blueprint_to_dict(page))
        assert set(restored.specs) == set(page.specs)
        # Behavioural equality: identical snapshots.
        original = page.materialize(stamp)
        rebuilt = restored.materialize(stamp)
        assert original.urls() == rebuilt.urls()
        assert original.total_bytes() == rebuilt.total_bytes()

    def test_spec_round_trip_preserves_flags(self, page):
        for spec in list(page.specs.values())[:20]:
            restored = spec_from_dict(spec_to_dict(spec))
            assert restored == spec

    def test_file_round_trip(self, page, tmp_path):
        path = str(tmp_path / "page.json")
        dump_blueprint(page, path)
        restored = load_blueprint(path)
        assert restored.name == page.name
        assert len(restored.specs) == len(page.specs)

    def test_corpus_round_trip(self, tmp_path):
        pages = news_sports_corpus(count=3)
        path = str(tmp_path / "corpus.json")
        dump_corpus(pages, path)
        restored = load_corpus(path)
        assert [p.name for p in restored] == [p.name for p in pages]


class TestValidationOnLoad:
    def test_version_checked(self, page):
        data = blueprint_to_dict(page)
        data["format_version"] = 99
        with pytest.raises(ValueError, match="format version"):
            blueprint_from_dict(data)

    def test_unknown_fields_rejected(self, page):
        data = blueprint_to_dict(page)
        data["specs"][0]["evil_field"] = True
        with pytest.raises(ValueError, match="unknown spec fields"):
            blueprint_from_dict(data)

    def test_bad_type_rejected(self, page):
        data = blueprint_to_dict(page)
        data["specs"][0]["rtype"] = "quantum"
        with pytest.raises(ValueError, match="malformed"):
            blueprint_from_dict(data)

    def test_orphan_parent_rejected(self, page):
        data = blueprint_to_dict(page)
        data["specs"][5]["parent"] = "never_existed"
        with pytest.raises(ValueError, match="unresolvable parents"):
            blueprint_from_dict(data)

    def test_out_of_order_specs_handled(self, page):
        """Children listed before parents still load (topological pass)."""
        data = blueprint_to_dict(page)
        data["specs"].reverse()
        restored = blueprint_from_dict(data)
        assert set(restored.specs) == set(page.specs)

    def test_json_is_plain(self, page):
        text = json.dumps(blueprint_to_dict(page))
        assert isinstance(json.loads(text), dict)

"""Unit coverage for every helper in :mod:`repro.audit`."""

import pytest

from repro import audit


@pytest.fixture()
def armed():
    audit.enable()
    yield
    audit.disable()


def test_enable_disable_roundtrip():
    was = audit.enabled()
    try:
        audit.enable()
        assert audit.enabled() and audit.ENABLED
        audit.disable()
        assert not audit.enabled() and not audit.ENABLED
    finally:
        (audit.enable if was else audit.disable)()


def test_audit_error_is_an_assertion_error():
    error = audit.AuditError("some-invariant", "details here")
    assert isinstance(error, AssertionError)
    assert error.invariant == "some-invariant"
    assert "some-invariant" in str(error) and "details here" in str(error)


def test_require():
    audit.require(True, "ok")
    with pytest.raises(audit.AuditError) as info:
        audit.require(False, "broken", "the detail")
    assert info.value.invariant == "broken"


def test_clock_monotonic():
    audit.clock_monotonic(1.0, 1.0)
    audit.clock_monotonic(1.0, 2.5)
    with pytest.raises(audit.AuditError, match="sim-clock-monotonic"):
        audit.clock_monotonic(2.0, 1.5, context="event #7")


def test_fifo_discipline_accepts_single_head():
    audit.fifo_discipline(
        0, rated=[(2.0, 5)], head=(2.0, 5),
        active=[(2.0, 5), (2.0, 9), (1.0, 3)],
    )


def test_fifo_discipline_rejects_concurrent_bodies():
    with pytest.raises(audit.AuditError, match="fifo-discipline"):
        audit.fifo_discipline(
            1, rated=[(2.0, 5), (2.0, 9)], head=(2.0, 5),
            active=[(2.0, 5), (2.0, 9)],
        )


def test_fifo_discipline_rejects_wrong_head():
    # (weight 2, id 9) is served although (weight 2, id 5) heads the queue.
    with pytest.raises(audit.AuditError, match="fifo-discipline"):
        audit.fifo_discipline(
            1, rated=[(2.0, 9)], head=(2.0, 9),
            active=[(2.0, 5), (2.0, 9)],
        )


def test_fifo_order_tracks_per_origin_per_weight():
    last = {}
    audit.fifo_order(last, "cdn.example", 2.0, 4)
    audit.fifo_order(last, "cdn.example", 2.0, 7)
    audit.fifo_order(last, "cdn.example", 1.0, 5)  # other weight: own lane
    audit.fifo_order(last, "ads.example", 2.0, 1)  # other origin: own lane
    with pytest.raises(audit.AuditError, match="fifo-order"):
        audit.fifo_order(last, "cdn.example", 2.0, 6)


def test_stage_gate_rules():
    # Preload hints are need-now: allowed even before the root settles.
    audit.stage_gate(0, 0, "u", root_settled=False)
    # Open gate, root settled: fine.
    audit.stage_gate(2, 1, "u", root_settled=True)
    with pytest.raises(audit.AuditError, match="stage-gate"):
        audit.stage_gate(0, 1, "u", root_settled=True)
    with pytest.raises(audit.AuditError, match="root document settled"):
        audit.stage_gate(2, 1, "u", root_settled=False)


def test_stage_transition_only_advances():
    audit.stage_transition(0, 0)
    audit.stage_transition(0, 2)
    with pytest.raises(audit.AuditError, match="stage-transition"):
        audit.stage_transition(2, 1)


def test_fetch_bytes_accounted():
    audit.fetch_bytes_accounted("u", 1100.0, 100.0, 1000.0)
    audit.fetch_bytes_accounted("u", 1100.2, 100.0, 1000.0)  # in tolerance
    with pytest.raises(audit.AuditError, match="fetch-bytes"):
        audit.fetch_bytes_accounted("u", 900.0, 100.0, 1000.0)


def test_bytes_conserved():
    audit.bytes_conserved(5000.0, 5000.4, 5000.0, tolerance=1.0)
    with pytest.raises(audit.AuditError, match="byte-conservation"):
        audit.bytes_conserved(5000.0, 4000.0, 5000.0, tolerance=1.0)
    with pytest.raises(audit.AuditError, match="LoadMetrics"):
        audit.bytes_conserved(5000.0, 5000.0, 4500.0, tolerance=1.0)


def test_env_opt_in_matches_the_documented_contract(armed):
    # enable()/disable() drive the same switch the env var seeds.
    assert audit.ENABLED

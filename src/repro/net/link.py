"""Fluid-flow model of the client's cellular access link.

The downlink divides its bandwidth equally across *connections* that have
response bytes in flight (TCP fairness).  Within a connection, the share is
divided across streams according to the connection's scheduling mode:

* ``FAIR`` — equal split across all active streams (HTTP/2 default
  interleaving; also used for independent HTTP/1.1 connections, which each
  carry a single stream anyway).
* ``FIFO`` — streams transmit one at a time in arrival order.  This models
  the paper's Mahimahi modification where a server "returns the content for
  requested resources in the same order in which it receives requests".
* ``WEIGHTED`` — bandwidth proportional to per-stream weights (HTTP/2
  priorities).

Streams expose *offset watches* so the browser's preload scanner can react
the moment a particular byte of an HTML response arrives.

The link is also the simulation's hottest loop: while any connection is in
slow start it refreshes its piecewise-constant rates every ``min_rtt / 2``.
With ``fast_forward`` enabled (the default), consecutive refresh steps run
in a tight inline loop via :meth:`Simulator.advance_inline` instead of a
schedule/cancel/pop heap round-trip per step.  The inline path performs the
identical piecewise updates at the identical simulated times, and drops
back to the heap whenever any foreign event could observe the difference,
so results are bit-identical either way (see ``docs/ARCHITECTURE.md``).
"""

from __future__ import annotations

import bisect
import enum
import itertools
import math
import random
from typing import Callable, Dict, List, Optional, Tuple

from repro import audit
from repro.net.flow import waterfill, waterfill_small, waterfill_vectorized
from repro.net.simulator import (
    ArraySimulator,
    EventLike,
    Simulator,
    SimulatorLike,
)

_EPS_BYTES = 1e-6
_EPS_TIME = 1e-12
_INF = float("inf")


class StreamScheduling(enum.Enum):
    FAIR = "fair"
    FIFO = "fifo"
    WEIGHTED = "weighted"


class StreamHandle:
    """One response body in flight over the shared link."""

    __slots__ = (
        "id",
        "channel",
        "bytes_total",
        "bytes_done",
        "on_complete",
        "weight",
        "rate",
        "done",
        "aborted",
        "started_at",
        "completed_at",
        "_watches",
        "_watch_cursor",
    )

    _ids = itertools.count()

    def __init__(
        self,
        channel: "Channel",
        nbytes: float,
        on_complete: Callable[[], None],
        weight: float,
    ):
        self.id = next(StreamHandle._ids)
        self.channel = channel
        self.bytes_total = float(nbytes)
        self.bytes_done = 0.0
        self.on_complete = on_complete
        self.weight = max(1e-6, weight)
        self.rate = 0.0
        self.done = False
        self.aborted = False
        self.started_at = channel.link.sim.now
        self.completed_at: Optional[float] = None
        #: Sorted (offset, callback) watch points; entries before
        #: ``_watch_cursor`` have fired already (a cursor beats ``pop(0)``'s
        #: O(n) front-shift, and the list is dropped once fully consumed).
        self._watches: List[Tuple[float, Callable[[], None]]] = []
        self._watch_cursor = 0

    def watch_offset(self, offset: float, callback: Callable[[], None]) -> None:
        """Invoke ``callback`` once ``offset`` bytes of the body have arrived."""
        if self.done or self.bytes_done + _EPS_BYTES >= offset:
            self.channel.link.sim.call_soon(callback)
            return
        # A stored offset strictly exceeds bytes_done, hence every fired
        # offset, so insertion always lands at or after the cursor.  Equal
        # offsets keep registration order (insort is right-biased), exactly
        # as the previous append-then-stable-sort did.
        bisect.insort(
            self._watches, (offset, callback), key=lambda pair: pair[0]
        )
        self.channel.link.poke()

    def abort(self) -> None:
        """Tear the stream down without completing it (drop/timeout).

        Marks the stream done so the link stops allocating bandwidth to
        it, but never fires ``on_complete`` or the remaining watches —
        the exchange failed and the client handles the fallout.
        """
        if self.done:
            return
        self.done = True
        self.aborted = True
        self._watches = []
        self._watch_cursor = 0
        self.channel.link.bytes_retired += self.bytes_done
        self.channel.invalidate_active()
        self.channel.link.poke()

    def next_threshold(self) -> float:
        """Bytes remaining until the next interesting point (watch or end)."""
        target = self.bytes_total
        if self._watch_cursor < len(self._watches):
            target = min(target, self._watches[self._watch_cursor][0])
        return max(0.0, target - self.bytes_done)

    def fire_ready(self, sim: SimulatorLike) -> None:
        """Fire watches whose offsets have arrived; completion if finished."""
        watches = self._watches
        if watches:
            cursor = self._watch_cursor
            count = len(watches)
            arrived = self.bytes_done + _EPS_BYTES
            while cursor < count and watches[cursor][0] <= arrived:
                sim.call_soon(watches[cursor][1])
                cursor += 1
            if cursor >= count:
                self._watches = []
                self._watch_cursor = 0
            else:
                self._watch_cursor = cursor
        if not self.done and self.bytes_done + _EPS_BYTES >= self.bytes_total:
            self.bytes_done = self.bytes_total
            self.done = True
            self.completed_at = sim.now
            self.channel.link.bytes_retired += self.bytes_done
            self.channel.invalidate_active()
            sim.call_soon(self.on_complete)


#: Initial congestion window (10 segments of ~1460 B, RFC 6928).
INITIAL_CWND_BYTES = 14600.0

#: Upper bound on any connection's congestion window.
MAX_CWND_BYTES = 4.0e6


class Channel:
    """The link-facing side of one transport connection.

    Carries a TCP-like congestion window: the connection's byte rate is
    capped at ``cwnd / rtt``, and the window opens by one byte per byte
    delivered (slow-start doubling per RTT).  A connection that has already
    moved bytes is therefore *warm* — the mechanism behind HTTP/2's edge
    over six cold HTTP/1.1 connections and behind RTTs appearing on page
    load critical paths.
    """

    __slots__ = (
        "id",
        "link",
        "ordinal",
        "scheduling",
        "rtt",
        "cwnd",
        "streams",
        "_active_cache",
        "_last_busy_at",
        "_bytes_to_next_loss",
        "_loss_count",
        "_rng",
    )

    _ids = itertools.count()

    def __init__(
        self,
        link: "AccessLink",
        scheduling: StreamScheduling,
        rtt: float = 0.0,
    ):
        self.id = next(Channel._ids)
        self.link = link
        #: Per-link ordinal: stable across runs (unlike the global id),
        #: so identical simulations see identical loss sequences.
        self.ordinal = len(link.channels)
        self.scheduling = scheduling
        self.rtt = rtt
        self.cwnd = INITIAL_CWND_BYTES
        self.streams: List[StreamHandle] = []
        #: Memoised list of not-yet-done streams; None when stale.  Stream
        #: starts and completions invalidate it, so the per-poke rate loops
        #: stop re-filtering (and re-allocating) an unchanged set.
        self._active_cache: Optional[List[StreamHandle]] = None
        self._last_busy_at = link.sim.now
        #: Cached loss RNG, reseeded per draw on the (ordinal, loss_count)
        #: scheme so sequences match the historical fresh-instance-per-draw
        #: behaviour without the per-loss allocation.
        self._rng: Optional[random.Random] = None
        self._loss_count = 0
        #: Bytes until this connection's next simulated packet loss.
        self._bytes_to_next_loss = self._sample_loss_gap(seed_extra=0)

    def _sample_loss_gap(self, seed_extra: int) -> float:
        """Deterministic exponential gap between losses, in bytes."""
        if self.link.loss_rate <= 0:
            return float("inf")
        seed = (self.ordinal + 1) * 9973 + seed_extra
        rng = self._rng
        if rng is None:
            # repro: allow[PERF402] constructed once and cached on
            # self._rng; later calls only reseed it.
            rng = self._rng = random.Random(seed)
        else:
            rng.seed(seed)
        mean_gap = 1460.0 / self.link.loss_rate
        return -mean_gap * math.log(max(1e-12, rng.random()))

    def _register_delivery(self, delivered: float) -> None:
        """Loss events halve the window (TCP congestion avoidance)."""
        if self.link.loss_rate <= 0:
            return
        self._bytes_to_next_loss -= delivered
        while self._bytes_to_next_loss <= 0:
            self._loss_count += 1
            self.cwnd = max(INITIAL_CWND_BYTES, self.cwnd / 2.0)
            self._bytes_to_next_loss += self._sample_loss_gap(
                seed_extra=self._loss_count
            )

    def rate_cap(self) -> float:
        """Maximum byte rate this connection's window currently allows."""
        if self.rtt <= 0:
            return float("inf")
        return min(self.cwnd, MAX_CWND_BYTES) / self.rtt

    def grow_window(self, delivered_bytes: float) -> None:
        if self.rtt <= 0:
            return
        self.cwnd = min(MAX_CWND_BYTES, self.cwnd + delivered_bytes)

    def reset_window(self) -> None:
        """Collapse the window to its initial value (injected loss burst)."""
        self.cwnd = INITIAL_CWND_BYTES

    def start_stream(
        self,
        nbytes: float,
        on_complete: Callable[[], None],
        weight: float = 1.0,
    ) -> StreamHandle:
        if nbytes < 0:
            raise ValueError("stream size must be non-negative")
        # TCP slow-start-after-idle: a connection quiet for more than an
        # RTO collapses its window back to the initial value.  This is why
        # six sporadically-used HTTP/1.1 connections lose to one
        # continuously-busy HTTP/2 connection.
        if not self.active_streams():
            idle = self.link.sim.now - self._last_busy_at
            if idle > max(0.2, 2.0 * self.rtt):
                self.cwnd = INITIAL_CWND_BYTES
        stream = StreamHandle(self, nbytes, on_complete, weight)
        self.streams.append(stream)
        self.invalidate_active()
        if nbytes == 0:
            stream.fire_ready(self.link.sim)
            self.streams.remove(stream)
            self.invalidate_active()
        else:
            self.link.poke()
        return stream

    def invalidate_active(self) -> None:
        self._active_cache = None
        # Channel membership in the link's busy set may have changed too;
        # neither the batched executor's busy cache nor its assignment
        # memo (rates already written to an unchanged stream set) may
        # survive this.  The generation counter keys the membership-
        # scoped memos (FIFO heads, refresh span, weight totals).
        link = self.link
        link._busy_cache = None
        link._assign_valid = False
        link._member_gen += 1

    def active_streams(self) -> List[StreamHandle]:
        active = self._active_cache
        if active is None:
            active = self._active_cache = [
                stream for stream in self.streams if not stream.done
            ]
        return active

    def assign_rates(self, byte_rate: float) -> None:
        """Distribute this connection's byte rate across its streams."""
        active = self.active_streams()
        for stream in active:
            stream.rate = 0.0
        if not active:
            return
        if self.scheduling is StreamScheduling.FIFO:
            # One response at a time, in request order within a priority
            # class — but an urgent stream (higher weight) jumps ahead, as
            # nghttpx honours HTTP/2 priority frames even when the server
            # serialises its responses.
            head = min(active, key=lambda stream: (-stream.weight, stream.id))
            head.rate = byte_rate
            if audit.ENABLED:
                audit.fifo_discipline(
                    self.ordinal,
                    [
                        (stream.weight, stream.id)
                        for stream in active
                        if stream.rate > 0
                    ],
                    (head.weight, head.id),
                    [(stream.weight, stream.id) for stream in active],
                )
        elif self.scheduling is StreamScheduling.WEIGHTED:
            total = sum(stream.weight for stream in active)
            for stream in active:
                stream.rate = byte_rate * stream.weight / total
        else:
            each = byte_rate / len(active)
            for stream in active:
                stream.rate = each


class AccessLink:
    """The shared last-mile downlink."""

    def __init__(
        self,
        sim: SimulatorLike,
        downlink_bps: float,
        loss_rate: float = 0.0,
        fast_forward: bool = True,
        batched: bool = False,
        vectorized_flow: bool = False,
        lazy_ticks: bool = False,
    ):
        if downlink_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        self.sim = sim
        self.downlink_bps = downlink_bps
        #: Per-packet loss probability (halves a connection's window).
        self.loss_rate = loss_rate
        #: Coalesce consecutive refresh ticks into inline clock advances.
        #: Bit-identical either way; off is the reference event-per-tick
        #: path the equivalence suite compares against.
        self.fast_forward = fast_forward
        #: Batched timeline executor: run homogeneous refresh/delivery
        #: runs through :meth:`_run_batch` (the multi-stream
        #: generalisation of :meth:`_coalesce`), cache the busy-channel
        #: set, skip zero-dt sweeps, and use the closed-form water-filling
        #: fast path.  Bit-identical to the reference paths by the same
        #: contract as ``fast_forward``.
        self.batched = batched
        #: Route general water-filling recomputes through the numpy-backed
        #: solver (soft dependency; see :mod:`repro.net.flow`).
        self.vectorized_flow = vectorized_flow
        #: Lazy refresh-tick discipline (the event-driven browser mode):
        #: :meth:`_reschedule` records the desired absolute tick target
        #: and defers the heap push to the simulator's pre-advance hook,
        #: so the many same-timestamp reschedules a poke cascade produces
        #: collapse into at most one real heap event — and none at all
        #: when the net target equals the already-pending tick's time.
        #: Bit-identical by the usual contract: the materialised tick
        #: lands at exactly the time the last eager reschedule would have
        #: used.  Off keeps the eager cancel-and-reschedule reference.
        self.lazy_ticks = lazy_ticks
        self.channels: List[Channel] = []
        self._last_update = sim.now
        self._tick_event: Optional[EventLike] = None
        #: With the array-backed executor the refresh tick skips the
        #: per-event :class:`EventHandle`: the link keeps only the raw
        #: storage slot (-1 when no tick is pending).  The invariant that
        #: makes slot-cancel safe: the slot is recorded only by
        #: :meth:`_reschedule` and cleared either there (cancel) or at
        #: :meth:`_tick` entry (execution), so a recorded slot is always
        #: still pending in the heap.
        self._raw_sim = sim if isinstance(sim, ArraySimulator) else None
        self._tick_slot = -1
        #: Lazy discipline bookkeeping: absolute time of the live heap
        #: tick (None when none is pending) and the deferred target not
        #: yet materialised (None when clean).
        self._tick_at: Optional[float] = None
        self._tick_want: Optional[float] = None
        self._in_poke = False
        #: Memoised water-filling result: signature of (channel id, cap)
        #: pairs -> rates.  Valid until the busy set or any cap changes.
        self._rates_sig: Optional[tuple] = None
        self._rates: Dict[int, float] = {}
        #: Batched mode: memoised busy-channel list (in ``channels``
        #: order, which the allocator's budget walk observes bitwise).
        #: Invalidated by every stream start/completion/abort via
        #: :meth:`Channel.invalidate_active`; None when stale.
        self._busy_cache: Optional[List[Channel]] = None
        #: Batched mode: assignment memo.  While ``_assign_valid`` holds
        #: and the per-connection window caps equal ``_alloc_caps``, the
        #: streams already carry exactly the rates a fresh allocation
        #: would assign (every write since the last assignment wrote the
        #: same values), so the poke skips both the water-filling and the
        #: per-stream assignment and only re-derives the horizon.
        self._assign_valid = False
        self._alloc_caps: List[float] = []
        self._alloc_rates: List[float] = []
        self._alloc_limited = False
        #: Membership generation: bumped by every stream start /
        #: completion / abort.  Keys the membership-scoped memos below.
        self._member_gen = 0
        self._heads_gen = -1
        self._memo_heads: List[Optional[StreamHandle]] = []
        self._memo_wtotals: List[float] = []
        self._memo_refresh = 0.0
        #: Batched mode: force the next :meth:`_step` to run its full
        #: watch/completion scan even at zero dt (set when a batch run
        #: exits on a threshold crossing it has not fired yet).
        self._scan_forced = False
        #: Total body bytes delivered (for accounting tests).
        self.bytes_delivered = 0.0
        #: Bytes carried by streams that already finished (completed or
        #: aborted).  ``bytes_retired`` plus the in-flight streams'
        #: ``bytes_done`` must always track ``bytes_delivered``.
        self.bytes_retired = 0.0
        #: Seconds during which at least one stream was receiving bytes.
        self.busy_time = 0.0
        #: Deterministic perf counters: poke sweeps (direct calls plus one
        #: per refresh step, inline or heap), refresh steps taken inline,
        #: and full water-filling recomputations (signature misses).
        self.pokes = 0
        self.ff_steps = 0
        self.rate_recomputes = 0
        #: Batched-executor counters: homogeneous runs executed, total
        #: steps those runs absorbed, and closed-form water-filling hits.
        self.batch_runs = 0
        self.batch_steps = 0
        self.wf_fast_hits = 0
        #: Lazy-tick counter: pending refresh ticks kept in place because
        #: the cascade's net target equalled their time (heap push and
        #: cancel both elided).
        self.tick_keeps = 0

    def open_channel(
        self,
        scheduling: StreamScheduling = StreamScheduling.FAIR,
        rtt: float = 0.0,
    ) -> Channel:
        channel = Channel(self, scheduling, rtt=rtt)
        self.channels.append(channel)
        return channel

    # -- internals -----------------------------------------------------------

    def _advance(self) -> None:
        now = self.sim.now
        dt = now - self._last_update
        if dt > _EPS_TIME:
            # Hot loop: skip idle channels outright (growing a window by
            # zero bytes and registering a zero-byte delivery are no-ops)
            # and accumulate the link total in a local.  The float
            # operations and their order are identical to the naive loop.
            delivered_total = self.bytes_delivered
            lossy = self.loss_rate > 0
            busy = False
            for channel in self.channels:
                active = channel.active_streams()
                if not active:
                    continue
                busy = True
                channel_delivered = 0.0
                for stream in active:
                    delta = stream.rate * dt
                    stream.bytes_done = min(
                        stream.bytes_total, stream.bytes_done + delta
                    )
                    channel_delivered += delta
                    delivered_total += delta
                channel.grow_window(channel_delivered)
                if lossy:
                    channel._register_delivery(channel_delivered)
                if channel_delivered > 0:
                    channel._last_busy_at = now
            if busy:
                self.busy_time += dt
            self.bytes_delivered = delivered_total
        self._last_update = now

    def _busy_channels(self) -> List[Channel]:
        if not self.batched:
            return [
                channel
                for channel in self.channels
                if channel.active_streams()
            ]
        busy = self._busy_cache
        if busy is None:
            busy = self._busy_cache = [
                channel
                for channel in self.channels
                if channel.active_streams()
            ]
        elif audit.ENABLED:
            audit.busy_set_matches(
                [channel.id for channel in busy],
                [
                    channel.id
                    for channel in self.channels
                    if channel.active_streams()
                ],
            )
        return busy

    def _channel_rates(self, busy: List[Channel]) -> Dict[int, float]:
        """Water-filling: equal shares, with cwnd-capped surplus recycled.

        The full computation only reruns when the connection set or some
        connection's window cap has changed since the previous call; an
        unchanged signature reuses the memoised allocation, and the common
        single-connection case short-circuits entirely.
        """
        total_byte_rate = self.downlink_bps / 8.0
        if len(busy) == 1:
            channel = busy[0]
            return {channel.id: min(total_byte_rate, channel.rate_cap())}
        signature = tuple(
            (channel.id, channel.rate_cap()) for channel in busy
        )
        if signature == self._rates_sig:
            return self._rates
        self.rate_recomputes += 1
        rates: Dict[int, float]
        if self.vectorized_flow:
            # Same allocation via the numpy-backed solver (soft
            # dependency; bit-identical by construction, see flow.py).
            alloc = waterfill_vectorized(
                [cap for _, cap in signature], total_byte_rate
            )
            rates = {
                channel.id: rate for channel, rate in zip(busy, alloc)
            }
        else:
            rates = {}
            remaining = list(busy)
            budget = total_byte_rate
            for _ in range(len(busy) + 1):
                if not remaining:
                    break
                share = budget / len(remaining)
                # repro: allow[PERF401] water-filling rebuilds the capped
                # set each round by construction; rounds are bounded by
                # the (small) busy-channel count.
                capped = [
                    channel
                    for channel in remaining
                    if channel.rate_cap() < share - _EPS_BYTES
                ]
                if not capped:
                    for channel in remaining:
                        rates[channel.id] = share
                    break
                for channel in capped:
                    rates[channel.id] = channel.rate_cap()
                    budget -= channel.rate_cap()
                    remaining.remove(channel)
        self._rates_sig = signature
        self._rates = rates
        return rates

    def _assign_and_horizon(self) -> Optional[float]:
        """Assign per-stream rates; return seconds until they next change.

        Returns None when the link is idle or nothing bounds the current
        piecewise-constant segment (no refresh tick is needed).
        """
        if self.batched and not audit.ENABLED:
            # The batched executor's memoised variant; under audit the
            # reference body below runs instead so every poke is checked
            # (it still exercises the closed-form allocator, which the
            # audit cross-validates against the iterative solver).
            return self._assign_and_horizon_batched()
        busy = self._busy_channels()
        if not busy:
            return None
        if len(busy) == 1:
            # Fast path for the dominant case (one connection carrying
            # traffic, e.g. HTTP/2 push-all): same arithmetic as the
            # generic path below, minus the dict and method-call churn.
            channel = busy[0]
            cap = channel.rate_cap()
            rate = min(self.downlink_bps / 8.0, cap)
            channel.assign_rates(rate)
            cwnd_limited = cap <= rate + _EPS_BYTES
            horizon = None
            for stream in channel.active_streams():
                stream_rate = stream.rate
                if stream_rate <= 0:
                    continue
                target = stream.bytes_total
                cursor = stream._watch_cursor
                if cursor < len(stream._watches):
                    watch = stream._watches[cursor][0]
                    if watch < target:
                        target = watch
                remaining = target - stream.bytes_done
                eta = remaining / stream_rate if remaining > 0 else 0.0
                if horizon is None or eta < horizon:
                    horizon = eta
        elif self.batched and len(busy) <= 3:
            # Closed-form water-filling for the dominant 2–3-connection
            # signatures: same floats as the general solver (audited
            # below), minus the signature tuple, memo dict and per-call
            # method churn.  Assignment and horizon sweeps keep the
            # generic path's channel-then-stream order.
            caps = [channel.rate_cap() for channel in busy]
            total_byte_rate = self.downlink_bps / 8.0
            alloc = waterfill_small(caps, total_byte_rate)
            self.wf_fast_hits += 1
            if audit.ENABLED:
                audit.waterfill_equivalent(
                    caps,
                    total_byte_rate,
                    list(alloc or []),
                    waterfill(caps, total_byte_rate),
                )
            cwnd_limited = False
            for channel, rate, cap in zip(busy, alloc or [], caps):
                channel.assign_rates(rate)
                if cap <= rate + _EPS_BYTES:
                    cwnd_limited = True
            horizon = None
            for channel in busy:
                for stream in channel.active_streams():
                    if stream.rate <= 0:
                        continue
                    eta = stream.next_threshold() / stream.rate
                    if horizon is None or eta < horizon:
                        horizon = eta
        else:
            rates = self._channel_rates(busy)
            cwnd_limited = False
            for channel in busy:
                rate = rates.get(channel.id, 0.0)
                channel.assign_rates(rate)
                if channel.rate_cap() <= rate + _EPS_BYTES:
                    cwnd_limited = True
            horizon = None
            for channel in busy:
                for stream in channel.active_streams():
                    if stream.rate <= 0:
                        continue
                    eta = stream.next_threshold() / stream.rate
                    if horizon is None or eta < horizon:
                        horizon = eta
        if cwnd_limited:
            # Windows open continuously; refresh piecewise-constant rates
            # a few times per RTT while any connection is in slow start.
            min_rtt = min(
                (channel.rtt for channel in busy if channel.rtt > 0),
                default=0.0,
            )
            if min_rtt > 0:
                refresh = min_rtt / 2.0
                horizon = refresh if horizon is None else min(horizon, refresh)
        return horizon

    def _assign_and_horizon_batched(self) -> Optional[float]:
        """Memoised, loop-fused :meth:`_assign_and_horizon` equivalent.

        Bit-identical to the reference body by construction:

        * Window caps are compared against the previous assignment's; on
          a match the per-stream rates already hold exactly the values a
          fresh water-filling would assign, so allocation and assignment
          are skipped outright and only the horizon is re-derived.
        * FIFO heads, WEIGHTED weight totals and the slow-start refresh
          span depend only on busy-set membership, so they are memoised
          on the membership generation.
        * The FAIR horizon uses one division per connection instead of
          one per stream: all streams share the rate ``each``, and IEEE
          division by a positive constant is monotonic, so
          ``min_j(rem_j) / each`` equals ``min_j(rem_j / each)`` exactly
          (a non-positive minimum collapses to the same 0.0 the
          reference's ``max(0.0, ...)`` produces).
        """
        busy = self._busy_cache
        if busy is None:
            busy = self._busy_cache = [
                channel
                for channel in self.channels
                if channel.active_streams()
            ]
        if not busy:
            return None
        if self._heads_gen != self._member_gen:
            heads: List[Optional[StreamHandle]] = []
            wtotals: List[float] = []
            heads_append = heads.append
            wtotals_append = wtotals.append
            for channel in busy:
                if channel.scheduling is StreamScheduling.FIFO:
                    heads_append(
                        min(
                            channel.active_streams(),
                            key=lambda stream: (-stream.weight, stream.id),
                        )
                    )
                    wtotals_append(0.0)
                elif channel.scheduling is StreamScheduling.WEIGHTED:
                    heads_append(None)
                    wtotals_append(
                        sum(
                            stream.weight
                            for stream in channel.active_streams()
                        )
                    )
                else:
                    heads_append(None)
                    wtotals_append(0.0)
            self._memo_heads = heads
            self._memo_wtotals = wtotals
            min_rtt = min(
                (channel.rtt for channel in busy if channel.rtt > 0),
                default=0.0,
            )
            self._memo_refresh = min_rtt / 2.0 if min_rtt > 0 else 0.0
            self._heads_gen = self._member_gen
        total_byte_rate = self.downlink_bps / 8.0
        caps: List[float] = []
        for channel in busy:
            rtt = channel.rtt
            if rtt > 0:
                cwnd = channel.cwnd
                caps.append(
                    (cwnd if cwnd <= MAX_CWND_BYTES else MAX_CWND_BYTES)
                    / rtt
                )
            else:
                caps.append(_INF)
        if self._assign_valid and caps == self._alloc_caps:
            alloc = self._alloc_rates
            cwnd_limited = self._alloc_limited
            assign = False
        else:
            nch = len(busy)
            if nch == 1:
                cap = caps[0]
                alloc = [
                    total_byte_rate if total_byte_rate <= cap else cap
                ]
            else:
                small = waterfill_small(caps, total_byte_rate)
                if small is not None:
                    self.wf_fast_hits += 1
                    alloc = small
                else:
                    self.rate_recomputes += 1
                    if self.vectorized_flow:
                        alloc = waterfill_vectorized(caps, total_byte_rate)
                    else:
                        alloc = waterfill(caps, total_byte_rate)
            cwnd_limited = False
            for i in range(len(busy)):
                if caps[i] <= alloc[i] + _EPS_BYTES:
                    cwnd_limited = True
                    break
            self._alloc_caps = caps
            self._alloc_rates = alloc
            self._alloc_limited = cwnd_limited
            self._assign_valid = True
            assign = True
        horizon: Optional[float] = None
        heads = self._memo_heads
        wtotals = self._memo_wtotals
        for i, channel in enumerate(busy):
            rate = alloc[i]
            active = channel.active_streams()
            head = heads[i]
            if head is not None:
                # FIFO: the head takes the whole connection rate, so it
                # alone bounds the horizon.
                if assign:
                    for stream in active:
                        stream.rate = 0.0
                    head.rate = rate
                if rate > 0:
                    target = head.bytes_total
                    watches = head._watches
                    if watches:
                        offset = watches[head._watch_cursor][0]
                        if offset < target:
                            target = offset
                    rem = target - head.bytes_done
                    eta = rem / rate if rem > 0 else 0.0
                    if horizon is None or eta < horizon:
                        horizon = eta
            elif channel.scheduling is StreamScheduling.WEIGHTED:
                wtotal = wtotals[i]
                for stream in active:
                    if assign:
                        srate = rate * stream.weight / wtotal
                        stream.rate = srate
                    else:
                        srate = stream.rate
                    if srate <= 0:
                        continue
                    target = stream.bytes_total
                    watches = stream._watches
                    if watches:
                        offset = watches[stream._watch_cursor][0]
                        if offset < target:
                            target = offset
                    rem = target - stream.bytes_done
                    eta = rem / srate if rem > 0 else 0.0
                    if horizon is None or eta < horizon:
                        horizon = eta
            else:
                each = rate / len(active)
                if each > 0:
                    min_rem: Optional[float] = None
                    if assign:
                        for stream in active:
                            stream.rate = each
                            target = stream.bytes_total
                            watches = stream._watches
                            if watches:
                                offset = watches[stream._watch_cursor][0]
                                if offset < target:
                                    target = offset
                            rem = target - stream.bytes_done
                            if min_rem is None or rem < min_rem:
                                min_rem = rem
                    else:
                        for stream in active:
                            target = stream.bytes_total
                            watches = stream._watches
                            if watches:
                                offset = watches[stream._watch_cursor][0]
                                if offset < target:
                                    target = offset
                            rem = target - stream.bytes_done
                            if min_rem is None or rem < min_rem:
                                min_rem = rem
                    if min_rem is not None:
                        eta = min_rem / each if min_rem > 0 else 0.0
                        if horizon is None or eta < horizon:
                            horizon = eta
                elif assign:
                    for stream in active:
                        stream.rate = each
        if cwnd_limited:
            refresh = self._memo_refresh
            if refresh > 0:
                if horizon is None or horizon > refresh:
                    horizon = refresh
        return horizon

    def _reschedule(self, horizon: Optional[float]) -> None:
        if self.lazy_ticks:
            self._reschedule_lazy(horizon)
            return
        raw = self._raw_sim
        if raw is not None:
            # Handle-free tick bookkeeping on the array executor: the
            # recorded slot is pending by the invariant documented at
            # ``_tick_slot``, so a plain slot-cancel replaces the handle.
            # Sequence numbers, heap entries and counters are identical
            # to the handle path.
            slot = self._tick_slot
            if slot >= 0:
                raw._cancel_slot(slot)
                self._tick_slot = -1
            if horizon is not None:
                self._tick_slot = raw.schedule_raw(
                    horizon if horizon > 0.0 else 0.0, self._tick
                )
            return
        if self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None
        if horizon is not None:
            self._tick_event = self.sim.schedule(max(0.0, horizon), self._tick)

    # repro: hotpath
    def _reschedule_lazy(self, horizon: Optional[float]) -> None:
        """Deferred-materialisation variant of :meth:`_reschedule`.

        Records the desired absolute target and arms the simulator's
        pre-advance hook instead of touching the heap, so a cascade of
        same-timestamp reschedules performs one heap push at most — at
        exactly the time the *last* eager reschedule would have used
        (``now + max(0, horizon)`` evaluated here, with ``now`` frozen
        until the flush).  Same-time wakeups (``horizon <= 0``) cannot be
        deferred — they must queue behind already-pending same-time
        events in seq order — so those fall through to the eager path.
        """
        now = self.sim.now
        if self._tick_at is not None and self._tick_at <= now:
            # The live tick is due at the current timestamp but a newer
            # scheduling decision supersedes it; the eager path would
            # have cancelled it here too.
            self._cancel_tick()
        if horizon is None:
            self._tick_want = None
            self._cancel_tick()
            self.sim.cancel_deferred()
            return
        target = now + (horizon if horizon > 0.0 else 0.0)
        if target <= now:
            self._tick_want = None
            self.sim.cancel_deferred()
            self._cancel_tick()
            self._schedule_tick_at(target)
            return
        self._tick_want = target
        self.sim.defer(self._materialize_tick)

    # repro: hotpath
    def _materialize_tick(self) -> None:
        """Pre-advance flush: push the deferred tick, or keep the live one.

        When the net target of the cascade equals the live pending
        tick's time bit-for-bit, the pending event already *is* the one
        the eager path would have ended up with (modulo its sequence
        number, which only same-time float collisions could observe —
        the equivalence suites arbitrate) and both the cancel and the
        push are elided entirely.
        """
        want = self._tick_want
        if want is None:
            return
        self._tick_want = None
        if want == self._tick_at:
            self.tick_keeps += 1
            return
        self._cancel_tick()
        self._schedule_tick_at(want)

    def _cancel_tick(self) -> None:
        raw = self._raw_sim
        if raw is not None:
            slot = self._tick_slot
            if slot >= 0:
                raw._cancel_slot(slot)
                self._tick_slot = -1
        elif self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None
        self._tick_at = None

    def _schedule_tick_at(self, target: float) -> None:
        raw = self._raw_sim
        if raw is not None:
            self._tick_slot = raw.schedule_raw_at(target, self._tick)
        else:
            self._tick_event = self.sim.schedule_at(target, self._tick)
        self._tick_at = target

    def _step(self) -> None:
        """Integrate progress to ``sim.now`` and fire due watches/completions."""
        if self.batched:
            self._step_batched()
            return
        self._scan_forced = False
        self._advance()
        sim = self.sim
        for channel in self.channels:
            retired = False
            # fire_ready only defers callbacks (call_soon), so iterating
            # the live list is safe; rebuild it only when a stream ended.
            for stream in channel.streams:
                stream.fire_ready(sim)
                if stream.done:
                    retired = True
            if retired:
                # repro: allow[PERF401] compaction list is built only on
                # the ticks where a stream actually retired.
                channel.streams = [
                    stream for stream in channel.streams if not stream.done
                ]

    def _step_batched(self) -> None:
        """Fused single-walk :meth:`_step` for the batched executor.

        Integration (:meth:`_advance`'s body, with window growth inlined)
        and the watch/completion scan run in one pass over the channels
        instead of two.  Interleaving them per channel is exact: a
        channel's integration touches only its own streams' ``rate`` /
        ``bytes_done`` and its own window and loss state, and a scan only
        marks that channel's streams done and defers callbacks through
        ``call_soon`` — nothing a later channel's integration reads.  The
        link-level delivered/busy accumulators are carried in locals and
        written back once, in the same channel order as the two-pass
        reference, so every float lands identically.

        The scan inlines :meth:`StreamHandle.fire_ready`'s entry guards
        (a due watch, else a due completion) so the ~90% of streams with
        nothing due skip the call entirely.  A zero-dt sweep — unless a
        batch run just crossed a threshold and forced the scan — is a
        proven no-op and returns immediately: no bytes moved since the
        previous scan, and ``watch_offset`` fires already-due offsets
        through ``call_soon`` directly.  Matching the reference
        integrator, the sub-epsilon time sliver is dropped, not
        accumulated; only the pruning of done streams is deferred, which
        the next real scan performs identically.
        """
        sim = self.sim
        now = sim.now
        dt = now - self._last_update
        self._last_update = now
        eps = _EPS_BYTES
        if dt <= _EPS_TIME:
            if not self._scan_forced:
                return
            self._scan_forced = False
            for channel in self.channels:
                streams = channel.streams
                if not streams:
                    continue
                retired = False
                for stream in streams:
                    watches = stream._watches
                    if (
                        watches
                        and watches[stream._watch_cursor][0]
                        <= stream.bytes_done + eps
                    ):
                        stream.fire_ready(sim)
                    elif (
                        not stream.done
                        and stream.bytes_done + eps >= stream.bytes_total
                    ):
                        stream.fire_ready(sim)
                    if stream.done:
                        retired = True
                if retired:
                    # repro: allow[PERF401] compaction list is built only
                    # on the ticks where a stream actually retired.
                    channel.streams = [
                        stream for stream in streams if not stream.done
                    ]
            return
        self._scan_forced = False
        delivered_total = self.bytes_delivered
        lossy = self.loss_rate > 0
        busy = False
        for channel in self.channels:
            streams = channel.streams
            if not streams:
                continue
            active = channel.active_streams()
            if active:
                busy = True
                channel_delivered = 0.0
                for stream in active:
                    delta = stream.rate * dt
                    grown = stream.bytes_done + delta
                    total = stream.bytes_total
                    stream.bytes_done = (
                        total if total <= grown else grown
                    )
                    channel_delivered += delta
                    delivered_total += delta
                if channel.rtt > 0:
                    grown_w = channel.cwnd + channel_delivered
                    channel.cwnd = (
                        MAX_CWND_BYTES
                        if MAX_CWND_BYTES <= grown_w
                        else grown_w
                    )
                if lossy:
                    channel._register_delivery(channel_delivered)
                if channel_delivered > 0:
                    channel._last_busy_at = now
            retired = False
            for stream in streams:
                watches = stream._watches
                if (
                    watches
                    and watches[stream._watch_cursor][0]
                    <= stream.bytes_done + eps
                ):
                    stream.fire_ready(sim)
                elif (
                    not stream.done
                    and stream.bytes_done + eps >= stream.bytes_total
                ):
                    stream.fire_ready(sim)
                if stream.done:
                    retired = True
            if retired:
                # repro: allow[PERF401] compaction list is built only on
                # the ticks where a stream actually retired.
                channel.streams = [
                    stream for stream in streams if not stream.done
                ]
        if busy:
            self.busy_time += dt
        self.bytes_delivered = delivered_total

    def poke(self) -> None:
        """Advance progress, fire due watches/completions, recompute rates."""
        if self._in_poke:
            return
        self._in_poke = True
        try:
            self.pokes += 1
            self._step()
            self._reschedule(self._assign_and_horizon())
        finally:
            self._in_poke = False

    # repro: hotpath
    def _tick(self) -> None:
        """Refresh-tick callback: one poke, then fast-forward while silent.

        Each loop iteration performs exactly the work one scheduled poke
        would have, at exactly the time that poke would have run; the jump
        to the next step happens via :meth:`Simulator.advance_inline`,
        which refuses whenever any pending heap event — a foreign model's
        callback, a watch just fired through ``call_soon``, or the run's
        ``until`` cap — could observe the coalescing.  A refused advance
        falls back to scheduling a regular tick, reproducing the
        event-per-tick trace bit for bit.
        """
        if self._in_poke:
            return
        self._tick_event = None
        self._tick_slot = -1
        self._tick_at = None
        self._tick_want = None
        self._in_poke = True
        try:
            while True:
                self.pokes += 1
                self._step()
                horizon = self._assign_and_horizon()
                if horizon is None:
                    # repro: allow[PERF403] at most one _reschedule call
                    # runs per poke — every site returns immediately.
                    self._reschedule(None)
                    return
                if not self.fast_forward:
                    self._reschedule(horizon)
                    return
                if not self.sim.advance_inline(
                    self.sim.now + max(0.0, horizon)
                ):
                    self._reschedule(horizon)
                    return
                self.ff_steps += 1
                if not audit.ENABLED:
                    # Batch the rest of the silent run in locals.  Under
                    # audit both batchers stand down so the generic loop
                    # above validates every step individually.
                    if self.batched:
                        self._run_batch()
                    else:
                        self._coalesce()
        finally:
            self._in_poke = False

    def _coalesce(self) -> None:
        """Batch consecutive silent refresh steps entirely in locals.

        Specialised for the dominant slow-start drain shape — one FAIR
        connection carrying one stream — this performs the same per-step
        float operations in the same order as the generic loop in
        :meth:`_tick`, but keeps all state in locals and checks the heap
        head once (nothing can schedule or cancel during the silent
        window, so it cannot change).  On any deviation from that regime
        it writes the state back and returns; the generic loop then
        redoes the boundary step from unchanged observable state.
        """
        busy = self._busy_channels()
        if len(busy) != 1:
            return
        channel = busy[0]
        if channel.scheduling is not StreamScheduling.FAIR or channel.rtt <= 0:
            return
        active = channel.active_streams()
        if len(active) != 1:
            return
        stream = active[0]
        rate_s = stream.rate
        if rate_s <= 0:
            return
        sim = self.sim
        next_heap = sim.peek_time()
        until = sim._until
        share = self.downlink_bps / 8.0
        rtt = channel.rtt
        refresh = rtt / 2.0
        lossy = self.loss_rate > 0
        total = stream.bytes_total
        cursor = stream._watch_cursor
        if cursor < len(stream._watches):
            watch = stream._watches[cursor][0]
            target_bytes = watch if watch < total else total
        else:
            target_bytes = total
        now = sim._now
        last_update = self._last_update
        done = stream.bytes_done
        cwnd = channel.cwnd
        btnl = channel._bytes_to_next_loss
        loss_count = channel._loss_count
        delivered = self.bytes_delivered
        busy_time = self.busy_time
        last_busy = None
        steps = 0
        while True:
            dt = now - last_update
            if dt > _EPS_TIME:
                # One stream: channel_delivered == delta, exactly.
                delta = rate_s * dt
                done = min(total, done + delta)
                delivered += delta
                cwnd = min(MAX_CWND_BYTES, cwnd + delta)
                if lossy:
                    btnl -= delta
                    while btnl <= 0:
                        loss_count += 1
                        cwnd = max(INITIAL_CWND_BYTES, cwnd / 2.0)
                        btnl += channel._sample_loss_gap(
                            seed_extra=loss_count
                        )
                busy_time += dt
                last_busy = now
            last_update = now
            if done + _EPS_BYTES >= target_bytes:
                break
            cap = min(cwnd, MAX_CWND_BYTES) / rtt
            rate = min(share, cap)
            # FAIR split over one stream: byte_rate / 1 == byte_rate.
            rate_s = rate
            remaining = target_bytes - done
            eta = remaining / rate_s if remaining > 0 else 0.0
            horizon = min(eta, refresh) if cap <= rate + _EPS_BYTES else eta
            target_t = now + (horizon if horizon > 0.0 else 0.0)
            if target_t <= now:
                break
            if until is not None and target_t > until:
                break
            if next_heap is not None and next_heap <= target_t:
                break
            now = target_t
            steps += 1
        stream.bytes_done = done
        stream.rate = rate_s
        channel.cwnd = cwnd
        channel._bytes_to_next_loss = btnl
        channel._loss_count = loss_count
        if last_busy is not None:
            channel._last_busy_at = last_busy
        self.bytes_delivered = delivered
        self.busy_time = busy_time
        self._last_update = last_update
        sim._now = now
        sim.inline_advances += steps
        self.pokes += steps
        self.ff_steps += steps

    # repro: hotpath
    def _run_batch(self) -> None:
        """Execute a homogeneous run of silent refresh steps in one call.

        The batched-executor generalisation of :meth:`_coalesce`: any
        number of busy connections, any scheduling mode, any stream
        count.  During a silent window nothing outside the link runs, so
        the busy set, each connection's scheduling head/weights, and
        every stream's next threshold are all *fixed* — they are hoisted
        into parallel local arrays once, and each step then performs the
        reference loop's float operations (delivery in channel-then-
        stream order, window growth, loss draws, allocation, horizon) on
        those locals in the identical order.  The run ends at the first
        threshold crossing or bounds refusal (``run(until=)`` cap, next
        heap event, non-positive horizon) — exactly where the generic
        loop's ``advance_inline`` would refuse — and writes all state
        back, flagging :meth:`_step` to run the boundary scan that fires
        the crossing.  Step counters mirror one-per-tick accounting, so
        the executed trace stays bit-identical.
        """
        busy = self._busy_channels()
        nch = len(busy)
        if nch == 0:
            return
        if nch == 1:
            channel = busy[0]
            active = channel.active_streams()
            # FAIR over one stream and FIFO's head-takes-all both give
            # the stream the whole connection rate (x / 1.0 is exact),
            # so the scalar loop covers either; WEIGHTED would compute
            # rate * w / w, which is not an identity in floats.
            if (
                len(active) == 1
                and channel.scheduling is not StreamScheduling.WEIGHTED
            ):
                self._run_batch_single(channel, active[0])
                return
        # -- hoist fixed per-channel / per-stream state into locals ------
        actives: List[List[StreamHandle]] = []
        rtts: List[float] = []
        cwnds: List[float] = []
        btnls: List[float] = []
        loss_counts: List[int] = []
        last_busys: List[Optional[float]] = []
        heads: List[int] = []
        wtotals: List[float] = []
        modes: List[int] = []  # 0 FAIR, 1 FIFO, 2 WEIGHTED
        dones: List[List[float]] = []
        totals: List[List[float]] = []
        targets: List[List[float]] = []
        rates: List[List[float]] = []
        modes_append = modes.append
        heads_append = heads.append
        wtotals_append = wtotals.append
        for channel in busy:
            active = channel.active_streams()
            if not active:
                return
            actives.append(active)
            rtts.append(channel.rtt)
            cwnds.append(channel.cwnd)
            btnls.append(channel._bytes_to_next_loss)
            loss_counts.append(channel._loss_count)
            last_busys.append(None)
            if channel.scheduling is StreamScheduling.FIFO:
                modes_append(1)
                head = min(
                    active, key=lambda stream: (-stream.weight, stream.id)
                )
                heads_append(active.index(head))
                wtotals_append(0.0)
            elif channel.scheduling is StreamScheduling.WEIGHTED:
                modes_append(2)
                heads_append(0)
                wtotals_append(sum(stream.weight for stream in active))
            else:
                modes_append(0)
                heads_append(0)
                wtotals_append(0.0)
            # repro: allow[PERF401] entry-time snapshot arrays: built once
            # per batch so the inner loop below can run allocation-free.
            dones.append([stream.bytes_done for stream in active])
            # repro: allow[PERF401] see above — once-per-batch snapshot.
            totals.append([stream.bytes_total for stream in active])
            # repro: allow[PERF401] see above — once-per-batch snapshot.
            rates.append([stream.rate for stream in active])
            ch_targets = []
            for stream in active:
                target = stream.bytes_total
                cursor = stream._watch_cursor
                if cursor < len(stream._watches):
                    watch = stream._watches[cursor][0]
                    if watch < target:
                        target = watch
                ch_targets.append(target)
            targets.append(ch_targets)
        sim = self.sim
        next_heap = sim.peek_time()
        until = sim._until
        total_rate = self.downlink_bps / 8.0
        lossy = self.loss_rate > 0
        min_rtt = min((rtt for rtt in rtts if rtt > 0), default=0.0)
        refresh = min_rtt / 2.0 if min_rtt > 0 else 0.0
        vectorized = self.vectorized_flow
        now = sim._now
        last_update = self._last_update
        delivered = self.bytes_delivered
        busy_time = self.busy_time
        steps = 0
        crossing = False
        wf_fast = 0
        range_nch = range(nch)
        while True:
            dt = now - last_update
            if dt > _EPS_TIME:
                for i in range_nch:
                    ch_rates = rates[i]
                    ch_dones = dones[i]
                    ch_totals = totals[i]
                    ch_delivered = 0.0
                    for j in range(len(ch_rates)):
                        delta = ch_rates[j] * dt
                        grown = ch_dones[j] + delta
                        total = ch_totals[j]
                        ch_dones[j] = total if total <= grown else grown
                        ch_delivered += delta
                        delivered += delta
                    if rtts[i] > 0:
                        cwnd = cwnds[i] + ch_delivered
                        cwnds[i] = (
                            MAX_CWND_BYTES
                            if MAX_CWND_BYTES <= cwnd
                            else cwnd
                        )
                    if lossy:
                        btnl = btnls[i] - ch_delivered
                        while btnl <= 0:
                            loss_counts[i] += 1
                            halved = cwnds[i] / 2.0
                            cwnds[i] = (
                                INITIAL_CWND_BYTES
                                if INITIAL_CWND_BYTES >= halved
                                else halved
                            )
                            btnl += busy[i]._sample_loss_gap(
                                seed_extra=loss_counts[i]
                            )
                        btnls[i] = btnl
                    if ch_delivered > 0:
                        last_busys[i] = now
                busy_time += dt
            last_update = now
            # -- threshold crossing ends the run (scan fires it) ---------
            for i in range_nch:
                ch_dones = dones[i]
                ch_targets = targets[i]
                for j in range(len(ch_dones)):
                    if ch_dones[j] + _EPS_BYTES >= ch_targets[j]:
                        crossing = True
                        break
                if crossing:
                    break
            if crossing:
                break
            # -- allocate: water-filling over current window caps --------
            # repro: allow[PERF401] caps are recomputed only when a window
            # boundary forces a fresh water-filling pass.
            caps = [
                min(cwnds[i], MAX_CWND_BYTES) / rtts[i]
                if rtts[i] > 0
                else float("inf")
                for i in range_nch
            ]
            if nch == 1:
                cap = caps[0]
                alloc = [total_rate if total_rate < cap else cap]
            elif nch <= 3:
                alloc = waterfill_small(caps, total_rate) or []
                wf_fast += 1
            elif vectorized:
                alloc = waterfill_vectorized(caps, total_rate)
            else:
                alloc = waterfill(caps, total_rate)
            cwnd_limited = False
            for i in range_nch:
                rate = alloc[i]
                if caps[i] <= rate + _EPS_BYTES:
                    cwnd_limited = True
                ch_rates = rates[i]
                mode = modes[i]
                if mode == 0:
                    each = rate / len(ch_rates)
                    for j in range(len(ch_rates)):
                        ch_rates[j] = each
                elif mode == 1:
                    for j in range(len(ch_rates)):
                        ch_rates[j] = 0.0
                    ch_rates[heads[i]] = rate
                else:
                    wtotal = wtotals[i]
                    weights = actives[i]
                    for j in range(len(ch_rates)):
                        ch_rates[j] = rate * weights[j].weight / wtotal
            # -- horizon: next threshold or slow-start refresh -----------
            horizon: Optional[float] = None
            for i in range_nch:
                ch_rates = rates[i]
                ch_dones = dones[i]
                ch_targets = targets[i]
                for j in range(len(ch_rates)):
                    rate = ch_rates[j]
                    if rate <= 0:
                        continue
                    remaining = ch_targets[j] - ch_dones[j]
                    eta = remaining / rate if remaining > 0 else 0.0
                    if horizon is None or eta < horizon:
                        horizon = eta
            if cwnd_limited and refresh > 0:
                horizon = (
                    refresh if horizon is None else min(horizon, refresh)
                )
            if horizon is None:
                break
            # -- the advance_inline bounds, on locals --------------------
            target_t = now + (horizon if horizon > 0.0 else 0.0)
            if target_t <= now:
                break
            if until is not None and target_t > until:
                break
            if next_heap is not None and next_heap <= target_t:
                break
            now = target_t
            steps += 1
        # -- write the hoisted state back --------------------------------
        for i in range_nch:
            channel = busy[i]
            ch_dones = dones[i]
            ch_rates = rates[i]
            active = actives[i]
            for j in range(len(active)):
                stream = active[j]
                stream.bytes_done = ch_dones[j]
                stream.rate = ch_rates[j]
            channel.cwnd = cwnds[i]
            if lossy:
                channel._bytes_to_next_loss = btnls[i]
                channel._loss_count = loss_counts[i]
            if last_busys[i] is not None:
                channel._last_busy_at = last_busys[i]
        self.bytes_delivered = delivered
        self.busy_time = busy_time
        self._last_update = last_update
        sim._now = now
        sim.inline_advances += steps
        self.pokes += steps
        self.ff_steps += steps
        self.wf_fast_hits += wf_fast
        if steps:
            self.batch_runs += 1
            self.batch_steps += steps
        if crossing:
            self._scan_forced = True

    def _run_batch_single(self, channel: Channel, stream: StreamHandle) -> None:
        """Scalar batch loop for the one-connection / one-stream run.

        The dominant drain shape: all hoisted state fits in scalar
        locals, so each step costs a handful of float operations instead
        of :meth:`_run_batch`'s list indexing.  Float operations and
        their order are those of :meth:`_coalesce`, generalised to
        RTT-less connections (infinite cap: the rate pins to the link
        share and no refresh clamp applies, exactly as the reference
        path computes); exit conditions and counter accounting are those
        of :meth:`_run_batch`, including the forced boundary scan after
        a threshold crossing.
        """
        rate_s = stream.rate
        if rate_s <= 0:
            return
        sim = self.sim
        next_heap = sim.peek_time()
        until = sim._until
        share = self.downlink_bps / 8.0
        rtt = channel.rtt
        grows = rtt > 0
        refresh = rtt / 2.0 if grows else 0.0
        lossy = self.loss_rate > 0
        total = stream.bytes_total
        watches = stream._watches
        if watches:
            offset = watches[stream._watch_cursor][0]
            target_bytes = offset if offset < total else total
        else:
            target_bytes = total
        now = sim._now
        last_update = self._last_update
        done = stream.bytes_done
        cwnd = channel.cwnd
        btnl = channel._bytes_to_next_loss
        loss_count = channel._loss_count
        delivered = self.bytes_delivered
        busy_time = self.busy_time
        last_busy = None
        steps = 0
        crossing = False
        while True:
            dt = now - last_update
            if dt > _EPS_TIME:
                # One stream: channel_delivered == delta, exactly.
                delta = rate_s * dt
                grown = done + delta
                done = total if total <= grown else grown
                delivered += delta
                if grows:
                    grown_w = cwnd + delta
                    cwnd = (
                        MAX_CWND_BYTES
                        if MAX_CWND_BYTES <= grown_w
                        else grown_w
                    )
                if lossy:
                    btnl -= delta
                    while btnl <= 0:
                        loss_count += 1
                        halved = cwnd / 2.0
                        cwnd = (
                            INITIAL_CWND_BYTES
                            if INITIAL_CWND_BYTES >= halved
                            else halved
                        )
                        btnl += channel._sample_loss_gap(
                            seed_extra=loss_count
                        )
                busy_time += dt
                last_busy = now
            last_update = now
            if done + _EPS_BYTES >= target_bytes:
                crossing = True
                break
            if grows:
                cap = min(cwnd, MAX_CWND_BYTES) / rtt
                rate = share if share <= cap else cap
                limited = cap <= rate + _EPS_BYTES
            else:
                rate = share
                limited = False
            rate_s = rate
            remaining = target_bytes - done
            eta = remaining / rate_s if remaining > 0 else 0.0
            horizon = (eta if eta <= refresh else refresh) if limited else eta
            target_t = now + (horizon if horizon > 0.0 else 0.0)
            if target_t <= now:
                break
            if until is not None and target_t > until:
                break
            if next_heap is not None and next_heap <= target_t:
                break
            now = target_t
            steps += 1
        stream.bytes_done = done
        stream.rate = rate_s
        channel.cwnd = cwnd
        if lossy:
            channel._bytes_to_next_loss = btnl
            channel._loss_count = loss_count
        if last_busy is not None:
            channel._last_busy_at = last_busy
        self.bytes_delivered = delivered
        self.busy_time = busy_time
        self._last_update = last_update
        sim._now = now
        sim.inline_advances += steps
        self.pokes += steps
        self.ff_steps += steps
        if steps:
            self.batch_runs += 1
            self.batch_steps += steps
        if crossing:
            self._scan_forced = True

    def active_stream_count(self) -> int:
        return sum(
            len(channel.active_streams()) for channel in self.channels
        )

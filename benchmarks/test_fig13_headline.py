"""Fig 13 (+ Sec 6.1 text): the headline result.

Paper medians on News+Sports: HTTP/1.1 10.5 s, HTTP/2 baseline 7.3 s,
Vroom 5.1 s, lower bound 5.0 s.  AFT improves by ~400 ms and Speed Index
by ~380 at the median versus HTTP/2.  On 100 pages from the Alexa top 400:
4.8 s -> 4.0 s.  First-party-only adoption: 5.6 s.
"""

from benchmarks.conftest import run_once
from repro.analysis.stats import median
from repro.experiments import figures
from repro.experiments.report import print_figure


def test_fig13_headline(benchmark, corpus_size):
    collected = run_once(benchmark, figures.fig13_headline, count=corpus_size)
    print_figure(
        "Fig 13a: PLT (News+Sports)",
        collected["plt"],
        paper_values={
            "http1": 10.5,
            "http2": 7.3,
            "vroom": 5.1,
            "lower_bound": 5.0,
        },
    )
    print_figure(
        "Fig 13b: above-the-fold time",
        collected["aft"],
        paper_values={"vroom": 7.0, "http2": 7.4},
    )
    print_figure(
        "Fig 13c: Speed Index",
        collected["speed_index"],
        paper_values={"vroom": 3500, "http2": 3880},
    )
    from repro.analysis.comparison import compare_paired

    plt = collected["plt"]
    paired = compare_paired("vroom", plt["vroom"], "http2", plt["http2"])
    print(paired.describe())
    assert paired.significant and paired.median_delta > 0
    assert median(plt["vroom"]) < median(plt["http2"]) < median(plt["http1"])
    assert median(plt["lower_bound"]) <= median(plt["vroom"])
    # Vroom recovers a substantial share of the headroom between the
    # HTTP/2 baseline and the lower bound.  (The paper recovers ~96% of
    # it; our simulated lower bound is more optimistic than the paper's
    # USB testbed, so the recovered share is smaller — see EXPERIMENTS.md.)
    headroom = median(plt["http2"]) - median(plt["lower_bound"])
    recovered = median(plt["http2"]) - median(plt["vroom"])
    assert recovered > 0.25 * headroom
    # AFT improves.
    assert median(collected["aft"]["vroom"]) < median(
        collected["aft"]["http2"]
    )


def test_alexa400_and_partial_adoption(benchmark, corpus_size):
    series = run_once(
        benchmark, figures.alexa400_and_partial_adoption, count=corpus_size
    )
    print_figure(
        "Sec 6.1 text: lighter corpus + first-party-only adoption",
        series,
        paper_values={
            "alexa400_http2": 4.8,
            "alexa400_vroom": 4.0,
            "news_vroom_first_party_only": 5.6,
        },
    )
    assert median(series["alexa400_vroom"]) < median(
        series["alexa400_http2"]
    )

"""Page-type clustering for scalable offline resolution (paper Sec 7).

A site serving thousands of pages cannot afford to load every one of
them hourly.  The paper observes that pages of the same *type* — all
article pages, all category landing pages — share their stable resources
(stylesheets, fonts, logo images, framework JS), and defers exploiting
that to future work.  This module implements it:

1. Cluster a site's pages by the similarity of their stable sets
   (greedy agglomeration over Jaccard similarity, like the device
   equivalence classes of Sec 4.1.2 but across pages).
2. For each cluster, keep hourly offline loads for only a few *probe*
   pages; other member pages reuse the cluster's shared stable core plus
   their own (cheaper, less frequent) page-specific delta.

``ClusteredOfflineResolver`` quantifies the trade: how many hourly loads
are saved, and how much stable-set coverage the reuse gives up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set

from repro.core.offline import OfflineResolver
from repro.pages.page import PageBlueprint


def stable_name_set(
    page: PageBlueprint, as_of_hours: float, device_class: str = "phone"
) -> Set[str]:
    """Spec names in a page's stable set (names compare across pages of
    the same template; URLs do not)."""
    stable = OfflineResolver(page).stable_set(as_of_hours, device_class)
    return {exemplar.name for exemplar in stable.exemplars.values()}


def _shared_names(a: Set[str], b: Set[str]) -> float:
    """Jaccard similarity over *kind signatures* of spec names.

    Pages generated from the same template share resource roles even when
    concrete names differ (e.g. ``land3_css0`` vs ``land7_css0``), so we
    compare names with their page prefix stripped.
    """
    def strip(names):
        return {name.split("_", 1)[-1] for name in names}

    sa, sb = strip(a), strip(b)
    union = sa | sb
    if not union:
        return 1.0
    return len(sa & sb) / len(union)


@dataclass
class PageCluster:
    """One group of same-type pages."""

    probe: PageBlueprint
    members: List[PageBlueprint] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.members)


def cluster_pages(
    pages: Sequence[PageBlueprint],
    as_of_hours: float,
    similarity_threshold: float = 0.5,
) -> List[PageCluster]:
    """Greedy clustering of pages by stable-set similarity.

    The first page of each cluster becomes its probe (the page that keeps
    getting loaded hourly on behalf of the others).
    """
    clusters: List[PageCluster] = []
    signatures: Dict[str, Set[str]] = {}
    for page in pages:
        signatures[page.name] = stable_name_set(page, as_of_hours)
        placed = False
        for cluster in clusters:
            similarity = _shared_names(
                signatures[page.name], signatures[cluster.probe.name]
            )
            if similarity >= similarity_threshold:
                cluster.members.append(page)
                placed = True
                break
        if not placed:
            clusters.append(PageCluster(probe=page, members=[page]))
    return clusters


@dataclass
class ClusterEconomics:
    """What clustering buys and costs."""

    pages: int
    clusters: int
    hourly_loads_without: int
    hourly_loads_with: int
    #: Median fraction of a member page's stable set covered by reusing
    #: the cluster probe's stable roles.
    median_coverage: float

    @property
    def load_reduction(self) -> float:
        if self.hourly_loads_without == 0:
            return 0.0
        return 1.0 - self.hourly_loads_with / self.hourly_loads_without


def evaluate_clustering(
    pages: Sequence[PageBlueprint],
    as_of_hours: float,
    similarity_threshold: float = 0.5,
) -> ClusterEconomics:
    """Cluster ``pages`` and report the offline-load economics."""
    clusters = cluster_pages(pages, as_of_hours, similarity_threshold)
    coverages: List[float] = []
    for cluster in clusters:
        probe_signature = stable_name_set(cluster.probe, as_of_hours)
        for member in cluster.members:
            if member is cluster.probe:
                continue
            member_signature = stable_name_set(member, as_of_hours)
            coverages.append(
                _shared_names(member_signature, probe_signature)
            )
    coverages.sort()
    median_coverage = (
        coverages[len(coverages) // 2] if coverages else 1.0
    )
    return ClusterEconomics(
        pages=len(pages),
        clusters=len(clusters),
        hourly_loads_without=len(pages),
        hourly_loads_with=len(clusters),
        median_coverage=median_coverage,
    )

"""Import-graph layering checker for the ``repro`` package.

The package forms a DAG; an edge ``A -> B`` below means "modules in A
may import from B".  The transitive closure is spelled out explicitly in
:data:`LAYER_DEPS` so a violation message can name the whole contract:

    audit, calibration        (layer 0: leaf infrastructure)
      ^
    net, pages                (substrate: network + page models)
      ^
    browser, replay           (browser model; record-and-replay)
      ^
    core                      (Vroom itself)
      ^
    baselines                 (strawmen, Polaris, named configs)
      ^
    analysis                  (metrics post-processing)
      ^
    service                   (simulated hint-serving backend)
      ^
    scenario                  (declarative run descriptions)
      ^
    longrun                   (continuous-operation streaming runner)
      ^
    experiments               (figure regeneration, sweeps)
      ^
    cli                       (argparse front end)

``devtools`` sits outside the simulation DAG: it reads source text and
may not import any simulation layer (nor be imported by one).  The
``repro`` package root (``__init__``/``__main__``) is the public facade
and may import everything.

Simulation code can therefore never depend on harness code: ``analysis``,
``experiments``, ``cli``, and ``devtools`` are invisible to every layer
at or below ``baselines``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Protocol, Tuple

from repro.devtools.findings import Finding


class ModuleLike(Protocol):
    """What ``import_edges`` needs from a shared parsed module."""

    path: str
    tree: ast.Module

_LAYER0: FrozenSet[str] = frozenset({"audit", "calibration"})
_SUBSTRATE = _LAYER0 | {"net", "pages"}
_MODELS = _SUBSTRATE | {"browser", "replay"}
_CORE = _MODELS | {"core"}
_SIM = _CORE | {"baselines"}
_ANALYSIS = _SIM | {"analysis"}
_SERVICE = _ANALYSIS | {"service"}
_SCENARIO = _SERVICE | {"scenario"}
_LONGRUN = _SCENARIO | {"longrun"}
_EXPERIMENTS = _LONGRUN | {"experiments"}
_ALL = _EXPERIMENTS | {"cli", "devtools"}

#: layer name -> layers it may import from (its own is always allowed).
LAYER_DEPS: Dict[str, FrozenSet[str]] = {
    "audit": frozenset(),
    "calibration": frozenset(),
    "net": frozenset(_LAYER0),
    "pages": frozenset(_LAYER0),
    "browser": frozenset(_SUBSTRATE),
    "replay": frozenset(_SUBSTRATE),
    "core": frozenset(_MODELS),
    "baselines": frozenset(_CORE),
    "analysis": frozenset(_SIM),
    "service": frozenset(_ANALYSIS),
    "scenario": frozenset(_SERVICE),
    "longrun": frozenset(_SCENARIO),
    "experiments": frozenset(_LONGRUN),
    "cli": frozenset(_EXPERIMENTS | {"devtools"}),
    "devtools": frozenset(),
    "root": frozenset(_ALL),
    "main": frozenset(_ALL | {"root"}),
}

#: Layers whose modules must stay pure (no I/O, no wall clock): everything
#: a simulation result can depend on.
PURE_LAYERS: FrozenSet[str] = frozenset(_SIM)


def layer_of(relative_path: Path) -> str:
    """Map a path inside the package root to its layer name."""
    parts = relative_path.parts
    if len(parts) > 1:
        return parts[0]
    stem = relative_path.stem
    if stem == "__init__":
        return "root"
    if stem == "__main__":
        return "main"
    return stem


def _repro_imports(
    tree: ast.Module, package: str
) -> Iterator[Tuple[int, str]]:
    """(line, imported dotted path) for every intra-package import."""
    prefix = package + "."
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == package or alias.name.startswith(prefix):
                    yield node.lineno, alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0 and node.module:
                if node.module == package:
                    # ``from repro import audit`` targets the submodule,
                    # not the package facade.
                    for alias in node.names:
                        yield node.lineno, f"{package}.{alias.name}"
                elif node.module.startswith(prefix):
                    yield node.lineno, node.module


def _target_layer(dotted: str, package: str) -> str:
    """Layer of an imported dotted path like ``repro.net.link``."""
    remainder = dotted[len(package):].lstrip(".")
    if not remainder:
        return "root"
    return layer_of(Path(remainder.replace(".", "/") + ".py"))


def import_edges(
    package_root: Path,
    package: str = "repro",
    modules: Optional[List["ModuleLike"]] = None,
) -> Dict[Tuple[str, str], List[Tuple[str, int]]]:
    """(from_layer, to_layer) -> [(path, line), ...] over the package.

    Pass ``modules`` (anything with ``.path`` and ``.tree``, e.g. the
    runner's shared :class:`~repro.devtools.callgraph.ModuleInfo` list)
    to reuse already-parsed trees instead of re-reading every file.
    """
    edges: Dict[Tuple[str, str], List[Tuple[str, int]]] = {}
    if modules is None:
        parsed = [
            (
                path.relative_to(package_root),
                ast.parse(path.read_text(), filename=str(path)),
            )
            for path in sorted(package_root.rglob("*.py"))
        ]
    else:
        parsed = [(Path(info.path), info.tree) for info in modules]
    for relative, tree in parsed:
        source_layer = layer_of(relative)
        for line, dotted in _repro_imports(tree, package):
            target = _target_layer(dotted, package)
            if target == source_layer:
                continue
            edges.setdefault((source_layer, target), []).append(
                (relative.as_posix(), line)
            )
    return edges


def check_layering(
    package_root: Path,
    package: str = "repro",
    modules: Optional[List["ModuleLike"]] = None,
) -> List[Finding]:
    """LAY301 for forbidden edges; LAY302 for package-level cycles."""
    findings: List[Finding] = []
    edges = import_edges(package_root, package, modules=modules)
    for (source_layer, target), sites in sorted(edges.items()):
        allowed = LAYER_DEPS.get(source_layer)
        if allowed is None:
            # An unknown top-level module: require an explicit layer
            # assignment rather than silently passing it.
            for path, line in sites:
                findings.append(
                    Finding(
                        code="LAY301",
                        path=path,
                        line=line,
                        message=(
                            f"module in unregistered layer "
                            f"{source_layer!r} — add it to LAYER_DEPS"
                        ),
                    )
                )
            continue
        if target in allowed or target == source_layer:
            continue
        for path, line in sites:
            findings.append(
                Finding(
                    code="LAY301",
                    path=path,
                    line=line,
                    message=(
                        f"layer {source_layer!r} may not import "
                        f"{package}.{target} (allowed: "
                        f"{', '.join(sorted(allowed)) or 'nothing'})"
                    ),
                )
            )
    findings.extend(_cycle_findings(edges))
    return findings


def _cycle_findings(
    edges: Dict[Tuple[str, str], List[Tuple[str, int]]]
) -> List[Finding]:
    """Detect package-level cycles in the *observed* import graph."""
    graph: Dict[str, set] = {}
    for source_layer, target in edges:
        if source_layer in ("root", "main"):
            continue  # the facade legitimately imports everything
        graph.setdefault(source_layer, set()).add(target)
    findings: List[Finding] = []
    visiting: List[str] = []
    done = set()

    def walk(node: str) -> None:
        if node in done:
            return
        if node in visiting:
            cycle = visiting[visiting.index(node):] + [node]
            source_layer, target = cycle[0], cycle[1]
            path, line = edges[(source_layer, target)][0]
            findings.append(
                Finding(
                    code="LAY302",
                    path=path,
                    line=line,
                    message=(
                        "package import cycle: " + " -> ".join(cycle)
                    ),
                )
            )
            return
        visiting.append(node)
        for successor in sorted(graph.get(node, ())):
            walk(successor)
        visiting.pop()
        done.add(node)

    for node in sorted(graph):
        walk(node)
    return findings

"""Service experiments: crawl budget vs staleness, end to end.

The knob a Vroom operator actually controls is the **crawl budget** —
how many server-side page loads per hour the offline-resolution fleet
may spend.  This module sweeps that budget against *identical* traffic
(the workload is a pure function of its seed, independent of the store
or scheduler configuration) and reports what the budget buys:

* the stale-hit rate, which must fall monotonically as the budget
  grows (the driver's regression check);
* the accuracy bridge's precision/recall/PLT numbers for at least two
  budget settings, so the staleness cost is quantified in real loads
  rather than inferred from counters.

``service_benchmark`` assembles the whole ``BENCH_service.json``
payload: one full-scale run plus the budget sweep.  Everything here is
bit-identical under a fixed seed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro import audit
from repro.pages.corpus import news_sports_corpus
from repro.pages.page import PageBlueprint
from repro.replay.cache import SnapshotCache
from repro.service.backend import HintService, ServiceConfig
from repro.service.bridge import evaluate_samples
from repro.service.placement import PlacementMap, shard_outage_rule

#: Crawl budgets (page loads per simulated hour) swept by default.
DEFAULT_BUDGETS: Sequence[float] = (6.0, 15.0, 60.0)

#: Budgets whose sampled lookups get the full end-to-end bridge.
DEFAULT_BRIDGE_BUDGETS = 2


def staleness_experiment(
    pages: Optional[List[PageBlueprint]] = None,
    *,
    count: int = 12,
    budgets: Sequence[float] = DEFAULT_BUDGETS,
    lookups: int = 20_000,
    rate_per_hour: float = 4_000.0,
    freshness_hours: float = 0.5,
    ttl_hours: float = 6.0,
    seed: int = 0,
    bridge_sample_every: int = 2_000,
    bridge_budgets: int = DEFAULT_BRIDGE_BUDGETS,
    bridge_max_samples: int = 6,
    bridge_with_loads: bool = True,
    cache: Optional[SnapshotCache] = None,
) -> dict:
    """Sweep the crawl budget against one fixed workload.

    Returns ``{"budgets": [row...], "monotone_stale_hit_rate": bool}``.
    Each row carries the budget, the run's hit/stale-hit/miss rates and
    scheduler counters, and — for the first ``bridge_budgets`` budgets —
    the accuracy bridge's aggregate.  A fresh :class:`HintService` is
    built per budget (services hold per-run counters); the page fleet
    and workload seed are shared, so the traffic is identical and the
    stale-hit-rate column isolates the budget's effect.

    Runs are **prewarmed** (every key resolved once at the start hour):
    from a cold start, a starved budget turns would-be stale hits into
    misses, so the stale-hit rate rises *and then* falls with budget.
    Warm, the relationship is clean — more budget, fresher entries,
    monotonically fewer stale hits.
    """
    if pages is None:
        pages = news_sports_corpus(count)
    active_cache = cache if cache is not None else SnapshotCache()
    rows = []
    stale_rates = []
    for index, budget in enumerate(budgets):
        config = ServiceConfig(
            pages=len(pages),
            lookups=lookups,
            rate_per_hour=rate_per_hour,
            freshness_hours=freshness_hours,
            ttl_hours=ttl_hours,
            crawl_budget_per_hour=budget,
            prewarm=True,
            seed=seed,
            bridge_sample_every=bridge_sample_every,
        )
        report = HintService(pages, config).run()
        row = {
            "crawl_budget_per_hour": budget,
            "hit_rate": report.totals["hit_rate"],
            "fresh_hit_rate": report.totals["fresh_hit_rate"],
            "stale_hit_rate": report.totals["stale_hit_rate"],
            "miss_rate": report.totals["miss_rate"],
            "evictions": report.totals["evictions"],
            "scheduler": report.scheduler,
        }
        if index < bridge_budgets and report.samples:
            bridge = evaluate_samples(
                pages,
                report.samples,
                max_samples=bridge_max_samples,
                with_loads=bridge_with_loads,
                cache=active_cache,
            )
            row["bridge"] = bridge["aggregate"]
        stale_rates.append(row["stale_hit_rate"])
        rows.append(row)
    monotone = all(
        later <= earlier + 1e-9
        for earlier, later in zip(stale_rates, stale_rates[1:])
    )
    return {"budgets": rows, "monotone_stale_hit_rate": monotone}


def _latency_slice(report_dict: dict) -> dict:
    """The SLO view of a run's merged latency histogram."""
    latency = report_dict["latency"]
    return {
        "p50_ms": latency["p50_ms"],
        "p99_ms": latency["p99_ms"],
        "p999_ms": latency["p999_ms"],
        "mean_ms": latency["mean_ms"],
        "overflow": latency["overflow"],
    }


def _totals_slice(report_dict: dict) -> dict:
    totals = report_dict["totals"]
    return {
        field: totals[field]
        for field in (
            "lookups",
            "hit_rate",
            "stale_hit_rate",
            "miss_rate",
            "unavailable",
            "failovers",
            "read_repairs",
            "frontend_hits",
            "evictions",
        )
    }


def _window_samples(report, config: ServiceConfig, begin: float, end: float):
    """Bridge samples that fell inside the run-relative window."""
    lo = config.start_hour + begin
    hi = config.start_hour + end
    return [s for s in report.samples if lo <= s.when_hours < hi]


def failover_experiment(
    pages: Optional[List[PageBlueprint]] = None,
    *,
    count: int = 12,
    lookups: int = 12_000,
    rate_per_hour: float = 4_000.0,
    shards: int = 8,
    replications: Sequence[int] = (1, 2),
    down_at_hours: float = 1.0,
    up_at_hours: float = 2.25,
    freshness_hours: float = 1.0,
    ttl_hours: float = 8.0,
    crawl_budget_per_hour: float = 40.0,
    seed: int = 0,
    bridge_sample_every: int = 0,
    bridge_max_samples: int = 3,
    bridge_with_loads: bool = False,
    cache: Optional[SnapshotCache] = None,
) -> dict:
    """Kill the hottest page's primary shard mid-run, at each replication.

    One shard — the structural primary of the Zipf-head page — goes down
    for ``[down_at_hours, up_at_hours)`` (run-relative), losing its
    resident set; it heals empty.  The *same* workload and fault plan
    run once per replication factor: without replicas the victim's
    keyspace goes cold for the whole outage, with ``replication >= 2``
    reads fail over to the surviving copies and the served-hint rate
    barely moves.  Each row reports overall and in-window serving,
    p50/p99/p999 lookup latency, and — when sampling is on — the
    accuracy bridge's precision/recall over in-window lookups (the
    degraded-mode hint quality).
    """
    if pages is None:
        pages = news_sports_corpus(count)
    active_cache = cache if cache is not None else SnapshotCache()
    probe = ServiceConfig(pages=len(pages), shards=shards)
    victim = PlacementMap(shards, probe.vnodes).shard_for(
        HintService.page_url(pages[0])
    )
    start = probe.start_hour
    rule = shard_outage_rule(
        victim,
        down_at_hours=start + down_at_hours,
        up_at_hours=start + up_at_hours,
    )
    rows = []
    for replication in replications:
        config = ServiceConfig(
            pages=len(pages),
            lookups=lookups,
            rate_per_hour=rate_per_hour,
            shards=shards,
            replication=replication,
            freshness_hours=freshness_hours,
            ttl_hours=ttl_hours,
            crawl_budget_per_hour=crawl_budget_per_hour,
            prewarm=True,
            seed=seed,
            bridge_sample_every=bridge_sample_every,
            shard_fault_rules=(rule,),
            track_window=(down_at_hours, up_at_hours),
        )
        report = HintService(pages, config).run()
        report_dict = report.as_dict()
        row = {
            "replication": replication,
            "totals": _totals_slice(report_dict),
            "latency": _latency_slice(report_dict),
            "window": report_dict["window"],
            "health_events": report_dict["placement"]["health_events"],
        }
        degraded = _window_samples(report, config, down_at_hours, up_at_hours)
        if degraded:
            row["bridge_window"] = evaluate_samples(
                pages,
                degraded,
                max_samples=bridge_max_samples,
                with_loads=bridge_with_loads,
                cache=active_cache,
            )["aggregate"]
        rows.append(row)
    return {
        "victim_shard": victim,
        "down_at_hours": down_at_hours,
        "up_at_hours": up_at_hours,
        "rows": rows,
    }


def flash_crowd_experiment(
    pages: Optional[List[PageBlueprint]] = None,
    *,
    count: int = 12,
    lookups: int = 12_000,
    rate_per_hour: float = 4_000.0,
    shards: int = 8,
    replication: int = 1,
    flash_at_hours: float = 1.0,
    flash_duration_hours: float = 0.25,
    flash_multiplier: float = 8.0,
    flash_focus: float = 0.8,
    frontend_variants: Sequence[int] = (0, 4),
    freshness_hours: float = 1.0,
    ttl_hours: float = 8.0,
    crawl_budget_per_hour: float = 40.0,
    seed: int = 0,
    bridge_sample_every: int = 0,
    bridge_max_samples: int = 3,
    bridge_with_loads: bool = False,
    cache: Optional[SnapshotCache] = None,
) -> dict:
    """Breaking-news spike on the Zipf-head page, with/without mitigation.

    Inside the flash window arrivals clump at ``flash_multiplier`` times
    the base rate and ``flash_focus`` of them hit one page — all of that
    lands on a single ring segment, which is exactly the hot-shard
    problem.  The same spike runs once per frontend-cache variant
    (0 = unmitigated): the tiny per-frontend cache absorbs the head
    page's reads, which shows up as ``frontend_hits`` and a flatter
    p999.
    """
    if pages is None:
        pages = news_sports_corpus(count)
    active_cache = cache if cache is not None else SnapshotCache()
    rows = []
    for capacity in frontend_variants:
        config = ServiceConfig(
            pages=len(pages),
            lookups=lookups,
            rate_per_hour=rate_per_hour,
            shards=shards,
            replication=replication,
            freshness_hours=freshness_hours,
            ttl_hours=ttl_hours,
            crawl_budget_per_hour=crawl_budget_per_hour,
            prewarm=True,
            seed=seed,
            bridge_sample_every=bridge_sample_every,
            frontend_cache_entries=capacity,
            flash_at_hours=flash_at_hours,
            flash_duration_hours=flash_duration_hours,
            flash_multiplier=flash_multiplier,
            flash_focus=flash_focus,
            track_window=(
                flash_at_hours,
                flash_at_hours + flash_duration_hours,
            ),
        )
        report = HintService(pages, config).run()
        report_dict = report.as_dict()
        row = {
            "frontend_cache_entries": capacity,
            "totals": _totals_slice(report_dict),
            "latency": _latency_slice(report_dict),
            "window": report_dict["window"],
            "frontend": report_dict.get("frontend"),
        }
        spike = _window_samples(
            report,
            config,
            flash_at_hours,
            flash_at_hours + flash_duration_hours,
        )
        if spike:
            row["bridge_window"] = evaluate_samples(
                pages,
                spike,
                max_samples=bridge_max_samples,
                with_loads=bridge_with_loads,
                cache=active_cache,
            )["aggregate"]
        rows.append(row)
    return {
        "flash_at_hours": flash_at_hours,
        "flash_duration_hours": flash_duration_hours,
        "flash_multiplier": flash_multiplier,
        "rows": rows,
    }


def reshard_experiment(
    pages: Optional[List[PageBlueprint]] = None,
    *,
    count: int = 12,
    lookups: int = 8_000,
    rate_per_hour: float = 4_000.0,
    shards: int = 4,
    replication: int = 2,
    reshard_at_hours: float = 0.6,
    reshard_points_per_tick: int = 8,
    freshness_hours: float = 1.0,
    ttl_hours: float = 8.0,
    crawl_budget_per_hour: float = 40.0,
    seed: int = 0,
    audited: bool = True,
) -> dict:
    """Add a shard under live traffic; prove nobody noticed.

    Two runs see the *identical* workload: a control at ``shards`` and a
    reshard run that begins adding shard ``shards`` at
    ``reshard_at_hours``, migrating a few ring segments per batch tick.
    Both runs chain a sha1 fingerprint over every served (status,
    payload) pair — migration moves entries without touching payloads or
    ages, so the streams must match bit-for-bit.  With ``audited`` the
    reshard run also verifies placement residency on every lookup
    (``REPRO_AUDIT`` machinery), so a wrong-shard routing mid-migration
    raises instead of skewing results.
    """
    if pages is None:
        pages = news_sports_corpus(count)

    def run(reshard: bool) -> dict:
        config = ServiceConfig(
            pages=len(pages),
            lookups=lookups,
            rate_per_hour=rate_per_hour,
            shards=shards,
            replication=replication,
            freshness_hours=freshness_hours,
            ttl_hours=ttl_hours,
            crawl_budget_per_hour=crawl_budget_per_hour,
            prewarm=True,
            seed=seed,
            fingerprint=True,
            reshard_add_at_hours=reshard_at_hours if reshard else None,
            reshard_points_per_tick=reshard_points_per_tick,
        )
        return HintService(pages, config).run().as_dict()

    control = run(reshard=False)
    was_enabled = audit.ENABLED
    if audited:
        audit.enable()
    try:
        resharded = run(reshard=True)
    finally:
        if audited and not was_enabled:
            audit.disable()
    migration = resharded["placement"]["migration"]
    total_keys = 2 * len(pages)  # (page, device-class) keys
    return {
        "control_fingerprint": control["fingerprint"],
        "reshard_fingerprint": resharded["fingerprint"],
        "payloads_match": (
            control["fingerprint"] == resharded["fingerprint"]
        ),
        "audited": audited,
        "migration": migration,
        "keys_moved_fraction": round(
            migration["keys_moved"] / total_keys, 6
        ),
        "shards_before": shards,
        "shards_after": len(resharded["placement"]["shards"]),
        "control_latency": _latency_slice(control),
        "reshard_latency": _latency_slice(resharded),
        "control_evictions": control["totals"]["evictions"],
        "reshard_evictions": resharded["totals"]["evictions"],
    }


def service_benchmark(
    pages: Optional[List[PageBlueprint]] = None,
    *,
    count: int = 50,
    lookups: int = 100_000,
    rate_per_hour: float = 20_000.0,
    shards: int = 8,
    shard_memory_bytes: int = 256 * 1024,
    ttl_hours: float = 12.0,
    freshness_hours: float = 2.0,
    batch_period_hours: float = 0.25,
    crawl_budget_per_hour: float = 60.0,
    zipf_exponent: float = 1.1,
    seed: int = 0,
    bridge_sample_every: int = 10_000,
    budgets: Sequence[float] = DEFAULT_BUDGETS,
    scenarios: bool = True,
    cache: Optional[SnapshotCache] = None,
) -> dict:
    """The full ``BENCH_service.json`` payload.

    One full-scale service run (the headline counters), the
    crawl-budget staleness sweep on a smaller fleet, and the fleet
    scenarios (shard kill at each replication, flash crowd, live
    reshard).  Pure function of its arguments — no wall clock anywhere.
    """
    if pages is None:
        pages = news_sports_corpus(count)
    active_cache = cache if cache is not None else SnapshotCache()
    config = ServiceConfig(
        pages=len(pages),
        lookups=lookups,
        rate_per_hour=rate_per_hour,
        zipf_exponent=zipf_exponent,
        shards=shards,
        shard_memory_bytes=shard_memory_bytes,
        ttl_hours=ttl_hours,
        freshness_hours=freshness_hours,
        batch_period_hours=batch_period_hours,
        crawl_budget_per_hour=crawl_budget_per_hour,
        seed=seed,
        bridge_sample_every=bridge_sample_every,
    )
    report = HintService(pages, config).run()
    payload = {"benchmark": "service", "report": report.as_dict()}
    if report.samples:
        payload["bridge"] = evaluate_samples(
            pages,
            report.samples,
            max_samples=6,
            cache=active_cache,
        )
    payload["staleness"] = staleness_experiment(
        budgets=budgets, seed=seed, cache=active_cache
    )
    if scenarios:
        payload["scenarios"] = {
            "kill_shard": failover_experiment(
                seed=seed,
                bridge_sample_every=500,
                cache=active_cache,
            ),
            "flash_crowd": flash_crowd_experiment(
                seed=seed,
                bridge_sample_every=500,
                cache=active_cache,
            ),
            "reshard": reshard_experiment(seed=seed, audited=True),
        }
    return payload


#: Smoke-check configuration: small, fast, and pinned.  CI runs the
#: ``repro service --smoke`` command and asserts these counters, so a
#: change to the store, scheduler, workload or hashing shows up as a
#: loud diff instead of silent drift.
SMOKE_CONFIG = ServiceConfig(
    pages=8,
    lookups=5_000,
    rate_per_hour=2_000.0,
    freshness_hours=0.5,
    ttl_hours=6.0,
    crawl_budget_per_hour=24.0,
    seed=1701,
    bridge_sample_every=0,
)

#: Golden counters for :data:`SMOKE_CONFIG` (asserted by ``--smoke``).
EXPECTED_SMOKE = {
    "lookups": 5000,
    "hits": 1186,
    "stale_hits": 2601,
    "misses": 1213,
    "evictions": 0,
    "hit_rate": 0.7574,
    "stale_hit_rate": 0.5202,
    # Fleet counters: the smoke config runs one replica, no faults, no
    # frontend cache — all of these must stay zero.
    "unavailable": 0,
    "failovers": 0,
    "read_repairs": 0,
    "frontend_hits": 0,
}


#: In-outage served-hint rate the replicated smoke run must clear — and
#: the unreplicated run must fall below (the Zipf head's primary is the
#: victim, so without replicas a visible slice of traffic goes cold).
KILL_SHARD_SERVED_FLOOR = 0.9


def smoke_run(cache: Optional[SnapshotCache] = None) -> dict:
    """Run the pinned smoke configuration; return its report dict."""
    del cache  # the smoke run records no engine loads
    pages = news_sports_corpus(SMOKE_CONFIG.pages)
    report = HintService(pages, SMOKE_CONFIG).run()
    return report.as_dict()


def smoke_scenarios(cache: Optional[SnapshotCache] = None) -> dict:
    """Small pinned fleet scenarios riding along with the smoke run."""
    active_cache = cache if cache is not None else SnapshotCache()
    return {
        "kill_shard": failover_experiment(
            count=8,
            lookups=3_000,
            rate_per_hour=2_000.0,
            down_at_hours=0.4,
            up_at_hours=1.0,
            seed=1701,
            bridge_sample_every=250,
            bridge_max_samples=2,
            bridge_with_loads=False,
            cache=active_cache,
        ),
        "flash_crowd": flash_crowd_experiment(
            count=8,
            lookups=3_000,
            rate_per_hour=2_000.0,
            flash_at_hours=0.5,
            flash_duration_hours=0.15,
            seed=1701,
            cache=active_cache,
        ),
        "reshard": reshard_experiment(
            count=8,
            lookups=2_500,
            rate_per_hour=2_000.0,
            seed=1701,
            audited=True,
        ),
    }


def _scenario_problems(scenarios: dict) -> List[str]:
    """Invariant violations in a :func:`smoke_scenarios` payload."""
    problems = []
    by_replication = {
        row["replication"]: row for row in scenarios["kill_shard"]["rows"]
    }
    degraded = by_replication[1]["window"]["served_rate"]
    replicated = by_replication[2]["window"]["served_rate"]
    if replicated < KILL_SHARD_SERVED_FLOOR:
        problems.append(
            "kill_shard: replication=2 in-outage served rate "
            f"{replicated} below floor {KILL_SHARD_SERVED_FLOOR}"
        )
    if degraded >= KILL_SHARD_SERVED_FLOOR:
        problems.append(
            "kill_shard: replication=1 in-outage served rate "
            f"{degraded} should visibly degrade below "
            f"{KILL_SHARD_SERVED_FLOOR}"
        )
    if by_replication[2]["totals"]["failovers"] < 1:
        problems.append("kill_shard: replication=2 recorded no failovers")

    by_capacity = {
        row["frontend_cache_entries"]: row
        for row in scenarios["flash_crowd"]["rows"]
    }
    cached = by_capacity[max(by_capacity)]
    uncached = by_capacity[0]
    if cached["totals"]["frontend_hits"] < 1:
        problems.append("flash_crowd: frontend cache absorbed no reads")
    if uncached["totals"]["frontend_hits"] != 0:
        problems.append(
            "flash_crowd: capacity-0 run recorded frontend hits"
        )
    if cached["latency"]["p999_ms"] > uncached["latency"]["p999_ms"]:
        problems.append(
            "flash_crowd: frontend cache raised p999 "
            f"({cached['latency']['p999_ms']} > "
            f"{uncached['latency']['p999_ms']})"
        )

    reshard = scenarios["reshard"]
    if not reshard["payloads_match"]:
        problems.append(
            "reshard: served payload stream diverged from control "
            f"({reshard['reshard_fingerprint']} != "
            f"{reshard['control_fingerprint']})"
        )
    if not reshard["audited"]:
        problems.append("reshard: run was not audited")
    if reshard["shards_after"] != reshard["shards_before"] + 1:
        problems.append(
            "reshard: shard did not finish joining "
            f"({reshard['shards_before']} -> {reshard['shards_after']})"
        )
    if reshard["migration"]["keys_moved"] < 1:
        problems.append("reshard: migration moved no keys")
    return problems


def smoke_check(
    report: dict, scenarios: Optional[dict] = None
) -> List[str]:
    """Mismatches between a smoke report and the golden counters."""
    problems = []
    totals = report["totals"]
    for field, expected in EXPECTED_SMOKE.items():
        actual = totals.get(field)
        if actual != expected:
            problems.append(f"{field}: expected {expected!r}, got {actual!r}")
    if scenarios is not None:
        problems.extend(_scenario_problems(scenarios))
    return problems

"""Fig 15: the Fox News above-the-fold example.

Paper: on m.foxnews.com, above-the-fold rendering completes at 9.26 s with
Vroom but only at 13.87 s with plain HTTP/2 — a 4.6 s gap on one heavy
page.  We reproduce the single-page AFT comparison on a heavy synthetic
News page.
"""

from benchmarks.conftest import run_once
from repro.experiments import figures


def test_fig15_aft_example(benchmark):
    result = run_once(benchmark, figures.fig15_aft_example)
    print(
        "== Fig 15: single heavy page above-the-fold time ==\n"
        f"vroom_aft={result['vroom_aft']:.2f}s  "
        f"http2_aft={result['http2_aft']:.2f}s  "
        f"gap={result['aft_gap']:.2f}s  | paper: 9.26s vs 13.87s (gap 4.6s)"
    )
    assert result["vroom_aft"] < result["http2_aft"]
    assert result["aft_gap"] > 0.5

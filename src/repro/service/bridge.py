"""End-to-end accuracy bridge: what did serving *that* entry cost?

The service simulation counts hits and staleness; this module asks the
question that matters: **how good were the hints the store actually
held at the instant it served them?**  For a sampled lookup it:

1. Materialises the *client's* load — a real snapshot at the lookup's
   simulated hour, device and user (``pages`` flux included).
2. Reconstructs the hint set the store served: the stored stable-set
   payload is rehydrated and **primed** into an
   :class:`~repro.core.offline.OfflineResolver`
   (:meth:`~repro.core.offline.OfflineResolver.prime`), so the
   resolver answers with exactly the record the store held — no
   recomputation, no accidental freshness.  Online analysis still runs
   against the live body being served, as a real Vroom front end
   would.
3. Scores that hint set against the load's *predictable partition*
   (:mod:`repro.analysis.accuracy`): precision and recall, next to the
   oracle resolver that computes its offline component fresh at the
   lookup instant.
4. Optionally runs the full :func:`repro.browser.engine.load_page`
   under both hint sets (a cold miss degrades to plain HTTP/2), so the
   staleness cost lands in PLT seconds, not just set overlap.  These
   loads honour ``REPRO_AUDIT=1`` like any other engine load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.accuracy import predictable_partition
from repro.browser.engine import BrowserConfig, load_page
from repro.core.offline import (
    CLASS_EMULATION_DEVICE,
    OfflineResolver,
    stable_set_from_dict,
)
from repro.core.resolver import ResolutionStrategy, VroomResolver
from repro.core.scheduler import VroomScheduler
from repro.core.server import hinted_extra_content, make_vroom_decorator
from repro.net.http import NetworkConfig
from repro.net.link import StreamScheduling
from repro.pages.dynamics import LoadStamp
from repro.pages.page import PageBlueprint
from repro.replay.cache import SnapshotCache, materialize_cached
from repro.replay.replayer import build_servers


@dataclass(frozen=True, slots=True)
class BridgeSample:
    """One lookup captured for end-to-end evaluation."""

    seq: int
    when_hours: float
    page_index: int
    page: str
    device_class: str
    user: str
    #: Store outcome: "hit" / "stale_hit" / "miss" / "expired".
    status: str
    #: When the served entry's offline resolution ran (None on a miss).
    computed_at_hours: Optional[float]
    #: The exact stored payload served (None on a miss).
    payload: Optional[dict]


def _served_resolver(
    page: PageBlueprint, sample: BridgeSample
) -> Optional[VroomResolver]:
    """A resolver that reproduces the hints the store served, exactly."""
    if sample.payload is None or sample.computed_at_hours is None:
        return None
    offline = OfflineResolver(page)
    offline.prime(stable_set_from_dict(sample.payload, page))
    return VroomResolver(page, offline=offline)


def _hint_urls(
    resolver: VroomResolver, snapshot, as_of_hours: float, device_class: str
) -> set:
    """Flat hint-URL set across the load's top-level documents."""
    urls: set = set()
    for doc in snapshot.documents():
        if doc.parent is not None:
            continue
        urls |= resolver.dependency_urls(
            doc, as_of_hours=as_of_hours, device_class=device_class
        )
    return urls


def _scored(returned: set, predictable: set) -> dict:
    relevant = len(returned & predictable)
    return {
        "returned": len(returned),
        "predictable": len(predictable),
        "precision": (
            round(relevant / len(returned), 6) if returned else 1.0
        ),
        "recall": (
            round(relevant / len(predictable), 6) if predictable else 1.0
        ),
    }


def _loaded_plt(
    page: PageBlueprint,
    snapshot,
    store,
    resolver: Optional[VroomResolver],
    as_of_hours: float,
    device_class: str,
    browser: BrowserConfig,
) -> float:
    """PLT of a real engine load served with ``resolver``'s hints.

    ``resolver=None`` models the cold-start fallback: plain HTTP/2
    servers, no hints, no push — exactly what a Vroom front end serves
    when the store has nothing.
    """
    if resolver is None:
        servers = build_servers(store)
        config = NetworkConfig()
        return load_page(snapshot, servers, config, browser).plt
    decorator = make_vroom_decorator(
        page,
        snapshot,
        as_of_hours=as_of_hours,
        device_class=device_class,
        resolver=resolver,
    )
    extra = hinted_extra_content(
        page,
        snapshot,
        resolver,
        as_of_hours=as_of_hours,
        device_class=device_class,
    )
    servers = build_servers(store, decorator=decorator, extra_content=extra)
    config = NetworkConfig(h2_scheduling=StreamScheduling.FIFO)
    return load_page(
        snapshot, servers, config, browser, policy=VroomScheduler()
    ).plt


def evaluate_sample(
    page: PageBlueprint,
    sample: BridgeSample,
    *,
    with_loads: bool = True,
    cache: Optional[SnapshotCache] = None,
) -> dict:
    """Score one sampled lookup end-to-end.

    Returns a dict with the served hint set's precision/recall, the
    oracle's (fresh offline resolution at the lookup instant), and —
    when ``with_loads`` — the PLT under served hints, oracle hints and
    the no-hint fallback.
    """
    device = CLASS_EMULATION_DEVICE[sample.device_class]
    stamp = LoadStamp(
        when_hours=sample.when_hours, device=device, user=sample.user
    )
    snapshot, store = materialize_cached(page, stamp, cache)
    predictable, _unpredictable, load = predictable_partition(page, stamp)

    served = _served_resolver(page, sample)
    oracle = VroomResolver(page, strategy=ResolutionStrategy.VROOM)

    served_urls: set = set()
    if served is not None:
        served_urls = _hint_urls(
            served, load, sample.computed_at_hours, sample.device_class
        )
    oracle_urls = _hint_urls(
        oracle, load, sample.when_hours, sample.device_class
    )

    result = {
        "seq": sample.seq,
        "page": sample.page,
        "status": sample.status,
        "when_hours": round(sample.when_hours, 6),
        "staleness_hours": (
            round(sample.when_hours - sample.computed_at_hours, 6)
            if sample.computed_at_hours is not None
            else None
        ),
        "served": _scored(served_urls, predictable),
        "oracle": _scored(oracle_urls, predictable),
    }
    if with_loads:
        browser = BrowserConfig(
            device=device, user=sample.user, when_hours=sample.when_hours
        )
        result["plt_served"] = round(
            _loaded_plt(
                page,
                snapshot,
                store,
                served,
                sample.computed_at_hours
                if sample.computed_at_hours is not None
                else sample.when_hours,
                sample.device_class,
                browser,
            ),
            6,
        )
        result["plt_oracle"] = round(
            _loaded_plt(
                page,
                snapshot,
                store,
                oracle,
                sample.when_hours,
                sample.device_class,
                browser,
            ),
            6,
        )
        result["plt_no_hints"] = round(
            _loaded_plt(
                page,
                snapshot,
                store,
                None,
                sample.when_hours,
                sample.device_class,
                browser,
            ),
            6,
        )
    return result


def evaluate_samples(
    pages: List[PageBlueprint],
    samples: List[BridgeSample],
    *,
    max_samples: Optional[int] = None,
    with_loads: bool = True,
    cache: Optional[SnapshotCache] = None,
) -> dict:
    """Score a run's sampled lookups; aggregate precision/recall.

    ``max_samples`` bounds the (expensive) per-sample work by taking an
    evenly spaced subset, deterministically.
    """
    chosen = list(samples)
    if max_samples is not None and len(chosen) > max_samples > 0:
        step = len(chosen) / max_samples
        chosen = [chosen[int(index * step)] for index in range(max_samples)]
    rows = [
        evaluate_sample(
            pages[sample.page_index],
            sample,
            with_loads=with_loads,
            cache=cache,
        )
        for sample in chosen
    ]
    served_rows = [row for row in rows if row["staleness_hours"] is not None]

    def _mean(values: List[float]) -> float:
        return round(sum(values) / len(values), 6) if values else 0.0

    aggregate = {
        "samples": len(rows),
        "served_samples": len(served_rows),
        "precision_mean": _mean(
            [row["served"]["precision"] for row in served_rows]
        ),
        "recall_mean": _mean([row["served"]["recall"] for row in served_rows]),
        "oracle_precision_mean": _mean(
            [row["oracle"]["precision"] for row in rows]
        ),
        "oracle_recall_mean": _mean([row["oracle"]["recall"] for row in rows]),
        "staleness_hours_mean": _mean(
            [row["staleness_hours"] for row in served_rows]
        ),
    }
    if with_loads and rows:
        aggregate["plt_served_mean"] = _mean(
            [row["plt_served"] for row in rows]
        )
        aggregate["plt_oracle_mean"] = _mean(
            [row["plt_oracle"] for row in rows]
        )
        aggregate["plt_no_hints_mean"] = _mean(
            [row["plt_no_hints"] for row in rows]
        )
    return {"aggregate": aggregate, "rows": rows}

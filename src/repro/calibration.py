"""Central calibration constants for the Vroom reproduction.

Every tunable that maps simulated behaviour onto the numbers reported in the
paper lives here, so the whole reproduction can be re-calibrated from one
place.  Times are in seconds unless a name says otherwise; sizes in bytes;
bandwidths in bits per second.

The targets (from the paper, News + Sports corpus unless noted):

* HTTP/1.1 replay median PLT ~ 10.5 s (Figs 1, 3, 13a)
* HTTP/2 baseline median PLT ~ 7.3 s (Fig 13a)
* Vroom median PLT ~ 5.1 s, lower bound ~ 5.0 s (Fig 13a)
* Alexa top-100 HTTP/1.1 median PLT ~ 5 s (Fig 1)
* ~30% of the HTTP/2 critical path spent waiting on the network (Fig 4)
* 22% of median page's URLs change across back-to-back loads (Sec 4.1)
* Median persistence: ~70% over one hour, ~50% over one week (Fig 7)
* Online HTML parsing overhead ~ 100 ms median (Sec 4.1.2)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


# ---------------------------------------------------------------------------
# Network: LTE access link + servers (replay setup of Fig 12)
# ---------------------------------------------------------------------------

#: Downlink bandwidth of the emulated LTE access link.  Verizon LTE with
#: excellent signal delivered roughly 10 Mbps in the paper's era.
LTE_DOWNLINK_BPS: float = 10.0e6

#: Uplink bandwidth (requests are small; rarely the bottleneck).
LTE_UPLINK_BPS: float = 4.0e6

#: One-way is half of this.  LTE last-mile round trip.
LTE_RTT: float = 0.070

#: Per-domain additional RTT (desktop <-> origin server during recording),
#: sampled uniformly from this range per domain.
SERVER_RTT_RANGE: tuple = (0.020, 0.120)

#: DNS lookup latency, paid once per domain.
DNS_LOOKUP_TIME: float = 0.050

#: Round trips consumed by the TLS handshake (TLS 1.2 era).
TLS_HANDSHAKE_RTTS: int = 2

#: Maximum parallel HTTP/1.1 connections a browser opens per domain.
HTTP1_MAX_CONNS_PER_DOMAIN: int = 6

#: Fixed server think time for static resources.
SERVER_THINK_TIME: float = 0.015

#: Extra server think time for (dynamically generated) HTML responses.
SERVER_HTML_THINK_TIME: float = 0.060

#: Extra latency a Vroom-compliant server spends parsing HTML on the fly
#: (the paper measures a ~100 ms median across the top-1000 landing pages).
VROOM_ONLINE_PARSE_OVERHEAD: float = 0.100

#: Approximate bytes of HTTP request + headers on the uplink.
REQUEST_BYTES: int = 600

#: Extra per-request latency under HTTP/1.1: uncompressed headers plus an
#: LTE uplink scheduling grant for each discrete request transmission.
#: HTTP/2 batches requests on one busy connection and compresses headers,
#: amortising this away.
HTTP1_REQUEST_OVERHEAD: float = 0.055

#: Approximate bytes of response headers (counted against the downlink).
RESPONSE_HEADER_BYTES: int = 450

#: Extra response-header bytes per hinted URL (Link / x-semi-important /
#: x-unimportant header lines are ~80 bytes per entry).
HINT_HEADER_BYTES_PER_URL: int = 80


# ---------------------------------------------------------------------------
# Client CPU cost model (Nexus 6 class device; single-threaded renderer)
# ---------------------------------------------------------------------------

#: Seconds of CPU per byte to parse HTML.
CPU_HTML_PARSE_PER_BYTE: float = 4.5e-6

#: Seconds of CPU per byte to evaluate JavaScript.
CPU_JS_EXEC_PER_BYTE: float = 5.6e-6

#: Seconds of CPU per byte to parse CSS.
CPU_CSS_PARSE_PER_BYTE: float = 2.8e-6

#: Seconds of CPU per byte to decode an image (off the blocking path).
CPU_IMAGE_DECODE_PER_BYTE: float = 0.25e-6

#: Fixed per-resource CPU overhead (task scheduling, style/layout nudges).
CPU_PER_RESOURCE_OVERHEAD: float = 0.004

#: Layout/paint work triggered at the end of the root document parse.
CPU_LAYOUT_TIME: float = 0.120

#: CPU speed multipliers per device, relative to the Nexus 6.
DEVICE_CPU_SPEEDUP: Dict[str, float] = {
    "nexus6": 1.00,
    "oneplus3": 1.45,
    "nexus10": 0.85,
}


# ---------------------------------------------------------------------------
# Page corpus statistics (HTTP Archive–style calibration)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CorpusProfile:
    """Statistical profile from which a corpus of pages is synthesised."""

    name: str
    #: (mean, sd) of resource count per page.
    resource_count: tuple = (100, 25)
    #: (mean, sd) of total page bytes.
    total_bytes: tuple = (1.6e6, 0.5e6)
    #: Target fraction of bytes in processable resources (HTML/CSS/JS).
    processable_byte_share: float = 0.25
    #: (mean, sd) of number of distinct domains.
    domain_count: tuple = (18, 6)
    #: (mean, sd) of maximum dependency-chain depth.
    chain_depth: tuple = (6, 1.5)
    #: Number of third-party iframes (ads, social widgets): (mean, sd).
    iframe_count: tuple = (2, 1)
    #: Fraction of resources that are script-computed (found only by JS).
    script_computed_frac: float = 0.24
    #: Fraction of resources that carry a per-load nonce (ads/analytics).
    unpredictable_frac: float = 0.30
    #: Fraction of resources that rotate with page content (stories).
    rotating_frac: float = 0.25
    #: (mean, sd) of the rotation lifetime in hours for rotating resources.
    rotation_lifetime_hours: tuple = (18.0, 30.0)
    #: Fraction of resources whose URL depends on the device class.
    device_dependent_frac: float = 0.10
    #: Fraction of resources personalised per (user, domain).
    personalized_frac: float = 0.01
    #: Fraction of resources that are cacheable.
    cacheable_frac: float = 0.75
    #: Fraction of async (non-parser-blocking) scripts among scripts.
    async_script_frac: float = 0.22
    #: Fraction of resources rendered above the fold.
    above_fold_frac: float = 0.30


#: Complex, ad-heavy pages (top-50 News + top-50 Sports).
NEWS_SPORTS_PROFILE = CorpusProfile(
    name="news_sports",
    resource_count=(150, 45),
    total_bytes=(2.6e6, 0.9e6),
    processable_byte_share=0.27,
    domain_count=(30, 9),
    chain_depth=(12, 2),
    iframe_count=(3, 1),
    script_computed_frac=0.26,
    unpredictable_frac=0.36,
    rotating_frac=0.30,
    rotation_lifetime_hours=(12.0, 24.0),
)

#: The Alexa US top-100 overall (lighter mix of pages).
ALEXA_TOP100_PROFILE = CorpusProfile(
    name="alexa_top100",
    resource_count=(75, 30),
    total_bytes=(1.3e6, 0.6e6),
    domain_count=(14, 6),
    chain_depth=(4, 1),
    iframe_count=(1, 1),
)

#: 100 random sites from the Alexa top-400 (Sec 6.1).
ALEXA_TOP400_PROFILE = CorpusProfile(
    name="alexa_top400",
    resource_count=(85, 35),
    total_bytes=(1.4e6, 0.6e6),
    domain_count=(16, 7),
)

#: Shopping-site landing pages: the paper's example of content that
#: "changes often" (product rotations) — high churn, short lifetimes.
SHOPPING_PROFILE = CorpusProfile(
    name="shopping",
    resource_count=(110, 35),
    total_bytes=(1.8e6, 0.6e6),
    domain_count=(20, 7),
    chain_depth=(8, 2),
    iframe_count=(2, 1),
    rotating_frac=0.45,
    rotation_lifetime_hours=(6.0, 10.0),
    unpredictable_frac=0.30,
)


# ---------------------------------------------------------------------------
# Vroom / experiment parameters
# ---------------------------------------------------------------------------

#: How often the offline resolver reloads each page (hours).
OFFLINE_LOAD_PERIOD_HOURS: float = 1.0

#: How many recent offline loads are intersected to form the stable set.
OFFLINE_WINDOW_LOADS: int = 3

#: Device equivalence classes used by offline resolution.  Phones share a
#: class; tablets get their own (display class drives image variants).
DEVICE_CLASSES: Dict[str, str] = {
    "nexus6": "phone",
    "oneplus3": "phone",
    "nexus10": "tablet",
}

#: Default wall-clock hour at which evaluation loads happen.
DEFAULT_EVAL_HOUR: float = 1000.0


@dataclass
class PaperTargets:
    """Headline numbers from the paper used by EXPERIMENTS.md reporting."""

    http1_median_plt: float = 10.5
    http2_median_plt: float = 7.3
    vroom_median_plt: float = 5.1
    lower_bound_median_plt: float = 5.0
    polaris_median_plt: float = 6.4
    alexa400_http2_median_plt: float = 4.8
    alexa400_vroom_median_plt: float = 4.0
    partial_adoption_median_plt: float = 5.6
    critical_path_network_frac: float = 0.30
    vroom_fn_median: float = 0.05
    offline_fn_max: float = 0.40
    discovery_improvement_all: float = 0.22
    discovery_improvement_high: float = 0.16
    fetch_improvement_all: float = 0.22
    fetch_improvement_high: float = 0.12
    warm_cache_gain: Dict[str, float] = field(
        default_factory=lambda: {"b2b": 1.6, "1day": 2.2, "1week": 2.1}
    )


PAPER_TARGETS = PaperTargets()

"""Experiment harness and per-figure regeneration functions."""

from repro.experiments.harness import (
    ExperimentRun,
    load_once,
    sweep_configs,
)
from repro.experiments.parallel import (
    SweepPerf,
    run_sweep,
    set_default_workers,
)
from repro.experiments.resilience import resilience_sweep
from repro.experiments import figures

__all__ = [
    "ExperimentRun",
    "SweepPerf",
    "load_once",
    "resilience_sweep",
    "run_sweep",
    "set_default_workers",
    "sweep_configs",
    "figures",
]

#!/usr/bin/env python3
"""Scenario: auditing what a Vroom server would tell clients about a page.

Walks one page's dependency structure the way a Vroom-compliant server
sees it: the stable set from offline loads, what online HTML analysis
adds, which resources are deliberately left to the client (nonce ads,
user-state script children, iframe content), and how accurate the result
is against a real client load.

Run:  python examples/dependency_audit.py
"""

from collections import Counter

from repro import LoadStamp, news_sports_corpus
from repro.analysis.accuracy import predictable_partition, score_strategy
from repro.core.offline import OfflineResolver
from repro.core.online import analyze_html
from repro.core.resolver import ResolutionStrategy, VroomResolver
from repro.pages.resources import Priority


def main() -> None:
    page = news_sports_corpus(count=2)[0]
    stamp = LoadStamp(when_hours=1000.0, user="alice")
    snapshot = page.materialize(stamp)

    # -- what the offline database holds -------------------------------
    offline = OfflineResolver(page)
    stable = offline.stable_set(stamp.when_hours, "phone")
    print(f"page {page.name!r}")
    print(
        f"offline stable set: {len(stable)} URLs "
        f"(from {offline.window_loads} hourly loads)"
    )

    # -- what online analysis adds for THIS response -------------------
    analysis = analyze_html(snapshot.root.url, snapshot.root.body)
    fresh = [url for url in analysis.urls if url not in stable.urls]
    print(
        f"online HTML analysis: {len(analysis.urls)} URLs in the served "
        f"body, {len(fresh)} of them missing from the stable set "
        "(fresh stories, rotated creatives)"
    )

    # -- the hint bundle actually attached to the response -------------
    resolver = VroomResolver(page)
    bundle = resolver.hints_for(snapshot.root, as_of_hours=stamp.when_hours)
    by_class = Counter(hint.priority for hint in bundle)
    print("hint bundle on the root HTML response:")
    for priority in Priority:
        print(f"  {priority.name:<16} {by_class.get(priority, 0):>4} URLs")

    # -- what is deliberately left to the client -----------------------
    predictable, unpredictable, _ = predictable_partition(page, stamp)
    print(
        f"left to the client: {len(unpredictable)} intrinsically "
        "unpredictable URLs (nonce ads, user-state-derived fetches)"
    )

    # -- accuracy scorecard ---------------------------------------------
    print("\naccuracy against a real client load "
          "(rates relative to the predictable subset):")
    for strategy in (
        ResolutionStrategy.VROOM,
        ResolutionStrategy.OFFLINE_ONLY,
        ResolutionStrategy.ONLINE_ONLY,
    ):
        result = score_strategy(page, stamp, strategy)
        print(
            f"  {strategy.value:<13} "
            f"false negatives {result.fn_rate:5.1%}   "
            f"false positives {result.fp_rate:5.1%}"
        )


if __name__ == "__main__":
    main()

"""Fluid-flow model of the client's cellular access link.

The downlink divides its bandwidth equally across *connections* that have
response bytes in flight (TCP fairness).  Within a connection, the share is
divided across streams according to the connection's scheduling mode:

* ``FAIR`` — equal split across all active streams (HTTP/2 default
  interleaving; also used for independent HTTP/1.1 connections, which each
  carry a single stream anyway).
* ``FIFO`` — streams transmit one at a time in arrival order.  This models
  the paper's Mahimahi modification where a server "returns the content for
  requested resources in the same order in which it receives requests".
* ``WEIGHTED`` — bandwidth proportional to per-stream weights (HTTP/2
  priorities).

Streams expose *offset watches* so the browser's preload scanner can react
the moment a particular byte of an HTML response arrives.

The link is also the simulation's hottest loop: while any connection is in
slow start it refreshes its piecewise-constant rates every ``min_rtt / 2``.
With ``fast_forward`` enabled (the default), consecutive refresh steps run
in a tight inline loop via :meth:`Simulator.advance_inline` instead of a
schedule/cancel/pop heap round-trip per step.  The inline path performs the
identical piecewise updates at the identical simulated times, and drops
back to the heap whenever any foreign event could observe the difference,
so results are bit-identical either way (see ``docs/ARCHITECTURE.md``).
"""

from __future__ import annotations

import bisect
import enum
import itertools
import math
import random
from typing import Callable, Dict, List, Optional, Tuple

from repro import audit
from repro.net.simulator import Event, Simulator

_EPS_BYTES = 1e-6
_EPS_TIME = 1e-12


class StreamScheduling(enum.Enum):
    FAIR = "fair"
    FIFO = "fifo"
    WEIGHTED = "weighted"


class StreamHandle:
    """One response body in flight over the shared link."""

    __slots__ = (
        "id",
        "channel",
        "bytes_total",
        "bytes_done",
        "on_complete",
        "weight",
        "rate",
        "done",
        "aborted",
        "started_at",
        "completed_at",
        "_watches",
        "_watch_cursor",
    )

    _ids = itertools.count()

    def __init__(
        self,
        channel: "Channel",
        nbytes: float,
        on_complete: Callable[[], None],
        weight: float,
    ):
        self.id = next(StreamHandle._ids)
        self.channel = channel
        self.bytes_total = float(nbytes)
        self.bytes_done = 0.0
        self.on_complete = on_complete
        self.weight = max(1e-6, weight)
        self.rate = 0.0
        self.done = False
        self.aborted = False
        self.started_at = channel.link.sim.now
        self.completed_at: Optional[float] = None
        #: Sorted (offset, callback) watch points; entries before
        #: ``_watch_cursor`` have fired already (a cursor beats ``pop(0)``'s
        #: O(n) front-shift, and the list is dropped once fully consumed).
        self._watches: List[Tuple[float, Callable[[], None]]] = []
        self._watch_cursor = 0

    def watch_offset(self, offset: float, callback: Callable[[], None]) -> None:
        """Invoke ``callback`` once ``offset`` bytes of the body have arrived."""
        if self.done or self.bytes_done + _EPS_BYTES >= offset:
            self.channel.link.sim.call_soon(callback)
            return
        # A stored offset strictly exceeds bytes_done, hence every fired
        # offset, so insertion always lands at or after the cursor.  Equal
        # offsets keep registration order (insort is right-biased), exactly
        # as the previous append-then-stable-sort did.
        bisect.insort(
            self._watches, (offset, callback), key=lambda pair: pair[0]
        )
        self.channel.link.poke()

    def abort(self) -> None:
        """Tear the stream down without completing it (drop/timeout).

        Marks the stream done so the link stops allocating bandwidth to
        it, but never fires ``on_complete`` or the remaining watches —
        the exchange failed and the client handles the fallout.
        """
        if self.done:
            return
        self.done = True
        self.aborted = True
        self._watches = []
        self._watch_cursor = 0
        self.channel.link.bytes_retired += self.bytes_done
        self.channel.invalidate_active()
        self.channel.link.poke()

    def next_threshold(self) -> float:
        """Bytes remaining until the next interesting point (watch or end)."""
        target = self.bytes_total
        if self._watch_cursor < len(self._watches):
            target = min(target, self._watches[self._watch_cursor][0])
        return max(0.0, target - self.bytes_done)

    def fire_ready(self, sim: Simulator) -> None:
        """Fire watches whose offsets have arrived; completion if finished."""
        watches = self._watches
        if watches:
            cursor = self._watch_cursor
            count = len(watches)
            arrived = self.bytes_done + _EPS_BYTES
            while cursor < count and watches[cursor][0] <= arrived:
                sim.call_soon(watches[cursor][1])
                cursor += 1
            if cursor >= count:
                self._watches = []
                self._watch_cursor = 0
            else:
                self._watch_cursor = cursor
        if not self.done and self.bytes_done + _EPS_BYTES >= self.bytes_total:
            self.bytes_done = self.bytes_total
            self.done = True
            self.completed_at = sim.now
            self.channel.link.bytes_retired += self.bytes_done
            self.channel.invalidate_active()
            sim.call_soon(self.on_complete)


#: Initial congestion window (10 segments of ~1460 B, RFC 6928).
INITIAL_CWND_BYTES = 14600.0

#: Upper bound on any connection's congestion window.
MAX_CWND_BYTES = 4.0e6


class Channel:
    """The link-facing side of one transport connection.

    Carries a TCP-like congestion window: the connection's byte rate is
    capped at ``cwnd / rtt``, and the window opens by one byte per byte
    delivered (slow-start doubling per RTT).  A connection that has already
    moved bytes is therefore *warm* — the mechanism behind HTTP/2's edge
    over six cold HTTP/1.1 connections and behind RTTs appearing on page
    load critical paths.
    """

    __slots__ = (
        "id",
        "link",
        "ordinal",
        "scheduling",
        "rtt",
        "cwnd",
        "streams",
        "_active_cache",
        "_last_busy_at",
        "_bytes_to_next_loss",
        "_loss_count",
        "_rng",
    )

    _ids = itertools.count()

    def __init__(
        self,
        link: "AccessLink",
        scheduling: StreamScheduling,
        rtt: float = 0.0,
    ):
        self.id = next(Channel._ids)
        self.link = link
        #: Per-link ordinal: stable across runs (unlike the global id),
        #: so identical simulations see identical loss sequences.
        self.ordinal = len(link.channels)
        self.scheduling = scheduling
        self.rtt = rtt
        self.cwnd = INITIAL_CWND_BYTES
        self.streams: List[StreamHandle] = []
        #: Memoised list of not-yet-done streams; None when stale.  Stream
        #: starts and completions invalidate it, so the per-poke rate loops
        #: stop re-filtering (and re-allocating) an unchanged set.
        self._active_cache: Optional[List[StreamHandle]] = None
        self._last_busy_at = link.sim.now
        #: Cached loss RNG, reseeded per draw on the (ordinal, loss_count)
        #: scheme so sequences match the historical fresh-instance-per-draw
        #: behaviour without the per-loss allocation.
        self._rng: Optional[random.Random] = None
        self._loss_count = 0
        #: Bytes until this connection's next simulated packet loss.
        self._bytes_to_next_loss = self._sample_loss_gap(seed_extra=0)

    def _sample_loss_gap(self, seed_extra: int) -> float:
        """Deterministic exponential gap between losses, in bytes."""
        if self.link.loss_rate <= 0:
            return float("inf")
        seed = (self.ordinal + 1) * 9973 + seed_extra
        rng = self._rng
        if rng is None:
            rng = self._rng = random.Random(seed)
        else:
            rng.seed(seed)
        mean_gap = 1460.0 / self.link.loss_rate
        return -mean_gap * math.log(max(1e-12, rng.random()))

    def _register_delivery(self, delivered: float) -> None:
        """Loss events halve the window (TCP congestion avoidance)."""
        if self.link.loss_rate <= 0:
            return
        self._bytes_to_next_loss -= delivered
        while self._bytes_to_next_loss <= 0:
            self._loss_count += 1
            self.cwnd = max(INITIAL_CWND_BYTES, self.cwnd / 2.0)
            self._bytes_to_next_loss += self._sample_loss_gap(
                seed_extra=self._loss_count
            )

    def rate_cap(self) -> float:
        """Maximum byte rate this connection's window currently allows."""
        if self.rtt <= 0:
            return float("inf")
        return min(self.cwnd, MAX_CWND_BYTES) / self.rtt

    def grow_window(self, delivered_bytes: float) -> None:
        if self.rtt <= 0:
            return
        self.cwnd = min(MAX_CWND_BYTES, self.cwnd + delivered_bytes)

    def reset_window(self) -> None:
        """Collapse the window to its initial value (injected loss burst)."""
        self.cwnd = INITIAL_CWND_BYTES

    def start_stream(
        self,
        nbytes: float,
        on_complete: Callable[[], None],
        weight: float = 1.0,
    ) -> StreamHandle:
        if nbytes < 0:
            raise ValueError("stream size must be non-negative")
        # TCP slow-start-after-idle: a connection quiet for more than an
        # RTO collapses its window back to the initial value.  This is why
        # six sporadically-used HTTP/1.1 connections lose to one
        # continuously-busy HTTP/2 connection.
        if not self.active_streams():
            idle = self.link.sim.now - self._last_busy_at
            if idle > max(0.2, 2.0 * self.rtt):
                self.cwnd = INITIAL_CWND_BYTES
        stream = StreamHandle(self, nbytes, on_complete, weight)
        self.streams.append(stream)
        self._active_cache = None
        if nbytes == 0:
            stream.fire_ready(self.link.sim)
            self.streams.remove(stream)
            self._active_cache = None
        else:
            self.link.poke()
        return stream

    def invalidate_active(self) -> None:
        self._active_cache = None

    def active_streams(self) -> List[StreamHandle]:
        active = self._active_cache
        if active is None:
            active = self._active_cache = [
                stream for stream in self.streams if not stream.done
            ]
        return active

    def assign_rates(self, byte_rate: float) -> None:
        """Distribute this connection's byte rate across its streams."""
        active = self.active_streams()
        for stream in active:
            stream.rate = 0.0
        if not active:
            return
        if self.scheduling is StreamScheduling.FIFO:
            # One response at a time, in request order within a priority
            # class — but an urgent stream (higher weight) jumps ahead, as
            # nghttpx honours HTTP/2 priority frames even when the server
            # serialises its responses.
            head = min(active, key=lambda stream: (-stream.weight, stream.id))
            head.rate = byte_rate
            if audit.ENABLED:
                audit.fifo_discipline(
                    self.ordinal,
                    [
                        (stream.weight, stream.id)
                        for stream in active
                        if stream.rate > 0
                    ],
                    (head.weight, head.id),
                    [(stream.weight, stream.id) for stream in active],
                )
        elif self.scheduling is StreamScheduling.WEIGHTED:
            total = sum(stream.weight for stream in active)
            for stream in active:
                stream.rate = byte_rate * stream.weight / total
        else:
            each = byte_rate / len(active)
            for stream in active:
                stream.rate = each


class AccessLink:
    """The shared last-mile downlink."""

    def __init__(
        self,
        sim: Simulator,
        downlink_bps: float,
        loss_rate: float = 0.0,
        fast_forward: bool = True,
    ):
        if downlink_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        self.sim = sim
        self.downlink_bps = downlink_bps
        #: Per-packet loss probability (halves a connection's window).
        self.loss_rate = loss_rate
        #: Coalesce consecutive refresh ticks into inline clock advances.
        #: Bit-identical either way; off is the reference event-per-tick
        #: path the equivalence suite compares against.
        self.fast_forward = fast_forward
        self.channels: List[Channel] = []
        self._last_update = sim.now
        self._tick_event: Optional[Event] = None
        self._in_poke = False
        #: Memoised water-filling result: signature of (channel id, cap)
        #: pairs -> rates.  Valid until the busy set or any cap changes.
        self._rates_sig: Optional[tuple] = None
        self._rates: Dict[int, float] = {}
        #: Total body bytes delivered (for accounting tests).
        self.bytes_delivered = 0.0
        #: Bytes carried by streams that already finished (completed or
        #: aborted).  ``bytes_retired`` plus the in-flight streams'
        #: ``bytes_done`` must always track ``bytes_delivered``.
        self.bytes_retired = 0.0
        #: Seconds during which at least one stream was receiving bytes.
        self.busy_time = 0.0
        #: Deterministic perf counters: poke sweeps (direct calls plus one
        #: per refresh step, inline or heap), refresh steps taken inline,
        #: and full water-filling recomputations (signature misses).
        self.pokes = 0
        self.ff_steps = 0
        self.rate_recomputes = 0

    def open_channel(
        self,
        scheduling: StreamScheduling = StreamScheduling.FAIR,
        rtt: float = 0.0,
    ) -> Channel:
        channel = Channel(self, scheduling, rtt=rtt)
        self.channels.append(channel)
        return channel

    # -- internals -----------------------------------------------------------

    def _advance(self) -> None:
        now = self.sim.now
        dt = now - self._last_update
        if dt > _EPS_TIME:
            # Hot loop: skip idle channels outright (growing a window by
            # zero bytes and registering a zero-byte delivery are no-ops)
            # and accumulate the link total in a local.  The float
            # operations and their order are identical to the naive loop.
            delivered_total = self.bytes_delivered
            lossy = self.loss_rate > 0
            busy = False
            for channel in self.channels:
                active = channel.active_streams()
                if not active:
                    continue
                busy = True
                channel_delivered = 0.0
                for stream in active:
                    delta = stream.rate * dt
                    stream.bytes_done = min(
                        stream.bytes_total, stream.bytes_done + delta
                    )
                    channel_delivered += delta
                    delivered_total += delta
                channel.grow_window(channel_delivered)
                if lossy:
                    channel._register_delivery(channel_delivered)
                if channel_delivered > 0:
                    channel._last_busy_at = now
            if busy:
                self.busy_time += dt
            self.bytes_delivered = delivered_total
        self._last_update = now

    def _busy_channels(self) -> List[Channel]:
        return [
            channel for channel in self.channels if channel.active_streams()
        ]

    def _channel_rates(self, busy: List[Channel]) -> Dict[int, float]:
        """Water-filling: equal shares, with cwnd-capped surplus recycled.

        The full computation only reruns when the connection set or some
        connection's window cap has changed since the previous call; an
        unchanged signature reuses the memoised allocation, and the common
        single-connection case short-circuits entirely.
        """
        total_byte_rate = self.downlink_bps / 8.0
        if len(busy) == 1:
            channel = busy[0]
            return {channel.id: min(total_byte_rate, channel.rate_cap())}
        signature = tuple(
            (channel.id, channel.rate_cap()) for channel in busy
        )
        if signature == self._rates_sig:
            return self._rates
        self.rate_recomputes += 1
        rates: Dict[int, float] = {}
        remaining = list(busy)
        budget = total_byte_rate
        for _ in range(len(busy) + 1):
            if not remaining:
                break
            share = budget / len(remaining)
            capped = [
                channel
                for channel in remaining
                if channel.rate_cap() < share - _EPS_BYTES
            ]
            if not capped:
                for channel in remaining:
                    rates[channel.id] = share
                break
            for channel in capped:
                rates[channel.id] = channel.rate_cap()
                budget -= channel.rate_cap()
                remaining.remove(channel)
        self._rates_sig = signature
        self._rates = rates
        return rates

    def _assign_and_horizon(self) -> Optional[float]:
        """Assign per-stream rates; return seconds until they next change.

        Returns None when the link is idle or nothing bounds the current
        piecewise-constant segment (no refresh tick is needed).
        """
        busy = self._busy_channels()
        if not busy:
            return None
        if len(busy) == 1:
            # Fast path for the dominant case (one connection carrying
            # traffic, e.g. HTTP/2 push-all): same arithmetic as the
            # generic path below, minus the dict and method-call churn.
            channel = busy[0]
            cap = channel.rate_cap()
            rate = min(self.downlink_bps / 8.0, cap)
            channel.assign_rates(rate)
            cwnd_limited = cap <= rate + _EPS_BYTES
            horizon = None
            for stream in channel.active_streams():
                stream_rate = stream.rate
                if stream_rate <= 0:
                    continue
                target = stream.bytes_total
                cursor = stream._watch_cursor
                if cursor < len(stream._watches):
                    watch = stream._watches[cursor][0]
                    if watch < target:
                        target = watch
                remaining = target - stream.bytes_done
                eta = remaining / stream_rate if remaining > 0 else 0.0
                if horizon is None or eta < horizon:
                    horizon = eta
        else:
            rates = self._channel_rates(busy)
            cwnd_limited = False
            for channel in busy:
                rate = rates.get(channel.id, 0.0)
                channel.assign_rates(rate)
                if channel.rate_cap() <= rate + _EPS_BYTES:
                    cwnd_limited = True
            horizon = None
            for channel in busy:
                for stream in channel.active_streams():
                    if stream.rate <= 0:
                        continue
                    eta = stream.next_threshold() / stream.rate
                    if horizon is None or eta < horizon:
                        horizon = eta
        if cwnd_limited:
            # Windows open continuously; refresh piecewise-constant rates
            # a few times per RTT while any connection is in slow start.
            min_rtt = min(
                (channel.rtt for channel in busy if channel.rtt > 0),
                default=0.0,
            )
            if min_rtt > 0:
                refresh = min_rtt / 2.0
                horizon = refresh if horizon is None else min(horizon, refresh)
        return horizon

    def _reschedule(self, horizon: Optional[float]) -> None:
        if self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None
        if horizon is not None:
            self._tick_event = self.sim.schedule(max(0.0, horizon), self._tick)

    def _step(self) -> None:
        """Integrate progress to ``sim.now`` and fire due watches/completions."""
        self._advance()
        for channel in self.channels:
            retired = False
            # fire_ready only defers callbacks (call_soon), so iterating
            # the live list is safe; rebuild it only when a stream ended.
            for stream in channel.streams:
                stream.fire_ready(self.sim)
                if stream.done:
                    retired = True
            if retired:
                channel.streams = [
                    stream for stream in channel.streams if not stream.done
                ]

    def poke(self) -> None:
        """Advance progress, fire due watches/completions, recompute rates."""
        if self._in_poke:
            return
        self._in_poke = True
        try:
            self.pokes += 1
            self._step()
            self._reschedule(self._assign_and_horizon())
        finally:
            self._in_poke = False

    def _tick(self) -> None:
        """Refresh-tick callback: one poke, then fast-forward while silent.

        Each loop iteration performs exactly the work one scheduled poke
        would have, at exactly the time that poke would have run; the jump
        to the next step happens via :meth:`Simulator.advance_inline`,
        which refuses whenever any pending heap event — a foreign model's
        callback, a watch just fired through ``call_soon``, or the run's
        ``until`` cap — could observe the coalescing.  A refused advance
        falls back to scheduling a regular tick, reproducing the
        event-per-tick trace bit for bit.
        """
        if self._in_poke:
            return
        self._tick_event = None
        self._in_poke = True
        try:
            while True:
                self.pokes += 1
                self._step()
                horizon = self._assign_and_horizon()
                if horizon is None:
                    self._reschedule(None)
                    return
                if not self.fast_forward:
                    self._reschedule(horizon)
                    return
                if not self.sim.advance_inline(
                    self.sim.now + max(0.0, horizon)
                ):
                    self._reschedule(horizon)
                    return
                self.ff_steps += 1
                if not audit.ENABLED:
                    self._coalesce()
        finally:
            self._in_poke = False

    def _coalesce(self) -> None:
        """Batch consecutive silent refresh steps entirely in locals.

        Specialised for the dominant slow-start drain shape — one FAIR
        connection carrying one stream — this performs the same per-step
        float operations in the same order as the generic loop in
        :meth:`_tick`, but keeps all state in locals and checks the heap
        head once (nothing can schedule or cancel during the silent
        window, so it cannot change).  On any deviation from that regime
        it writes the state back and returns; the generic loop then
        redoes the boundary step from unchanged observable state.
        """
        busy = self._busy_channels()
        if len(busy) != 1:
            return
        channel = busy[0]
        if channel.scheduling is not StreamScheduling.FAIR or channel.rtt <= 0:
            return
        active = channel.active_streams()
        if len(active) != 1:
            return
        stream = active[0]
        rate_s = stream.rate
        if rate_s <= 0:
            return
        sim = self.sim
        next_heap = sim.peek_time()
        until = sim._until
        share = self.downlink_bps / 8.0
        rtt = channel.rtt
        refresh = rtt / 2.0
        lossy = self.loss_rate > 0
        total = stream.bytes_total
        cursor = stream._watch_cursor
        if cursor < len(stream._watches):
            watch = stream._watches[cursor][0]
            target_bytes = watch if watch < total else total
        else:
            target_bytes = total
        now = sim._now
        last_update = self._last_update
        done = stream.bytes_done
        cwnd = channel.cwnd
        btnl = channel._bytes_to_next_loss
        loss_count = channel._loss_count
        delivered = self.bytes_delivered
        busy_time = self.busy_time
        last_busy = None
        steps = 0
        while True:
            dt = now - last_update
            if dt > _EPS_TIME:
                # One stream: channel_delivered == delta, exactly.
                delta = rate_s * dt
                done = min(total, done + delta)
                delivered += delta
                cwnd = min(MAX_CWND_BYTES, cwnd + delta)
                if lossy:
                    btnl -= delta
                    while btnl <= 0:
                        loss_count += 1
                        cwnd = max(INITIAL_CWND_BYTES, cwnd / 2.0)
                        btnl += channel._sample_loss_gap(
                            seed_extra=loss_count
                        )
                busy_time += dt
                last_busy = now
            last_update = now
            if done + _EPS_BYTES >= target_bytes:
                break
            cap = min(cwnd, MAX_CWND_BYTES) / rtt
            rate = min(share, cap)
            # FAIR split over one stream: byte_rate / 1 == byte_rate.
            rate_s = rate
            remaining = target_bytes - done
            eta = remaining / rate_s if remaining > 0 else 0.0
            horizon = min(eta, refresh) if cap <= rate + _EPS_BYTES else eta
            target_t = now + (horizon if horizon > 0.0 else 0.0)
            if target_t <= now:
                break
            if until is not None and target_t > until:
                break
            if next_heap is not None and next_heap <= target_t:
                break
            now = target_t
            steps += 1
        stream.bytes_done = done
        stream.rate = rate_s
        channel.cwnd = cwnd
        channel._bytes_to_next_loss = btnl
        channel._loss_count = loss_count
        if last_busy is not None:
            channel._last_busy_at = last_busy
        self.bytes_delivered = delivered
        self.busy_time = busy_time
        self._last_update = last_update
        sim._now = now
        sim.inline_advances += steps
        self.pokes += steps
        self.ff_steps += steps

    def active_stream_count(self) -> int:
        return sum(
            len(channel.active_streams()) for channel in self.channels
        )

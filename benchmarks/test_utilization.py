"""Sec 3's thesis as a measurement: Vroom raises CPU utilization.

The paper argues page loads underuse both the CPU and the access link
because each blocks on the other, and that server-aided discovery
decouples them.  This bench quantifies it: the busy fraction of both
resources across configurations.
"""

from benchmarks.conftest import run_once
from repro.analysis.stats import median
from repro.experiments.utilization import utilization_comparison


def test_utilization(benchmark, corpus_size):
    result = run_once(
        benchmark, utilization_comparison, count=max(12, corpus_size // 2)
    )
    print("== Resource utilization during the load (median busy fraction) ==")
    for config, rows in result.items():
        print(
            f"{config:<8} cpu={median(rows['cpu']):.2f} "
            f"link={median(rows['link']):.2f}"
        )
    assert median(result["vroom"]["cpu"]) > median(result["http2"]["cpu"])
    assert median(result["http2"]["cpu"]) < 0.95  # baseline leaves slack

"""Fluid-flow model of the client's cellular access link.

The downlink divides its bandwidth equally across *connections* that have
response bytes in flight (TCP fairness).  Within a connection, the share is
divided across streams according to the connection's scheduling mode:

* ``FAIR`` — equal split across all active streams (HTTP/2 default
  interleaving; also used for independent HTTP/1.1 connections, which each
  carry a single stream anyway).
* ``FIFO`` — streams transmit one at a time in arrival order.  This models
  the paper's Mahimahi modification where a server "returns the content for
  requested resources in the same order in which it receives requests".
* ``WEIGHTED`` — bandwidth proportional to per-stream weights (HTTP/2
  priorities).

Streams expose *offset watches* so the browser's preload scanner can react
the moment a particular byte of an HTML response arrives.
"""

from __future__ import annotations

import enum
import itertools
from typing import Callable, Dict, List, Optional, Tuple

from repro import audit
from repro.net.simulator import Event, Simulator

_EPS_BYTES = 1e-6
_EPS_TIME = 1e-12


class StreamScheduling(enum.Enum):
    FAIR = "fair"
    FIFO = "fifo"
    WEIGHTED = "weighted"


class StreamHandle:
    """One response body in flight over the shared link."""

    _ids = itertools.count()

    def __init__(
        self,
        channel: "Channel",
        nbytes: float,
        on_complete: Callable[[], None],
        weight: float,
    ):
        self.id = next(StreamHandle._ids)
        self.channel = channel
        self.bytes_total = float(nbytes)
        self.bytes_done = 0.0
        self.on_complete = on_complete
        self.weight = max(1e-6, weight)
        self.rate = 0.0
        self.done = False
        self.aborted = False
        self.started_at = channel.link.sim.now
        self.completed_at: Optional[float] = None
        #: Sorted (offset, callback) watch points not yet fired.
        self._watches: List[Tuple[float, Callable[[], None]]] = []

    def watch_offset(self, offset: float, callback: Callable[[], None]) -> None:
        """Invoke ``callback`` once ``offset`` bytes of the body have arrived."""
        if self.done or self.bytes_done + _EPS_BYTES >= offset:
            self.channel.link.sim.call_soon(callback)
            return
        self._watches.append((offset, callback))
        self._watches.sort(key=lambda pair: pair[0])
        self.channel.link.poke()

    def abort(self) -> None:
        """Tear the stream down without completing it (drop/timeout).

        Marks the stream done so the link stops allocating bandwidth to
        it, but never fires ``on_complete`` or the remaining watches —
        the exchange failed and the client handles the fallout.
        """
        if self.done:
            return
        self.done = True
        self.aborted = True
        self._watches = []
        self.channel.link.bytes_retired += self.bytes_done
        self.channel.invalidate_active()
        self.channel.link.poke()

    def next_threshold(self) -> float:
        """Bytes remaining until the next interesting point (watch or end)."""
        target = self.bytes_total
        if self._watches:
            target = min(target, self._watches[0][0])
        return max(0.0, target - self.bytes_done)

    def fire_ready(self, sim: Simulator) -> None:
        """Fire watches whose offsets have arrived; completion if finished."""
        while self._watches and self.bytes_done + _EPS_BYTES >= self._watches[0][0]:
            _, callback = self._watches.pop(0)
            sim.call_soon(callback)
        if not self.done and self.bytes_done + _EPS_BYTES >= self.bytes_total:
            self.bytes_done = self.bytes_total
            self.done = True
            self.completed_at = sim.now
            self.channel.link.bytes_retired += self.bytes_done
            self.channel.invalidate_active()
            sim.call_soon(self.on_complete)


#: Initial congestion window (10 segments of ~1460 B, RFC 6928).
INITIAL_CWND_BYTES = 14600.0

#: Upper bound on any connection's congestion window.
MAX_CWND_BYTES = 4.0e6


class Channel:
    """The link-facing side of one transport connection.

    Carries a TCP-like congestion window: the connection's byte rate is
    capped at ``cwnd / rtt``, and the window opens by one byte per byte
    delivered (slow-start doubling per RTT).  A connection that has already
    moved bytes is therefore *warm* — the mechanism behind HTTP/2's edge
    over six cold HTTP/1.1 connections and behind RTTs appearing on page
    load critical paths.
    """

    _ids = itertools.count()

    def __init__(
        self,
        link: "AccessLink",
        scheduling: StreamScheduling,
        rtt: float = 0.0,
    ):
        self.id = next(Channel._ids)
        self.link = link
        #: Per-link ordinal: stable across runs (unlike the global id),
        #: so identical simulations see identical loss sequences.
        self.ordinal = len(link.channels)
        self.scheduling = scheduling
        self.rtt = rtt
        self.cwnd = INITIAL_CWND_BYTES
        self.streams: List[StreamHandle] = []
        #: Memoised list of not-yet-done streams; None when stale.  Stream
        #: starts and completions invalidate it, so the per-poke rate loops
        #: stop re-filtering (and re-allocating) an unchanged set.
        self._active_cache: Optional[List[StreamHandle]] = None
        self._last_busy_at = link.sim.now
        #: Bytes until this connection's next simulated packet loss.
        self._bytes_to_next_loss = self._sample_loss_gap(seed_extra=0)
        self._loss_count = 0

    def _sample_loss_gap(self, seed_extra: int) -> float:
        """Deterministic exponential gap between losses, in bytes."""
        if self.link.loss_rate <= 0:
            return float("inf")
        import math
        import random

        rng = random.Random((self.ordinal + 1) * 9973 + seed_extra)
        mean_gap = 1460.0 / self.link.loss_rate
        return -mean_gap * math.log(max(1e-12, rng.random()))

    def _register_delivery(self, delivered: float) -> None:
        """Loss events halve the window (TCP congestion avoidance)."""
        if self.link.loss_rate <= 0:
            return
        self._bytes_to_next_loss -= delivered
        while self._bytes_to_next_loss <= 0:
            self._loss_count += 1
            self.cwnd = max(INITIAL_CWND_BYTES, self.cwnd / 2.0)
            self._bytes_to_next_loss += self._sample_loss_gap(
                seed_extra=self._loss_count
            )

    def rate_cap(self) -> float:
        """Maximum byte rate this connection's window currently allows."""
        if self.rtt <= 0:
            return float("inf")
        return min(self.cwnd, MAX_CWND_BYTES) / self.rtt

    def grow_window(self, delivered_bytes: float) -> None:
        if self.rtt <= 0:
            return
        self.cwnd = min(MAX_CWND_BYTES, self.cwnd + delivered_bytes)

    def reset_window(self) -> None:
        """Collapse the window to its initial value (injected loss burst)."""
        self.cwnd = INITIAL_CWND_BYTES

    def start_stream(
        self,
        nbytes: float,
        on_complete: Callable[[], None],
        weight: float = 1.0,
    ) -> StreamHandle:
        if nbytes < 0:
            raise ValueError("stream size must be non-negative")
        # TCP slow-start-after-idle: a connection quiet for more than an
        # RTO collapses its window back to the initial value.  This is why
        # six sporadically-used HTTP/1.1 connections lose to one
        # continuously-busy HTTP/2 connection.
        if not self.active_streams():
            idle = self.link.sim.now - self._last_busy_at
            if idle > max(0.2, 2.0 * self.rtt):
                self.cwnd = INITIAL_CWND_BYTES
        stream = StreamHandle(self, nbytes, on_complete, weight)
        self.streams.append(stream)
        self._active_cache = None
        if nbytes == 0:
            stream.fire_ready(self.link.sim)
            self.streams.remove(stream)
            self._active_cache = None
        else:
            self.link.poke()
        return stream

    def invalidate_active(self) -> None:
        self._active_cache = None

    def active_streams(self) -> List[StreamHandle]:
        active = self._active_cache
        if active is None:
            active = self._active_cache = [
                stream for stream in self.streams if not stream.done
            ]
        return active

    def assign_rates(self, byte_rate: float) -> None:
        """Distribute this connection's byte rate across its streams."""
        active = self.active_streams()
        for stream in active:
            stream.rate = 0.0
        if not active:
            return
        if self.scheduling is StreamScheduling.FIFO:
            # One response at a time, in request order within a priority
            # class — but an urgent stream (higher weight) jumps ahead, as
            # nghttpx honours HTTP/2 priority frames even when the server
            # serialises its responses.
            head = min(active, key=lambda stream: (-stream.weight, stream.id))
            head.rate = byte_rate
            if audit.ENABLED:
                audit.fifo_discipline(
                    self.ordinal,
                    [
                        (stream.weight, stream.id)
                        for stream in active
                        if stream.rate > 0
                    ],
                    (head.weight, head.id),
                    [(stream.weight, stream.id) for stream in active],
                )
        elif self.scheduling is StreamScheduling.WEIGHTED:
            total = sum(stream.weight for stream in active)
            for stream in active:
                stream.rate = byte_rate * stream.weight / total
        else:
            each = byte_rate / len(active)
            for stream in active:
                stream.rate = each


class AccessLink:
    """The shared last-mile downlink."""

    def __init__(
        self,
        sim: Simulator,
        downlink_bps: float,
        loss_rate: float = 0.0,
    ):
        if downlink_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        self.sim = sim
        self.downlink_bps = downlink_bps
        #: Per-packet loss probability (halves a connection's window).
        self.loss_rate = loss_rate
        self.channels: List[Channel] = []
        self._last_update = sim.now
        self._tick_event: Optional[Event] = None
        self._in_poke = False
        #: Memoised water-filling result: signature of (channel id, cap)
        #: pairs -> rates.  Valid until the busy set or any cap changes.
        self._rates_sig: Optional[tuple] = None
        self._rates: Dict[int, float] = {}
        #: Total body bytes delivered (for accounting tests).
        self.bytes_delivered = 0.0
        #: Bytes carried by streams that already finished (completed or
        #: aborted).  ``bytes_retired`` plus the in-flight streams'
        #: ``bytes_done`` must always track ``bytes_delivered``.
        self.bytes_retired = 0.0
        #: Seconds during which at least one stream was receiving bytes.
        self.busy_time = 0.0

    def open_channel(
        self,
        scheduling: StreamScheduling = StreamScheduling.FAIR,
        rtt: float = 0.0,
    ) -> Channel:
        channel = Channel(self, scheduling, rtt=rtt)
        self.channels.append(channel)
        return channel

    # -- internals -----------------------------------------------------------

    def _advance(self) -> None:
        now = self.sim.now
        dt = now - self._last_update
        if dt > _EPS_TIME:
            if any(
                channel.active_streams() for channel in self.channels
            ):
                self.busy_time += dt
            for channel in self.channels:
                channel_delivered = 0.0
                for stream in channel.active_streams():
                    delta = stream.rate * dt
                    stream.bytes_done = min(
                        stream.bytes_total, stream.bytes_done + delta
                    )
                    channel_delivered += delta
                    self.bytes_delivered += delta
                channel.grow_window(channel_delivered)
                channel._register_delivery(channel_delivered)
                if channel_delivered > 0:
                    channel._last_busy_at = now
        self._last_update = now

    def _busy_channels(self) -> List[Channel]:
        return [
            channel for channel in self.channels if channel.active_streams()
        ]

    def _channel_rates(self, busy: List[Channel]) -> Dict[int, float]:
        """Water-filling: equal shares, with cwnd-capped surplus recycled.

        The full computation only reruns when the connection set or some
        connection's window cap has changed since the previous call; an
        unchanged signature reuses the memoised allocation, and the common
        single-connection case short-circuits entirely.
        """
        total_byte_rate = self.downlink_bps / 8.0
        if len(busy) == 1:
            channel = busy[0]
            return {channel.id: min(total_byte_rate, channel.rate_cap())}
        signature = tuple(
            (channel.id, channel.rate_cap()) for channel in busy
        )
        if signature == self._rates_sig:
            return self._rates
        rates: Dict[int, float] = {}
        remaining = list(busy)
        budget = total_byte_rate
        for _ in range(len(busy) + 1):
            if not remaining:
                break
            share = budget / len(remaining)
            capped = [
                channel
                for channel in remaining
                if channel.rate_cap() < share - _EPS_BYTES
            ]
            if not capped:
                for channel in remaining:
                    rates[channel.id] = share
                break
            for channel in capped:
                rates[channel.id] = channel.rate_cap()
                budget -= channel.rate_cap()
                remaining.remove(channel)
        self._rates_sig = signature
        self._rates = rates
        return rates

    def _recompute(self) -> None:
        busy = self._busy_channels()
        if not busy:
            if self._tick_event is not None:
                self._tick_event.cancel()
                self._tick_event = None
            return
        rates = self._channel_rates(busy)
        cwnd_limited = False
        for channel in busy:
            rate = rates.get(channel.id, 0.0)
            channel.assign_rates(rate)
            if channel.rate_cap() <= rate + _EPS_BYTES:
                cwnd_limited = True
        horizon = None
        for channel in busy:
            for stream in channel.active_streams():
                if stream.rate <= 0:
                    continue
                eta = stream.next_threshold() / stream.rate
                if horizon is None or eta < horizon:
                    horizon = eta
        if cwnd_limited:
            # Windows open continuously; refresh piecewise-constant rates
            # a few times per RTT while any connection is in slow start.
            min_rtt = min(
                (channel.rtt for channel in busy if channel.rtt > 0),
                default=0.0,
            )
            if min_rtt > 0:
                refresh = min_rtt / 2.0
                horizon = refresh if horizon is None else min(horizon, refresh)
        if self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None
        if horizon is not None:
            self._tick_event = self.sim.schedule(max(0.0, horizon), self.poke)

    def poke(self) -> None:
        """Advance progress, fire due watches/completions, recompute rates."""
        if self._in_poke:
            return
        self._in_poke = True
        try:
            self._advance()
            for channel in self.channels:
                for stream in list(channel.streams):
                    stream.fire_ready(self.sim)
                channel.streams = [
                    stream for stream in channel.streams if not stream.done
                ]
            self._recompute()
        finally:
            self._in_poke = False

    def active_stream_count(self) -> int:
        return sum(
            len(channel.active_streams()) for channel in self.channels
        )

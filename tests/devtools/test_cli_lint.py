"""``repro lint`` end to end through the argparse front end."""

import json
from pathlib import Path

from repro.cli import main
from repro.devtools.baseline import Baseline
from repro.devtools.findings import RULES

REPO_ROOT = Path(__file__).resolve().parents[2]
PACKAGE_ROOT = REPO_ROOT / "src" / "repro"
BASELINE_PATH = REPO_ROOT / "lint-baseline.json"


def test_lint_is_clean_with_repo_baseline(capsys):
    code = main([
        "lint", "--root", str(PACKAGE_ROOT),
        "--baseline", str(BASELINE_PATH),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out
    assert "0 stale" in out


def test_lint_json_output_is_machine_readable(capsys):
    code = main([
        "lint", "--root", str(PACKAGE_ROOT),
        "--baseline", str(BASELINE_PATH), "--format", "json",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"] == []
    assert payload["stale_baseline"] == []
    assert payload["summary"]["clean"] is True
    assert payload["summary"]["files_scanned"] > 50


def test_lint_rules_lists_the_registry(capsys):
    assert main(["lint", "--rules"]) == 0
    out = capsys.readouterr().out
    for code in RULES:
        assert code in out


def test_lint_fails_on_new_finding(tmp_path, capsys):
    layer = tmp_path / "pkg" / "core"
    layer.mkdir(parents=True)
    (layer / "mod.py").write_text(
        "import time\n"
        "def f():\n"
        "    return time.time()\n"
    )
    code = main([
        "lint", "--root", str(tmp_path / "pkg"),
        "--baseline", str(tmp_path / "absent.json"),
    ])
    assert code == 1
    assert "DET104" in capsys.readouterr().out


def test_update_baseline_then_clean(tmp_path, capsys):
    layer = tmp_path / "pkg" / "core"
    layer.mkdir(parents=True)
    (layer / "mod.py").write_text(
        "import random\n"
        "def f():\n"
        "    return random.random()\n"
    )
    baseline_path = tmp_path / "baseline.json"
    assert main([
        "lint", "--root", str(tmp_path / "pkg"),
        "--baseline", str(baseline_path), "--update-baseline",
        "--reason", "seeded RNG pending a determinism fix",
    ]) == 0
    capsys.readouterr()
    entries = Baseline.load(baseline_path).entries
    assert [entry.code for entry in entries] == ["DET103"]
    assert entries[0].reason == "seeded RNG pending a determinism fix"
    assert main([
        "lint", "--root", str(tmp_path / "pkg"),
        "--baseline", str(baseline_path),
    ]) == 0
    assert "1 baselined" in capsys.readouterr().out


def test_update_baseline_preserves_existing_reasons(tmp_path, capsys):
    layer = tmp_path / "pkg" / "core"
    layer.mkdir(parents=True)
    (layer / "mod.py").write_text(
        "import random\n"
        "def f():\n"
        "    return random.random()\n"
    )
    baseline_path = tmp_path / "baseline.json"
    main([
        "lint", "--root", str(tmp_path / "pkg"),
        "--baseline", str(baseline_path), "--update-baseline",
        "--reason", "first pass",
    ])
    entries = Baseline.load(baseline_path).entries
    Baseline(
        entries=[
            type(entry)(
                path=entry.path, code=entry.code, message=entry.message,
                occurrence=entry.occurrence, reason="explained now",
            )
            for entry in entries
        ]
    ).save(baseline_path)
    main([
        "lint", "--root", str(tmp_path / "pkg"),
        "--baseline", str(baseline_path), "--update-baseline",
        "--reason", "refreshing the file",
    ])
    capsys.readouterr()
    assert [
        entry.reason for entry in Baseline.load(baseline_path).entries
    ] == ["explained now"]


def _write_finding_package(tmp_path):
    layer = tmp_path / "pkg" / "core"
    layer.mkdir(parents=True)
    (layer / "mod.py").write_text(
        "import random\n"
        "def f():\n"
        "    return random.random()\n"
    )
    return tmp_path / "pkg", tmp_path / "baseline.json"


def test_update_baseline_requires_reason(tmp_path, capsys):
    root, baseline_path = _write_finding_package(tmp_path)
    code = main([
        "lint", "--root", str(root),
        "--baseline", str(baseline_path), "--update-baseline",
    ])
    assert code == 2
    assert "--reason" in capsys.readouterr().err
    assert not baseline_path.exists()


def test_update_baseline_rejects_todo_reason(tmp_path, capsys):
    root, baseline_path = _write_finding_package(tmp_path)
    code = main([
        "lint", "--root", str(root),
        "--baseline", str(baseline_path), "--update-baseline",
        "--reason", "TODO: explain",
    ])
    assert code == 2
    assert "--reason" in capsys.readouterr().err
    assert not baseline_path.exists()


def test_select_narrows_the_run(tmp_path, capsys):
    root, baseline_path = _write_finding_package(tmp_path)
    # The package's only violation is DET103; selecting another code
    # must leave the run clean (and not report unrelated stale entries).
    assert main([
        "lint", "--root", str(root),
        "--baseline", str(baseline_path), "--select", "PERF401",
    ]) == 0
    capsys.readouterr()
    code = main([
        "lint", "--root", str(root),
        "--baseline", str(baseline_path), "--select", "DET103",
    ])
    assert code == 1
    assert "DET103" in capsys.readouterr().out


def test_only_family_narrows_the_run(tmp_path, capsys):
    root, baseline_path = _write_finding_package(tmp_path)
    assert main([
        "lint", "--root", str(root),
        "--baseline", str(baseline_path), "--only-family", "perf",
    ]) == 0
    capsys.readouterr()
    code = main([
        "lint", "--root", str(root),
        "--baseline", str(baseline_path), "--only-family", "det",
    ])
    assert code == 1
    assert "DET103" in capsys.readouterr().out


def test_unknown_selection_is_a_usage_error(tmp_path, capsys):
    root, baseline_path = _write_finding_package(tmp_path)
    assert main([
        "lint", "--root", str(root),
        "--baseline", str(baseline_path), "--select", "NOPE999",
    ]) == 2
    assert "NOPE999" in capsys.readouterr().err
    assert main([
        "lint", "--root", str(root),
        "--baseline", str(baseline_path), "--only-family", "nonsense",
    ]) == 2
    assert "nonsense" in capsys.readouterr().err


def test_stats_line_reports_cost_and_cache(tmp_path, capsys):
    root, baseline_path = _write_finding_package(tmp_path)
    main([
        "lint", "--root", str(root),
        "--baseline", str(baseline_path), "--stats",
    ])
    first = capsys.readouterr().out
    assert "stats:" in first
    assert "hot function(s)" in first
    main([
        "lint", "--root", str(root),
        "--baseline", str(baseline_path), "--stats",
    ])
    # Identical tree: the second run must reuse the cached call graph.
    assert "call graph cached" in capsys.readouterr().out


def test_check_baseline_accepts_reasoned_entries(capsys):
    code = main(["lint", "--baseline", str(BASELINE_PATH),
                 "--check-baseline"])
    assert code == 0
    assert "0 without a reason" in capsys.readouterr().out


def test_check_baseline_rejects_reasonless_entries(tmp_path, capsys):
    bad = tmp_path / "baseline.json"
    bad.write_text(json.dumps({
        "entries": [
            {"path": "core/mod.py", "code": "DET103",
             "message": "x", "occurrence": 1, "reason": ""},
            {"path": "core/mod.py", "code": "DET104",
             "message": "y", "occurrence": 1, "reason": "TODO later"},
            {"path": "core/mod.py", "code": "DET105",
             "message": "z", "occurrence": 1, "reason": "real reason"},
        ]
    }))
    code = main(["lint", "--baseline", str(bad), "--check-baseline"])
    assert code == 1
    captured = capsys.readouterr()
    assert "2 without a reason" in captured.out
    assert "DET103" in captured.err and "DET104" in captured.err
    assert "DET105" not in captured.err

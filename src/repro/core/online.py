"""Online HTML analysis (Sec 4.1.2).

When a Vroom-compliant server responds to a request with an HTML object,
it parses the body *as it is being served* and includes every URL seen in
the markup among the returned dependencies.  This captures dynamic page
content (fresh stories, rotated images) that offline resolution misses,
because the analysis runs on the exact bytes this client receives.

The parse costs real latency (the paper measures ~100 ms median across the
top-1000 landing pages); the server layer adds that to the response's
think time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.calibration import VROOM_ONLINE_PARSE_OVERHEAD
from repro.pages import markup


@dataclass(frozen=True)
class OnlineAnalysis:
    """Result of parsing one served HTML body."""

    source_url: str
    urls: List[str]
    parse_overhead: float

    def __len__(self) -> int:
        return len(self.urls)


def analyze_html(source_url: str, body: str) -> OnlineAnalysis:
    """Extract statically referenced URLs from a served HTML body.

    Only markup-visible references are found: URLs assembled inside script
    bodies stay invisible, exactly as for a real streaming tokenizer.
    """
    urls = []
    seen = set()
    for url in markup.extract_urls(body):
        if url not in seen:
            seen.add(url)
            urls.append(url)
    return OnlineAnalysis(
        source_url=source_url,
        urls=urls,
        parse_overhead=VROOM_ONLINE_PARSE_OVERHEAD,
    )

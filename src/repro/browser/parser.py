"""Incremental HTML document parsing with real blocking semantics.

Each document's parse is a little state machine driven by three things:
byte arrival (the parser cannot scan past bytes it does not have), the CPU
queue (parse segments and script execution are serial CPU tasks) and
blocking rules (a synchronous script blocks the parser until it is fetched,
earlier stylesheets are applied, and the script has executed).

The preload scanner is modelled separately from the parser: static
references are *discovered* the moment their enclosing bytes arrive, even
while the parser is blocked on a script — exactly the behaviour that lets
real browsers overlap some fetches, and exactly what Vroom generalises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.pages import markup
from repro.pages.resources import Discovery, Resource, ResourceType


@dataclass
class ParsedRef:
    """A static reference inside a document body."""

    child: Resource
    byte_offset: int


def static_refs(doc: Resource) -> List[ParsedRef]:
    """Static children of ``doc`` with their true byte offsets in the body.

    Offsets come from scanning the rendered body, so the parser model sees
    exactly what a real tokenizer would.  Children whose tags were not
    found (shouldn't happen) fall back to their nominal position.
    """
    offsets: Dict[str, int] = {}
    for url, end in markup.extract_urls_with_offsets(doc.body):
        offsets.setdefault(url, end)
    refs = []
    for child in doc.children:
        if child.spec.discovery is not Discovery.STATIC_MARKUP:
            continue
        fallback = int(child.spec.position * max(1, doc.size))
        refs.append(
            ParsedRef(child=child, byte_offset=offsets.get(child.url, fallback))
        )
    refs.sort(key=lambda ref: ref.byte_offset)
    return refs


class DocumentParse:
    """Drives the parse of one HTML document inside a page load.

    The owner (the engine) supplies the environment via callbacks; this
    class only sequences segments, blocks and script execution.
    """

    def __init__(
        self,
        doc: Resource,
        *,
        parse_time: Callable[[float], float],
        submit_cpu: Callable[[float, Callable[[], None]], None],
        wait_for_bytes: Callable[[Resource, int, Callable[[], None]], None],
        wait_for_fetch: Callable[[Resource, Callable[[], None]], None],
        wait_for_css: Callable[[List[Resource], Callable[[], None]], None],
        execute_script: Callable[[Resource, Callable[[], None]], None],
        on_complete: Callable[["DocumentParse"], None],
        nonblocking_scripts: bool = False,
        on_segment: Optional[Callable[[int, int], None]] = None,
    ):
        self.doc = doc
        self.refs = static_refs(doc)
        self._parse_time = parse_time
        self._submit_cpu = submit_cpu
        self._wait_for_bytes = wait_for_bytes
        self._wait_for_fetch = wait_for_fetch
        self._wait_for_css = wait_for_css
        self._execute_script = execute_script
        self._on_complete = on_complete
        self.nonblocking_scripts = nonblocking_scripts
        self._on_segment = on_segment
        self._index = 0
        self._cursor = 0
        self.started = False
        self.finished = False

    # -- queries ---------------------------------------------------------

    def blocking_css_before(self, offset: int) -> List[Resource]:
        """Stylesheets declared earlier than ``offset`` in this document."""
        return [
            ref.child
            for ref in self.refs
            if ref.byte_offset <= offset
            and ref.child.rtype is ResourceType.CSS
        ]

    def all_blocking_css(self) -> List[Resource]:
        return self.blocking_css_before(self.doc.size + 1)

    # -- state machine -----------------------------------------------------

    def start(self) -> None:
        if self.started:
            return
        self.started = True
        self._step()

    def _step(self) -> None:
        """Parse up to the next reference (or the end of the document)."""
        if self._index < len(self.refs):
            target = self.refs[self._index].byte_offset
        else:
            target = self.doc.size
        self._wait_for_bytes(
            self.doc, target, lambda: self._parse_segment(target)
        )

    def _parse_segment(self, target: int) -> None:
        length = max(0, target - self._cursor)
        self._cursor = target
        self._submit_cpu(
            self._parse_time(length),
            lambda: self._segment_parsed_with_progress(length),
        )

    def _segment_parsed_with_progress(self, length: int) -> None:
        if self._on_segment is not None and length > 0:
            self._on_segment(length, self._cursor)
        self._segment_parsed()

    def _segment_parsed(self) -> None:
        if self._index >= len(self.refs):
            self._finish()
            return
        ref = self.refs[self._index]
        self._index += 1
        child = ref.child
        is_sync_script = (
            child.rtype is ResourceType.JS
            and not child.spec.exec_async
            and not self.nonblocking_scripts
        )
        if not is_sync_script:
            # CSS / images / iframes / async scripts never block the parser.
            self._step()
            return
        blocking_css = self.blocking_css_before(ref.byte_offset)

        def after_fetch() -> None:
            self._wait_for_css(blocking_css, after_css)

        def after_css() -> None:
            self._execute_script(child, self._step)

        self._wait_for_fetch(child, after_fetch)

    def _finish(self) -> None:
        if self.finished:
            return
        self.finished = True
        self._on_complete(self)

"""Shopping-site churn (Sec 4.1's motivating example for online analysis).

"The set of stories or set of products on the landing page of a News or
Shopping site changes often" — product rotations on hour scales are the
content that hour-old offline data misses.  On a dedicated shopping
corpus the offline-only strawman's false negatives blow up while Vroom's
online analysis holds, and Vroom's PLT gain survives the churn.
"""

from benchmarks.conftest import run_once
from repro.analysis.stats import median
from repro.analysis.accuracy import score_strategy
from repro.baselines.configs import run_config
from repro.calibration import DEFAULT_EVAL_HOUR
from repro.core.resolver import ResolutionStrategy
from repro.pages.corpus import shopping_corpus
from repro.pages.dynamics import LoadStamp
from repro.replay.recorder import record_snapshot


def shopping_study(count: int = 12):
    stamp = LoadStamp(when_hours=DEFAULT_EVAL_HOUR)
    pages = shopping_corpus(count)
    out = {
        "offline_fn": [], "vroom_fn": [],
        "http2_plt": [], "vroom_plt": [],
    }
    for page in pages:
        out["offline_fn"].append(
            score_strategy(
                page, stamp, ResolutionStrategy.OFFLINE_ONLY
            ).fn_rate
        )
        out["vroom_fn"].append(
            score_strategy(page, stamp, ResolutionStrategy.VROOM).fn_rate
        )
        snapshot = page.materialize(stamp)
        store = record_snapshot(snapshot)
        out["http2_plt"].append(
            run_config("http2", page, snapshot, store).plt
        )
        out["vroom_plt"].append(
            run_config("vroom", page, snapshot, store).plt
        )
    return out


def test_shopping_flux(benchmark):
    result = run_once(benchmark, shopping_study, count=12)
    print(
        "== Shopping corpus (hour-scale product rotation) ==\n"
        f"offline-only FN median {median(result['offline_fn']):.2f}  "
        f"vroom FN median {median(result['vroom_fn']):.2f}\n"
        f"http2 PLT median {median(result['http2_plt']):.2f}s  "
        f"vroom PLT median {median(result['vroom_plt']):.2f}s"
    )
    assert median(result["offline_fn"]) > 0.10
    assert median(result["vroom_fn"]) < median(result["offline_fn"]) / 2
    assert median(result["vroom_plt"]) < median(result["http2_plt"])

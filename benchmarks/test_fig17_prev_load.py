"""Fig 17 (+ ablation): accuracy of dependencies matters.

Paper: returning the full set of resources from a single prior load still
helps at the median, but the extraneous stale URLs degrade many pages —
the 75th percentile rises by over 1.5 s relative to Vroom.
"""

from benchmarks.conftest import run_once
from repro.experiments import figures


def _print_quartiles(title, series, paper=None):
    print(f"== {title} ==")
    for name, (q1, q2, q3) in series.items():
        row = f"{name:<28} p25={q1:6.2f} median={q2:6.2f} p75={q3:6.2f}"
        if paper and name in paper:
            row += f"  | paper median ~{paper[name]:.1f}"
        print(row)


def test_fig17_prev_load(benchmark, corpus_size):
    series = run_once(benchmark, figures.fig17_prev_load, count=corpus_size)
    _print_quartiles(
        "Fig 17: deps from a single previous load (quartiles)",
        series,
        paper={
            "lower_bound": 5.0,
            "vroom": 5.1,
            "deps_from_previous_load": 5.6,
            "http2_baseline": 7.3,
        },
    )
    assert series["vroom"][1] < series["http2_baseline"][1]
    assert series["deps_from_previous_load"][1] < series["http2_baseline"][1]
    # Stale extraneous dependencies keep prev-load from beating Vroom at
    # the median.  (The paper additionally reports a +1.5 s blowup at the
    # 75th percentile; our synthetic nonce resources are small beacons,
    # so the waste is milder — see EXPERIMENTS.md.)
    assert series["deps_from_previous_load"][1] >= series["vroom"][1] - 0.40

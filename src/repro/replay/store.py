"""Storage format for recorded page loads."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.pages.resources import Resource


@dataclass
class RecordedResponse:
    """One recorded request/response exchange."""

    url: str
    domain: str
    size: int
    is_html: bool
    body: str = ""
    #: The resource behind the exchange (carried for policy layers).
    resource: Optional[Resource] = None


@dataclass
class ReplayStore:
    """All exchanges captured while recording one page load."""

    page: str
    responses: Dict[str, RecordedResponse] = field(default_factory=dict)
    #: Per-domain RTT (beyond the cellular link) observed at record time.
    domain_rtts: Dict[str, float] = field(default_factory=dict)

    def add(self, response: RecordedResponse, rtt: float) -> None:
        self.responses[response.url] = response
        self.domain_rtts.setdefault(response.domain, rtt)

    def domains(self) -> List[str]:
        return list(self.domain_rtts)

    def urls(self) -> List[str]:
        return list(self.responses)

    def lookup(self, url: str) -> Optional[RecordedResponse]:
        return self.responses.get(url)

    def total_bytes(self) -> int:
        return sum(response.size for response in self.responses.values())

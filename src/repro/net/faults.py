"""Deterministic fault injection for origin servers and the link layer.

Vroom's premise is that servers hand clients dependency hints and push
promises that may be stale or wrong under page churn (Secs 4.2, 6.4), and
measurement studies of deployed push ("Is the Web ready for HTTP/2 Server
Push?") show failures and wasted transfers are the norm in the wild.  A
:class:`FaultPlan` makes those failure modes reproducible: a seeded set of
:class:`FaultRule`\\ s injects server errors, response stalls, connection
drops and slow-start resets per URL/domain/time-window.

Every decision is a pure function of ``(seed, rule index, url, attempt)``,
so identical plans produce identical fault sequences across runs and
across worker processes — the property every sweep in this repo relies
on.  A plan with no rules never rolls at all, which keeps the zero-fault
configuration bit-identical to an unfaulted load.

Fault kinds
-----------

``SERVER_ERROR``
    The origin returns a small uncacheable 5xx body instead of the
    content (handled by :class:`~repro.net.origin.OriginServer`).
``STALL``
    The response bytes vanish in the network: nothing ever arrives.
    Only a client request timeout rescues the exchange — plans that
    stall must be paired with ``NetworkConfig.request_timeout > 0`` or
    the load wedges loudly.
``CONNECTION_DROP``
    The response starts streaming and dies partway through; delivered
    bytes are counted as fault waste.
``SLOW_START_RESET``
    The connection's congestion window collapses back to the initial
    value (models a loss burst / NAT rebinding); the request itself
    still completes.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, replace
from typing import Optional, Tuple

#: Body size of an injected 5xx error response, in bytes.
ERROR_RESPONSE_BYTES = 512


class FaultKind(enum.Enum):
    SERVER_ERROR = "server_error"
    STALL = "stall"
    CONNECTION_DROP = "connection_drop"
    SLOW_START_RESET = "slow_start_reset"


#: Kinds injected by the client/link layer (vs. the origin server).
TRANSPORT_KINDS = frozenset(
    {FaultKind.STALL, FaultKind.CONNECTION_DROP, FaultKind.SLOW_START_RESET}
)

#: Kinds decided by the origin server.  ``server_fault`` runs once per
#: request attempt on the lookup hot path, so the membership set is a
#: module constant rather than a fresh per-call set display.
SERVER_KINDS = frozenset({FaultKind.SERVER_ERROR})


def _unit_roll(seed: int, lane: object, url: str, attempt: int) -> float:
    """A deterministic uniform in [0, 1) from the fault coordinates."""
    digest = hashlib.blake2b(
        f"{seed}|{lane}|{url}|{attempt}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / float(1 << 64)


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: what to break, where, when, and how often."""

    kind: FaultKind
    #: Probability the rule fires per matching request attempt.
    rate: float = 1.0
    #: Only URLs containing this substring (None = every URL).
    url_substring: Optional[str] = None
    #: Only this origin domain (None = every domain).
    domain: Optional[str] = None
    #: Only hint-driven prefetches (the scheduler's speculative fetches).
    hints_only: bool = False
    #: Simulated-time window during which the rule is live.
    not_before: float = 0.0
    not_after: float = float("inf")

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate {self.rate!r} outside [0, 1]")
        if self.not_after < self.not_before:
            raise ValueError("fault window ends before it starts")

    def matches(
        self, url: str, domain: str, *, now: float, is_hint: bool
    ) -> bool:
        if self.hints_only and not is_hint:
            return False
        if self.domain is not None and self.domain != domain:
            return False
        if self.url_substring is not None and self.url_substring not in url:
            return False
        return self.not_before <= now <= self.not_after


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, ordered set of fault rules; first matching rule wins.

    Plans are immutable and picklable, so one plan can be shared by every
    origin server, the HTTP client, and every sweep worker process while
    all of them see the same fault sequence.
    """

    seed: int = 0
    rules: Tuple[FaultRule, ...] = ()

    def with_rule(self, rule: FaultRule) -> "FaultPlan":
        return replace(self, rules=self.rules + (rule,))

    def _decide(
        self,
        kinds,
        url: str,
        domain: str,
        *,
        now: float,
        attempt: int,
        is_hint: bool,
    ) -> Optional[FaultKind]:
        for index, rule in enumerate(self.rules):
            if rule.kind not in kinds:
                continue
            if not rule.matches(url, domain, now=now, is_hint=is_hint):
                continue
            if _unit_roll(self.seed, index, url, attempt) < rule.rate:
                return rule.kind
        return None

    def server_fault(
        self, url: str, domain: str, *, now: float, attempt: int,
        is_hint: bool = False,
    ) -> Optional[FaultKind]:
        """Server-side fault (if any) for this request attempt."""
        return self._decide(
            SERVER_KINDS, url, domain,
            now=now, attempt=attempt, is_hint=is_hint,
        )

    def transport_fault(
        self, url: str, domain: str, *, now: float, attempt: int,
        is_hint: bool = False,
    ) -> Optional[FaultKind]:
        """Transport/link-layer fault (if any) for this request attempt."""
        return self._decide(
            TRANSPORT_KINDS, url, domain,
            now=now, attempt=attempt, is_hint=is_hint,
        )

    def drop_fraction(self, url: str, attempt: int) -> float:
        """How far through the body a CONNECTION_DROP strikes (0.1–0.9)."""
        return 0.1 + 0.8 * _unit_roll(self.seed, "drop", url, attempt)


@dataclass(frozen=True)
class ResiliencePolicy:
    """Client-side knobs that keep loads finishing under faults."""

    #: Per-attempt deadline from request dispatch to last body byte.
    #: Zero disables timeouts entirely (the historical behaviour).
    request_timeout: float = 5.0
    #: Re-dispatches after a failed attempt before giving up.
    max_retries: int = 2
    #: First retry delay; doubles per subsequent retry.
    retry_backoff: float = 0.25

    def __post_init__(self) -> None:
        if self.request_timeout < 0:
            raise ValueError("request_timeout must be non-negative")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.retry_backoff < 0:
            raise ValueError("retry_backoff must be non-negative")


def hint_fault_plan(
    rate: float,
    seed: int = 0,
    kinds: Tuple[FaultKind, ...] = (
        FaultKind.SERVER_ERROR,
        FaultKind.STALL,
        FaultKind.CONNECTION_DROP,
    ),
) -> FaultPlan:
    """A plan that fails hint-driven prefetches at ``rate`` overall.

    The rate is split across ``kinds`` so the combined per-attempt failure
    probability equals ``rate`` (rules roll independently).  ``rate=0``
    returns an empty plan, which never rolls and therefore leaves the
    simulation bit-identical to an unfaulted run.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"fault rate {rate!r} outside [0, 1]")
    if rate == 0.0 or not kinds:
        return FaultPlan(seed=seed)
    per_rule = 1.0 - (1.0 - rate) ** (1.0 / len(kinds))
    rules = tuple(
        FaultRule(kind=kind, rate=per_rule, hints_only=True)
        for kind in kinds
    )
    return FaultPlan(seed=seed, rules=rules)

"""Fig 14: Vroom vs Polaris.

Paper: Vroom's median PLT is 5.1 s vs Polaris's 6.4 s; Polaris wins in the
tail, where pages carry content Vroom's online analysis cannot predict.
"""

from benchmarks.conftest import run_once
from repro.analysis.stats import median, percentile
from repro.experiments import figures
from repro.experiments.report import print_figure


def test_fig14_polaris(benchmark, corpus_size):
    series = run_once(benchmark, figures.fig14_polaris, count=corpus_size)
    print_figure(
        "Fig 14: Vroom vs Polaris PLT (News+Sports)",
        series,
        paper_values={"vroom": 5.1, "polaris": 6.4},
    )
    assert median(series["vroom"]) < median(series["polaris"])
    # Paper note: Polaris overtakes Vroom in the extreme tail (heavy-flux
    # pages where hints run out).  Our corpus reproduces the median
    # ordering; the tail crossover is weaker (see EXPERIMENTS.md), so we
    # only check that the tail distributions stay close.
    tail_ratio = percentile(series["vroom"], 0.9) / percentile(
        series["polaris"], 0.9
    )
    assert tail_ratio < 1.2

"""Deterministic fault injection: plans, timeouts, retries, degradation."""

import pytest

from repro.browser.engine import BrowserConfig, load_page
from repro.core.scheduler import VroomScheduler
from repro.net.faults import (
    ERROR_RESPONSE_BYTES,
    FaultKind,
    FaultPlan,
    FaultRule,
    ResiliencePolicy,
    hint_fault_plan,
)
from repro.net.http import NetworkConfig
from repro.net.origin import OriginServer, Response
from repro.pages.dynamics import LoadStamp
from repro.pages.page import PageBlueprint
from repro.pages.resources import ResourceSpec, ResourceType
from repro.replay.recorder import record_snapshot
from repro.replay.replayer import build_servers

STAMP = LoadStamp(when_hours=10.0)


def tiny_page():
    page = PageBlueprint(name="faulty", root="root")
    page.add(
        ResourceSpec(
            name="root",
            rtype=ResourceType.HTML,
            domain="a.com",
            size=12_000,
        )
    )
    page.add(
        ResourceSpec(
            name="js",
            rtype=ResourceType.JS,
            domain="a.com",
            size=6_000,
            parent="root",
            position=0.4,
        )
    )
    page.add(
        ResourceSpec(
            name="img",
            rtype=ResourceType.IMAGE,
            domain="b.com",
            size=20_000,
            parent="root",
            position=0.7,
        )
    )
    page.validate()
    return page


def materialized():
    page = tiny_page()
    snapshot = page.materialize(STAMP)
    store = record_snapshot(snapshot)
    return snapshot, store


def faulted_load(snapshot, store, net_config, **kwargs):
    return load_page(
        snapshot,
        build_servers(store),
        net_config,
        BrowserConfig(when_hours=STAMP.when_hours),
        **kwargs,
    )


class TestFaultRule:
    def test_rate_outside_unit_interval_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            FaultRule(kind=FaultKind.STALL, rate=1.5)
        with pytest.raises(ValueError, match="rate"):
            FaultRule(kind=FaultKind.STALL, rate=-0.1)

    def test_inverted_window_rejected(self):
        with pytest.raises(ValueError, match="window"):
            FaultRule(kind=FaultKind.STALL, not_before=2.0, not_after=1.0)

    def test_filters(self):
        rule = FaultRule(
            kind=FaultKind.STALL,
            url_substring="ads",
            domain="cdn.com",
            hints_only=True,
            not_before=1.0,
            not_after=2.0,
        )
        ok = dict(now=1.5, is_hint=True)
        assert rule.matches("cdn.com/ads.js", "cdn.com", **ok)
        assert not rule.matches("cdn.com/app.js", "cdn.com", **ok)
        assert not rule.matches("cdn.com/ads.js", "other.com", **ok)
        assert not rule.matches("cdn.com/ads.js", "cdn.com", now=0.5, is_hint=True)
        assert not rule.matches("cdn.com/ads.js", "cdn.com", now=2.5, is_hint=True)
        assert not rule.matches("cdn.com/ads.js", "cdn.com", now=1.5, is_hint=False)


class TestFaultPlan:
    def test_empty_plan_never_faults(self):
        plan = FaultPlan(seed=3)
        for attempt in (1, 2, 3):
            assert plan.server_fault("a.com/x", "a.com", now=0.0, attempt=attempt) is None
            assert plan.transport_fault("a.com/x", "a.com", now=0.0, attempt=attempt) is None

    def test_rate_one_always_fires(self):
        plan = FaultPlan().with_rule(FaultRule(kind=FaultKind.STALL, rate=1.0))
        for attempt in (1, 2, 5):
            assert (
                plan.transport_fault("a.com/x", "a.com", now=0.0, attempt=attempt)
                is FaultKind.STALL
            )

    def test_rate_zero_never_fires(self):
        plan = FaultPlan().with_rule(FaultRule(kind=FaultKind.STALL, rate=0.0))
        assert plan.transport_fault("a.com/x", "a.com", now=0.0, attempt=1) is None

    def test_decisions_deterministic_across_plan_copies(self):
        rule = FaultRule(kind=FaultKind.CONNECTION_DROP, rate=0.5)
        a = FaultPlan(seed=11).with_rule(rule)
        b = FaultPlan(seed=11).with_rule(rule)
        urls = [f"a.com/r{i}.js" for i in range(200)]
        def decide(plan, url):
            return plan.transport_fault(url, "a.com", now=0.0, attempt=1)
        assert [decide(a, url) for url in urls] == [decide(b, url) for url in urls]

    def test_seed_changes_decisions(self):
        rule = FaultRule(kind=FaultKind.CONNECTION_DROP, rate=0.5)
        a = FaultPlan(seed=0).with_rule(rule)
        b = FaultPlan(seed=1).with_rule(rule)
        urls = [f"a.com/r{i}.js" for i in range(200)]
        def decide(plan, url):
            return plan.transport_fault(url, "a.com", now=0.0, attempt=1)
        assert [decide(a, url) for url in urls] != [decide(b, url) for url in urls]

    def test_retries_reroll_per_attempt(self):
        plan = FaultPlan(seed=5).with_rule(
            FaultRule(kind=FaultKind.STALL, rate=0.5)
        )
        outcomes = {
            plan.transport_fault("a.com/x.js", "a.com", now=0.0, attempt=attempt)
            for attempt in range(1, 30)
        }
        assert outcomes == {None, FaultKind.STALL}

    def test_first_matching_rule_wins(self):
        plan = FaultPlan().with_rule(
            FaultRule(kind=FaultKind.STALL, rate=1.0, url_substring="js")
        ).with_rule(
            FaultRule(kind=FaultKind.CONNECTION_DROP, rate=1.0)
        )
        assert (
            plan.transport_fault("a.com/app.js", "a.com", now=0.0, attempt=1)
            is FaultKind.STALL
        )
        assert (
            plan.transport_fault("a.com/logo.png", "a.com", now=0.0, attempt=1)
            is FaultKind.CONNECTION_DROP
        )

    def test_server_and_transport_lanes_are_disjoint(self):
        plan = FaultPlan().with_rule(
            FaultRule(kind=FaultKind.SERVER_ERROR, rate=1.0)
        )
        assert (
            plan.server_fault("a.com/x", "a.com", now=0.0, attempt=1)
            is FaultKind.SERVER_ERROR
        )
        assert plan.transport_fault("a.com/x", "a.com", now=0.0, attempt=1) is None

    def test_drop_fraction_stays_inside_body(self):
        plan = FaultPlan(seed=9)
        for i in range(100):
            fraction = plan.drop_fraction(f"a.com/r{i}", attempt=1)
            assert 0.1 <= fraction <= 0.9


class TestHintFaultPlan:
    def test_zero_rate_is_empty_plan(self):
        assert hint_fault_plan(0.0).rules == ()

    def test_rules_are_hints_only(self):
        plan = hint_fault_plan(0.2)
        assert plan.rules
        assert all(rule.hints_only for rule in plan.rules)

    def test_combined_rate_matches_request(self):
        plan = hint_fault_plan(0.3, seed=1)
        urls = [f"cdn.com/r{i}.js" for i in range(2000)]
        faulted = sum(
            plan.transport_fault(url, "cdn.com", now=0.0, attempt=1, is_hint=True)
            is not None
            or plan.server_fault(url, "cdn.com", now=0.0, attempt=1, is_hint=True)
            is not None
            for url in urls
        )
        assert abs(faulted / len(urls) - 0.3) < 0.05

    def test_non_hints_untouched(self):
        plan = hint_fault_plan(1.0)
        assert plan.transport_fault("a.com/x", "a.com", now=0.0, attempt=1) is None
        assert plan.server_fault("a.com/x", "a.com", now=0.0, attempt=1) is None

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            hint_fault_plan(1.5)


class TestResiliencePolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(request_timeout=-1.0)
        with pytest.raises(ValueError):
            ResiliencePolicy(max_retries=-1)
        with pytest.raises(ValueError):
            ResiliencePolicy(retry_backoff=-0.5)


class TestOriginServerFaults:
    def respond(self, url, is_push):
        return Response(url=url, size=1000)

    def test_server_error_response(self):
        plan = FaultPlan().with_rule(
            FaultRule(kind=FaultKind.SERVER_ERROR, rate=1.0)
        )
        server = OriginServer("a.com", self.respond, fault_plan=plan)
        response = server.respond("a.com/x")
        assert response.error
        assert response.size == ERROR_RESPONSE_BYTES
        assert not response.cacheable
        assert server.errors_served == 1
        assert server.requests_served == 0

    def test_pushes_exempt(self):
        plan = FaultPlan().with_rule(
            FaultRule(kind=FaultKind.SERVER_ERROR, rate=1.0)
        )
        server = OriginServer("a.com", self.respond, fault_plan=plan)
        response = server.respond("a.com/x", is_push=True)
        assert not response.error
        assert server.errors_served == 0


class TestFaultedLoads:
    """End-to-end: faulted loads complete, counters move, zero-fault is
    bit-identical."""

    def test_zero_fault_plan_bit_identical(self):
        snapshot, store = materialized()
        plain = faulted_load(snapshot, store, NetworkConfig())
        clean = faulted_load(
            snapshot,
            store,
            NetworkConfig(
                fault_plan=hint_fault_plan(0.0),
                request_timeout=5.0,
                max_retries=2,
            ),
        )
        assert clean.plt == plain.plt
        assert clean.aft == plain.aft
        assert clean.speed_index == plain.speed_index
        assert clean.bytes_fetched == plain.bytes_fetched
        assert (
            clean.retries,
            clean.timeouts,
            clean.connection_drops,
            clean.error_responses,
            clean.failed_fetches,
            clean.fault_wasted_bytes,
        ) == (0, 0, 0, 0, 0, 0.0)

    def test_stall_then_timeout_then_retry_succeeds(self):
        """A stall inside a short time window: the first attempt times out
        and the retry, dispatched after the window closed, succeeds."""
        snapshot, store = materialized()
        plan = FaultPlan().with_rule(
            FaultRule(
                kind=FaultKind.STALL,
                rate=1.0,
                url_substring="js",
                not_after=1.0,
            )
        )
        metrics = faulted_load(
            snapshot,
            store,
            NetworkConfig(
                fault_plan=plan, request_timeout=1.5, max_retries=3
            ),
        )
        assert metrics.plt > 0
        assert metrics.timeouts >= 1
        assert metrics.retries >= 1
        assert metrics.failed_fetches == 0
        js_url = snapshot.find("js").url
        assert metrics.timelines[js_url].fetched_at is not None

    def test_stall_without_timeout_wedges_loudly(self):
        snapshot, store = materialized()
        plan = FaultPlan().with_rule(
            FaultRule(kind=FaultKind.STALL, rate=1.0, url_substring="js")
        )
        from repro.browser.engine import PageLoadEngine

        engine = PageLoadEngine(
            snapshot,
            build_servers(store),
            NetworkConfig(fault_plan=plan),
            BrowserConfig(when_hours=STAMP.when_hours),
        )
        with pytest.raises(RuntimeError, match="never fired onload"):
            engine.run(time_limit=30.0)

    def test_server_error_retries_and_counts_waste(self):
        snapshot, store = materialized()
        plan = FaultPlan().with_rule(
            FaultRule(
                kind=FaultKind.SERVER_ERROR,
                rate=1.0,
                url_substring="js",
                not_after=1.0,
            )
        )
        metrics = faulted_load(
            snapshot,
            store,
            NetworkConfig(fault_plan=plan, max_retries=3, retry_backoff=0.3),
        )
        assert metrics.plt > 0
        assert metrics.error_responses >= 1
        assert metrics.retries >= 1
        assert metrics.failed_fetches == 0
        assert metrics.fault_wasted_bytes > 0

    def test_connection_drop_wastes_partial_body(self):
        snapshot, store = materialized()
        plan = FaultPlan().with_rule(
            FaultRule(
                kind=FaultKind.CONNECTION_DROP,
                rate=1.0,
                url_substring="img",
                not_after=2.0,
            )
        )
        metrics = faulted_load(
            snapshot,
            store,
            NetworkConfig(fault_plan=plan, max_retries=5, retry_backoff=0.3),
        )
        assert metrics.plt > 0
        assert metrics.connection_drops >= 1
        assert metrics.fault_wasted_bytes > 0

    def test_slow_start_reset_completes_and_slows(self):
        snapshot, store = materialized()
        baseline = faulted_load(snapshot, store, NetworkConfig())
        plan = FaultPlan().with_rule(
            FaultRule(kind=FaultKind.SLOW_START_RESET, rate=1.0)
        )
        metrics = faulted_load(
            snapshot, store, NetworkConfig(fault_plan=plan)
        )
        assert metrics.plt >= baseline.plt
        assert metrics.failed_fetches == 0
        assert metrics.retries == 0

    def test_exhausted_retries_fail_load_still_completes(self):
        """A locally needed resource that never arrives is written off
        with browser error-event semantics; onload still fires."""
        snapshot, store = materialized()
        plan = FaultPlan().with_rule(
            FaultRule(kind=FaultKind.STALL, rate=1.0, url_substring="img")
        )
        metrics = faulted_load(
            snapshot,
            store,
            NetworkConfig(
                fault_plan=plan, request_timeout=1.0, max_retries=1
            ),
        )
        assert metrics.plt > 0
        assert metrics.failed_fetches >= 1
        assert metrics.timeouts >= 2  # every attempt timed out
        img_url = snapshot.find("img").url
        assert metrics.timelines[img_url].failed
        assert metrics.timelines[img_url].fetched_at is None

    def test_failed_root_raises(self):
        """A navigation whose HTML never arrives has no meaningful PLT."""
        snapshot, store = materialized()
        plan = FaultPlan().with_rule(
            FaultRule(kind=FaultKind.STALL, rate=1.0, url_substring="root")
        )
        from repro.browser.engine import PageLoadEngine

        engine = PageLoadEngine(
            snapshot,
            build_servers(store),
            NetworkConfig(
                fault_plan=plan, request_timeout=0.2, max_retries=1
            ),
            BrowserConfig(when_hours=STAMP.when_hours),
        )
        with pytest.raises(RuntimeError):
            engine.run(time_limit=30.0)


class TestHintDegradation:
    """Failed hint prefetches fall back to vanilla local discovery."""

    @staticmethod
    def chained_page():
        """root -> scriptA (static) -> scriptB (script-computed).

        scriptB's URL is only discoverable locally when scriptA executes,
        so a hint prefetch for it can fail terminally well before the page
        references it — exercising the refetch-on-local-reference path.
        """
        from repro.pages.resources import Discovery

        page = PageBlueprint(name="chained", root="root")
        page.add(
            ResourceSpec(
                name="root",
                rtype=ResourceType.HTML,
                domain="a.com",
                size=12_000,
            )
        )
        page.add(
            ResourceSpec(
                name="scriptA",
                rtype=ResourceType.JS,
                domain="a.com",
                size=6_000,
                parent="root",
                position=0.3,
            )
        )
        page.add(
            ResourceSpec(
                name="scriptB",
                rtype=ResourceType.JS,
                domain="a.com",
                size=4_000,
                parent="scriptA",
                discovery=Discovery.SCRIPT_COMPUTED,
            )
        )
        page.validate()
        return page

    def hinted_servers(self, snapshot, store):
        from repro.core.hints import DependencyHint
        from repro.pages.resources import Priority

        hinted_url = snapshot.find("scriptB").url

        def decorate(recorded, response, is_push):
            if recorded.is_html:
                response.hints = [
                    DependencyHint(url=hinted_url, priority=Priority.PRELOAD)
                ]
            return response

        return build_servers(store, decorator=decorate)

    def test_hint_failure_falls_back_to_local_discovery(self):
        """The hint prefetch dies terminally before the page references
        the URL; the later local reference re-requests it as a non-hint
        and the load completes with the bytes."""
        page = self.chained_page()
        snapshot = page.materialize(STAMP)
        store = record_snapshot(snapshot)
        plan = FaultPlan().with_rule(
            FaultRule(kind=FaultKind.SERVER_ERROR, rate=1.0, hints_only=True)
        )
        metrics = load_page(
            snapshot,
            self.hinted_servers(snapshot, store),
            NetworkConfig(fault_plan=plan, max_retries=0),
            BrowserConfig(when_hours=STAMP.when_hours),
            policy=VroomScheduler(),
        )
        assert metrics.plt > 0
        assert metrics.failed_fetches >= 1
        assert metrics.error_responses >= 1
        # The locally needed script recovered through the fallback path.
        hinted = metrics.timelines[snapshot.find("scriptB").url]
        assert hinted.failed
        assert hinted.fetched_at is not None
        assert hinted.processed_at is not None

    def test_hints_only_plan_spares_unhinted_loads(self):
        """The same plan under a hint-free baseline never rolls a fault."""
        snapshot, store = materialized()
        plan = FaultPlan().with_rule(
            FaultRule(kind=FaultKind.STALL, rate=1.0, hints_only=True)
        )
        plain = faulted_load(snapshot, store, NetworkConfig())
        faulted = faulted_load(
            snapshot,
            store,
            NetworkConfig(
                fault_plan=plan, request_timeout=5.0, max_retries=2
            ),
        )
        assert faulted.plt == plain.plt
        assert faulted.failed_fetches == 0
        assert faulted.timeouts == 0

    def test_failed_parent_writes_off_orphaned_prefetches(self):
        """scriptA dies terminally as a locally needed resource, so the
        execution that would reference scriptB never runs.  scriptB's
        hint prefetch succeeded, but its process obligation must be
        written off with its failed ancestor — the load completes
        instead of wedging on a script that can never be referenced."""
        page = self.chained_page()
        snapshot = page.materialize(STAMP)
        store = record_snapshot(snapshot)
        a_url = snapshot.find("scriptA").url
        plan = FaultPlan().with_rule(
            FaultRule(
                kind=FaultKind.SERVER_ERROR, rate=1.0, url_substring=a_url
            )
        )
        metrics = load_page(
            snapshot,
            self.hinted_servers(snapshot, store),
            NetworkConfig(fault_plan=plan, max_retries=1),
            BrowserConfig(when_hours=STAMP.when_hours),
            policy=VroomScheduler(),
        )
        assert metrics.plt > 0
        assert metrics.timelines[a_url].failed
        orphan = metrics.timelines[snapshot.find("scriptB").url]
        assert orphan.fetched_at is not None
        assert orphan.processed_at is None

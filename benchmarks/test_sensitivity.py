"""Sensitivity of the headline conclusion to calibration constants."""

from benchmarks.conftest import run_once
from repro.experiments.sensitivity import sensitivity_sweep


def test_sensitivity(benchmark):
    result = run_once(benchmark, sensitivity_sweep, count=6)
    print("== Vroom/HTTP2 median PLT ratio under calibration perturbation ==")
    print("(below 1.0 = Vroom wins; 1.0x column is the calibrated point)")
    for knob, ratios in result.items():
        row = "  ".join(
            f"{mult:.1f}x:{ratio:.2f}" for mult, ratio in sorted(ratios.items())
        )
        print(f"{knob:<10} {row}")
    # The conclusion must hold at the calibrated point and at every
    # non-pathological perturbation of each knob.
    for knob, ratios in result.items():
        assert ratios[1.0] < 0.95, knob
        for multiplier, ratio in ratios.items():
            assert ratio < 1.1, (knob, multiplier)

"""Edge cases for the hint-driven schedulers.

Covers duplicate hints, hints arriving after the stage machine has
advanced, hint URLs the snapshot cannot serve, and the regression where
an early ``on_fetched`` could advance the stage machine past PRELOAD
before the root's headers had delivered any hints.
"""

from types import SimpleNamespace

import pytest

from repro.browser.engine import BrowserConfig, PageLoadEngine
from repro.core.hints import DependencyHint
from repro.core.scheduler import (
    FetchAsapScheduler,
    TwoStageScheduler,
    VroomScheduler,
)
from repro.net.http import NetworkConfig
from repro.pages.dynamics import LoadStamp
from repro.pages.page import PageBlueprint
from repro.pages.resources import Priority, ResourceSpec, ResourceType
from repro.replay.recorder import record_snapshot
from repro.replay.replayer import build_servers

STAMP = LoadStamp(when_hours=10.0)


def hinted_page():
    page = PageBlueprint(name="edge", root="root")
    page.add(
        ResourceSpec(
            name="root", rtype=ResourceType.HTML, domain="a.com",
            size=12_000,
        )
    )
    page.add(
        ResourceSpec(
            name="js", rtype=ResourceType.JS, domain="a.com",
            size=4_000, parent="root", position=0.3,
        )
    )
    page.add(
        ResourceSpec(
            name="img", rtype=ResourceType.IMAGE, domain="a.com",
            size=8_000, parent="root", position=0.8,
        )
    )
    page.validate()
    return page


def run_with_hints(policy, hints_for_root, page=None):
    """Load ``page`` with ``hints_for_root`` attached to the root HTML."""
    page = page or hinted_page()
    snapshot = page.materialize(STAMP)
    store = record_snapshot(snapshot)
    root_url = snapshot.root.url

    def decorate(recorded, response, is_push):
        if recorded.url == root_url:
            response.hints = list(hints_for_root(snapshot))
        return response

    engine = PageLoadEngine(
        snapshot,
        build_servers(store, decorator=decorate),
        NetworkConfig(),
        BrowserConfig(when_hours=STAMP.when_hours),
        policy=policy,
    )
    return engine, engine.run(time_limit=60.0)


SCHEDULERS = [VroomScheduler, TwoStageScheduler, FetchAsapScheduler]


class TestDuplicateHints:
    """The same URL hinted twice must fetch once and never wedge."""

    @staticmethod
    def doubled(snapshot):
        url = snapshot.find("js").url
        hint = DependencyHint(url=url, priority=Priority.PRELOAD)
        return [hint, DependencyHint(url=url, priority=Priority.PRELOAD)]

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_load_completes(self, scheduler):
        engine, metrics = run_with_hints(scheduler(), self.doubled)
        assert metrics.plt > 0

    @pytest.mark.parametrize("scheduler", [VroomScheduler, TwoStageScheduler])
    def test_hint_recorded_once(self, scheduler):
        engine, _ = run_with_hints(scheduler(), self.doubled)
        js_url = engine.snapshot.find("js").url
        assert engine.policy._hinted[Priority.PRELOAD].count(js_url) == 1

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_no_duplicate_fetch(self, scheduler):
        """start_fetch is idempotent: one network transfer per URL."""
        engine, metrics = run_with_hints(scheduler(), self.doubled)
        js = engine.snapshot.find("js")
        timeline = metrics.timelines[js.url]
        assert timeline.fetched_at is not None
        assert metrics.bytes_fetched <= sum(
            r.size for r in engine.snapshot.all_resources()
        ) + 2_000  # overhead slack; a double fetch would add 4 KB


class TestHintsAbsentFromSnapshot:
    """A hint the replay store cannot serve must fail loudly."""

    @staticmethod
    def ghost(snapshot):
        return [
            DependencyHint(
                url="a.com/not-recorded.js", priority=Priority.PRELOAD
            )
        ]

    @pytest.mark.parametrize(
        "scheduler", [TwoStageScheduler, FetchAsapScheduler]
    )
    def test_unrecorded_hint_raises(self, scheduler):
        with pytest.raises((KeyError, RuntimeError)):
            run_with_hints(scheduler(), self.ghost)


class _StubEngine:
    """Just enough engine surface to drive a scheduler by hand."""

    def __init__(self, root_url="a.com/root.html"):
        # call_soon defers like the real simulator: callbacks queued
        # during one event run after that event completes.
        self._pending = []
        self.sim = SimpleNamespace(
            now=0.0, call_soon=self._pending.append
        )
        self.cpu = SimpleNamespace(between_tasks=self._pending.append)
        self.client = SimpleNamespace(preconnect=lambda domain: None)
        self.snapshot = SimpleNamespace(
            root=SimpleNamespace(url=root_url)
        )
        self.snapshot_urls = {}
        self.started = []
        self._states = {}

    def state_of(self, url):
        if url not in self._states:
            self._states[url] = SimpleNamespace(
                timeline=SimpleNamespace(
                    discovered_at=None,
                    discovered_via=None,
                    discovered_from=None,
                )
            )
        return self._states[url]

    def start_fetch(self, url, priority=1.0):
        self.started.append(url)

    def flush(self):
        while self._pending:
            self._pending.pop(0)()


def _headers(url, hints):
    response = SimpleNamespace(
        url=url, size=1_000, think_time=0.0, hints=hints, pushes=[],
        meta={}, cacheable=True, error=False,
    )
    return SimpleNamespace(url=url, response=response)


class TestStageGate:
    """Regression: fetches settling before the root's headers must not
    advance the stage machine — the preload hint list is still empty,
    and advancing would fetch later-arriving unimportant hints ASAP."""

    def test_early_fetch_does_not_advance_stage(self):
        engine = _StubEngine()
        policy = VroomScheduler(js_single_thread=False)
        policy.attach(engine)
        policy.on_fetched("a.com/warm-cache-hit.css")
        engine.flush()
        assert policy.stage is Priority.PRELOAD

    def test_late_preload_hints_still_gate_unimportant(self):
        engine = _StubEngine()
        policy = VroomScheduler(js_single_thread=False)
        policy.attach(engine)
        # An unrelated resource settles first (e.g. a cache hit).
        policy.on_fetched("a.com/warm-cache-hit.css")
        engine.flush()
        # Root headers then deliver both a preload and an unimportant
        # hint; only the preload may fetch until the stage drains.
        policy.on_headers(
            _headers(
                engine.snapshot.root.url,
                [
                    DependencyHint(
                        url="a.com/critical.js", priority=Priority.PRELOAD
                    ),
                    DependencyHint(
                        url="a.com/footer.png", priority=Priority.UNIMPORTANT
                    ),
                ],
            )
        )
        engine.flush()
        assert engine.started == ["a.com/critical.js"]
        # Once the preload drains, the held-back hint is released.
        policy.on_fetched("a.com/critical.js")
        engine.flush()
        assert "a.com/footer.png" in engine.started

    def test_root_failure_opens_the_gate(self):
        """A root that dies still settles the gate: no hints are coming,
        so stages must not wedge waiting for headers."""
        engine = _StubEngine()
        policy = VroomScheduler(js_single_thread=False)
        policy.attach(engine)
        policy.on_fetch_failed(engine.snapshot.root.url)
        engine.flush()
        assert policy.stage is Priority.UNIMPORTANT

    def test_failed_hint_not_repumped(self):
        """A terminally failed hint fetch must not be re-issued by the
        stage pump — recovery belongs to local discovery."""
        engine = _StubEngine()
        policy = VroomScheduler(js_single_thread=False)
        policy.attach(engine)
        policy.on_headers(
            _headers(
                engine.snapshot.root.url,
                [
                    DependencyHint(
                        url="a.com/flaky.js", priority=Priority.PRELOAD
                    )
                ],
            )
        )
        engine.flush()
        assert engine.started == ["a.com/flaky.js"]
        policy.on_fetch_failed("a.com/flaky.js")
        engine.flush()
        policy._pump()
        assert engine.started == ["a.com/flaky.js"]
        # A local reference may still re-request it.
        policy.on_discovered("a.com/flaky.js", via="script")
        assert engine.started == ["a.com/flaky.js", "a.com/flaky.js"]


class TestHintsAfterStageAdvance:
    """Hints that arrive once the stage machine is already past their
    class fetch immediately instead of waiting for a transition that
    will never recur."""

    def test_unimportant_hint_after_advance_is_fetched(self):
        engine = _StubEngine()
        policy = VroomScheduler(js_single_thread=False)
        policy.attach(engine)
        # Root settles with no hints: stages drain straight through.
        policy.on_headers(_headers(engine.snapshot.root.url, []))
        policy.on_fetched(engine.snapshot.root.url)
        engine.flush()
        assert policy.stage is Priority.UNIMPORTANT
        # A late document now hints an unimportant resource.
        policy.on_headers(
            _headers(
                "a.com/iframe.html",
                [
                    DependencyHint(
                        url="a.com/late.png", priority=Priority.UNIMPORTANT
                    )
                ],
            )
        )
        assert "a.com/late.png" in engine.started

    def test_two_stage_promotes_late_semi_important(self):
        engine = _StubEngine()
        policy = TwoStageScheduler(js_single_thread=False)
        policy.attach(engine)
        policy.on_headers(
            _headers(
                engine.snapshot.root.url,
                [
                    DependencyHint(
                        url="a.com/async.js",
                        priority=Priority.SEMI_IMPORTANT,
                    )
                ],
            )
        )
        # Promotion folds the middle class into PRELOAD: it fetches
        # immediately and never lands in the semi-important bucket.
        assert engine.started == ["a.com/async.js"]
        assert policy._hinted[Priority.SEMI_IMPORTANT] == []

"""Callee module: heated transitively from ``engine.tick``.

Never imported at test time — parsed and scanned as text, like the
other rule fixtures.
"""

import random


class Kind:
    ALPHA = 1
    BETA = 2


class Gadget:
    """No ``__slots__``: instantiating this in a hot region is PERF405."""

    def __init__(self, value):
        self.value = value


class Slotted:
    """Slotted twin of :class:`Gadget` — must never be flagged."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value


class HelperError(RuntimeError):
    """Raised from hot code; exceptions stay cold by definition."""


def make_rng(seed):
    """Hot via the ``tick -> make_rng`` edge."""
    return random.Random(seed)  # expect: PERF402


def cold_helper(jobs):
    """Unreachable from any seed: the same pattern must stay silent."""
    out = []
    for job in jobs:
        out.extend([job for job in jobs])
    return out

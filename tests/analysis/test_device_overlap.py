"""Tests for cross-device stable-set overlap (Fig 9)."""

import statistics

from repro.analysis.device_overlap import (
    intersection_over_union,
    iou_distributions,
)


class TestIoU:
    def test_self_iou_is_one(self, page, stamp):
        assert intersection_over_union(
            page, stamp, "nexus6", "nexus6"
        ) == 1.0

    def test_symmetric(self, page, stamp):
        ab = intersection_over_union(page, stamp, "nexus6", "nexus10")
        ba = intersection_over_union(page, stamp, "nexus10", "nexus6")
        assert ab == ba

    def test_bounds(self, page, stamp):
        iou = intersection_over_union(page, stamp, "nexus6", "nexus10")
        assert 0.0 <= iou <= 1.0

    def test_phone_pair_overlaps_more_than_tablet(self, corpus, stamp):
        """Fig 9: the OnePlus 3 matches a Nexus 6 far better than the
        Nexus 10 tablet does."""
        phone = [
            intersection_over_union(page, stamp, "nexus6", "oneplus3")
            for page in corpus
        ]
        tablet = [
            intersection_over_union(page, stamp, "nexus6", "nexus10")
            for page in corpus
        ]
        assert statistics.median(phone) > statistics.median(tablet)

    def test_same_class_devices_identical_stable_sets(self, corpus, stamp):
        """Phones share an equivalence class, so their stable sets agree
        exactly in our model (emulation uses the class representative)."""
        for page in corpus[:3]:
            assert intersection_over_union(
                page, stamp, "nexus6", "oneplus3"
            ) == 1.0


class TestDistributions:
    def test_shape(self, corpus, stamp):
        dists = iou_distributions(corpus[:3], stamp)
        assert set(dists) == {"oneplus3", "nexus10"}
        for values in dists.values():
            assert len(values) == 3

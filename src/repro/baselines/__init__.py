"""Baselines and comparison configurations.

* :mod:`repro.baselines.configs` — every named configuration the paper
  evaluates (HTTP/1.1, HTTP/2 baseline, the push/hint strawmen, Vroom and
  its partial-adoption variant).
* :mod:`repro.baselines.polaris` — a Polaris-style client prioritizer.
* :mod:`repro.baselines.lower_bound` — the CPU-bound / network-bound
  bounds of Sec 2.
"""

from repro.baselines.configs import CONFIG_NAMES, run_config
from repro.baselines.lower_bound import (
    cpu_bound_load,
    lower_bound,
    network_bound_load,
)
from repro.baselines.polaris import PolarisScheduler, polaris_load

__all__ = [
    "CONFIG_NAMES",
    "run_config",
    "cpu_bound_load",
    "network_bound_load",
    "lower_bound",
    "PolarisScheduler",
    "polaris_load",
]

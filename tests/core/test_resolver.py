"""Unit tests for the combined Vroom resolver and its strawmen."""

import pytest

from repro.core.resolver import (
    ResolutionStrategy,
    VroomResolver,
    processing_order_key,
)
from repro.pages.resources import Discovery, Priority


@pytest.fixture(scope="module")
def resolvers(request):
    return {}


def make_resolver(page, strategy):
    return VroomResolver(page, strategy=strategy)


class TestEnvelope:
    def test_envelope_excludes_iframe_descendants(self, page, snapshot):
        resolver = make_resolver(page, ResolutionStrategy.VROOM)
        envelope = resolver.envelope_names(snapshot.root.name)
        for resource in snapshot.all_resources():
            if resource.in_iframe:
                assert resource.name not in envelope

    def test_envelope_includes_iframe_urls_themselves(self, page, snapshot):
        resolver = make_resolver(page, ResolutionStrategy.VROOM)
        envelope = resolver.envelope_names(snapshot.root.name)
        for doc in snapshot.documents():
            if doc.parent is snapshot.root:
                assert doc.name in envelope

    def test_envelope_includes_script_and_css_derived(self, page, snapshot):
        resolver = make_resolver(page, ResolutionStrategy.VROOM)
        envelope = resolver.envelope_names(snapshot.root.name)
        derived = [
            r
            for r in snapshot.all_resources()
            if not r.in_iframe
            and r.parent is not None
            and r.spec.discovery is not Discovery.STATIC_MARKUP
        ]
        for resource in derived:
            assert resource.name in envelope

    def test_envelope_cached(self, page, snapshot):
        resolver = make_resolver(page, ResolutionStrategy.VROOM)
        first = resolver.envelope_names(snapshot.root.name)
        assert resolver.envelope_names(snapshot.root.name) is first


class TestVroomHints:
    def test_no_hints_under_none_strategy(self, page, snapshot, stamp):
        resolver = make_resolver(page, ResolutionStrategy.NONE)
        bundle = resolver.hints_for(
            snapshot.root, as_of_hours=stamp.when_hours
        )
        assert len(bundle) == 0

    def test_hints_cover_static_children_exactly(self, page, snapshot, stamp):
        """Online analysis guarantees every static child of the served
        HTML instance is hinted, nonce or not."""
        resolver = make_resolver(page, ResolutionStrategy.VROOM)
        bundle = resolver.hints_for(
            snapshot.root, as_of_hours=stamp.when_hours
        )
        hinted = set(bundle.urls())
        for child in snapshot.root.children:
            if child.spec.discovery is Discovery.STATIC_MARKUP:
                assert child.url in hinted

    def test_hints_never_cross_iframe_boundary(self, page, snapshot, stamp):
        resolver = make_resolver(page, ResolutionStrategy.VROOM)
        bundle = resolver.hints_for(
            snapshot.root, as_of_hours=stamp.when_hours
        )
        in_iframe_urls = {
            r.url for r in snapshot.all_resources() if r.in_iframe
        }
        assert not (set(bundle.urls()) & in_iframe_urls)

    def test_user_state_script_children_excluded(self, page, snapshot, stamp):
        resolver = make_resolver(page, ResolutionStrategy.VROOM)
        bundle = resolver.hints_for(
            snapshot.root, as_of_hours=stamp.when_hours
        )
        hinted = set(bundle.urls())
        for resource in snapshot.all_resources():
            parent = resource.parent
            if (
                parent is not None
                and parent.spec.user_state_script
                and resource.spec.discovery is Discovery.SCRIPT_COMPUTED
            ):
                assert resource.url not in hinted

    def test_stable_script_computed_resources_hinted(
        self, page, snapshot, stamp
    ):
        resolver = make_resolver(page, ResolutionStrategy.VROOM)
        bundle = resolver.hints_for(
            snapshot.root, as_of_hours=stamp.when_hours
        )
        hinted = set(bundle.urls())
        stable_computed = [
            r
            for r in snapshot.all_resources()
            if not r.in_iframe
            and r.spec.discovery is Discovery.SCRIPT_COMPUTED
            and r.spec.lifetime_hours is None
            and not r.spec.unpredictable
            and not r.spec.personalized
            and not (r.parent and r.parent.spec.user_state_script)
        ]
        for resource in stable_computed:
            assert resource.url in hinted, resource.name

    def test_hint_priorities_match_resource_classes(
        self, page, snapshot, stamp
    ):
        resolver = make_resolver(page, ResolutionStrategy.VROOM)
        bundle = resolver.hints_for(
            snapshot.root, as_of_hours=stamp.when_hours
        )
        by_url = snapshot.by_url()
        for hint in bundle:
            resource = by_url.get(hint.url)
            if resource is not None:
                assert hint.priority is resource.priority

    def test_preload_hints_ordered_for_processing(
        self, page, snapshot, stamp
    ):
        resolver = make_resolver(page, ResolutionStrategy.VROOM)
        bundle = resolver.hints_for(
            snapshot.root, as_of_hours=stamp.when_hours
        )
        preload = bundle.by_priority(Priority.PRELOAD)
        orders = [hint.order for hint in preload]
        assert orders == sorted(orders)


class TestStrawmen:
    def test_online_only_misses_script_computed(self, page, snapshot, stamp):
        resolver = make_resolver(page, ResolutionStrategy.ONLINE_ONLY)
        returned = resolver.dependency_urls(
            snapshot.root, as_of_hours=stamp.when_hours
        )
        # Online-only DOES see script children (it executes a full load),
        # but its nonce URLs differ from the client's.
        client_nonce = {
            r.url
            for r in snapshot.all_resources()
            if r.spec.unpredictable and not r.in_iframe
        }
        assert not (returned & client_nonce)

    def test_offline_only_misses_fresh_rotations(self, corpus, stamp):
        """A resource that rotated within the offline window is missed."""
        for page in corpus:
            snapshot = page.materialize(stamp)
            resolver = make_resolver(page, ResolutionStrategy.OFFLINE_ONLY)
            returned = resolver.dependency_urls(
                snapshot.root, as_of_hours=stamp.when_hours
            )
            vroom = make_resolver(page, ResolutionStrategy.VROOM)
            vroom_returned = vroom.dependency_urls(
                snapshot.root, as_of_hours=stamp.when_hours
            )
            current = set(snapshot.urls())
            assert len(vroom_returned & current) >= len(returned & current)

    def test_prev_load_returns_more_than_stable(self, page, snapshot, stamp):
        prev = make_resolver(page, ResolutionStrategy.PREV_LOAD)
        offline = make_resolver(page, ResolutionStrategy.OFFLINE_ONLY)
        prev_urls = prev.dependency_urls(
            snapshot.root, as_of_hours=stamp.when_hours
        )
        offline_urls = offline.dependency_urls(
            snapshot.root, as_of_hours=stamp.when_hours
        )
        assert len(prev_urls) >= len(offline_urls)


class TestProcessingOrder:
    def test_root_children_ordered_by_position(self, snapshot):
        children = [
            c
            for c in snapshot.root.children
            if c.spec.discovery is Discovery.STATIC_MARKUP
        ]
        keys = [processing_order_key(c) for c in children]
        positions = [c.spec.position for c in children]
        assert keys == positions

    def test_chained_scripts_after_parents(self, snapshot):
        for resource in snapshot.all_resources():
            if resource.parent is not None and resource.parent.parent is not None:
                assert processing_order_key(resource) > processing_order_key(
                    resource.parent
                )

"""Waterfall rendering: the classic devtools view of one page load.

Turns a :class:`~repro.browser.metrics.LoadMetrics` into a text waterfall
— one row per resource with discovery/fetch/processing spans on a shared
time axis — plus summary statistics.  Used by the audit example, the CLI,
and by humans debugging why a load behaved the way it did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.browser.metrics import LoadMetrics

#: Characters used for the span bands.
_WAIT = "."      # discovered, not yet fetching (scheduler hold)
_NET = "="       # bytes in flight
_CPU = "#"       # processing (parse/execute)


@dataclass
class WaterfallRow:
    """One rendered resource row."""

    url: str
    kind: str
    via: str
    discovered_at: float
    fetch_started_at: Optional[float]
    fetched_at: Optional[float]
    processed_at: Optional[float]

    def render(self, width: int, horizon: float) -> str:
        cells = [" "] * width

        def slot(time: Optional[float]) -> Optional[int]:
            if time is None or horizon <= 0:
                return None
            return min(width - 1, int(time / horizon * (width - 1)))

        start = slot(self.discovered_at)
        fetch = slot(self.fetch_started_at)
        done = slot(self.fetched_at)
        processed = slot(self.processed_at)
        if start is not None and fetch is not None:
            for index in range(start, fetch):
                cells[index] = _WAIT
        if fetch is not None and done is not None:
            for index in range(fetch, max(done, fetch + 1)):
                cells[index] = _NET
        if done is not None and processed is not None:
            for index in range(done, max(processed, done + 1)):
                cells[index] = _CPU
        label = self.url[-34:].rjust(34)
        return f"{label} {self.kind:<5} {self.via:<7} |{''.join(cells)}|"


def waterfall_rows(metrics: LoadMetrics) -> List[WaterfallRow]:
    """Rows for every referenced resource, in discovery order."""
    rows = []
    for timeline in metrics.referenced_timelines():
        if timeline.discovered_at is None:
            continue
        rows.append(
            WaterfallRow(
                url=timeline.url,
                kind=(
                    timeline.resource.rtype.value
                    if timeline.resource
                    else "?"
                ),
                via=timeline.discovered_via,
                discovered_at=timeline.discovered_at,
                fetch_started_at=timeline.fetch_started_at,
                fetched_at=timeline.fetched_at,
                processed_at=timeline.processed_at,
            )
        )
    rows.sort(key=lambda row: row.discovered_at)
    return rows


def render_waterfall(
    metrics: LoadMetrics, width: int = 72, max_rows: int = 40
) -> str:
    """Render the load as a text waterfall with a header and legend."""
    rows = waterfall_rows(metrics)
    horizon = metrics.plt
    lines = [
        f"waterfall of {metrics.page!r}: plt={metrics.plt:.2f}s "
        f"aft={metrics.aft:.2f}s cpu_busy={metrics.cpu_busy_time:.2f}s",
        f"legend: '{_WAIT}' scheduled  '{_NET}' network  '{_CPU}' cpu   "
        f"axis 0..{horizon:.2f}s",
    ]
    shown = rows[:max_rows]
    for row in shown:
        lines.append(row.render(width, horizon))
    if len(rows) > max_rows:
        lines.append(f"... {len(rows) - max_rows} more resources")
    return "\n".join(lines)


def summarize_phases(metrics: LoadMetrics) -> dict:
    """Aggregate load anatomy: when discovery/fetch/processing finished.

    A compact numerical companion to the waterfall, convenient for
    comparisons across configurations.
    """
    return {
        "plt": metrics.plt,
        "aft": metrics.aft,
        "discovery_complete": metrics.discovery_complete_at(),
        "high_priority_discovery_complete": metrics.discovery_complete_at(
            high_priority_only=True
        ),
        "fetch_complete": metrics.fetch_complete_at(),
        "cpu_busy": metrics.cpu_busy_time,
        "network_wait_fraction": metrics.network_wait_fraction,
        "bytes_fetched": metrics.bytes_fetched,
        "wasted_bytes": metrics.wasted_bytes,
        "resources": len(metrics.referenced_timelines()),
        "cached": sum(
            1 for t in metrics.referenced_timelines() if t.from_cache
        ),
        "pushed": sum(
            1 for t in metrics.referenced_timelines() if t.pushed
        ),
    }

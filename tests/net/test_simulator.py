"""Unit tests for the discrete-event engine."""

import pytest

from repro.net.simulator import ArraySimulator, Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_schedule_order(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append(1))
        sim.schedule(1.0, lambda: order.append(2))
        sim.schedule(1.0, lambda: order.append(3))
        sim.run()
        assert order == [1, 2, 3]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-0.1, lambda: None)

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        assert sim.run() == 5.0
        assert seen == [5.0]

    def test_schedule_at_absolute(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: sim.schedule_at(4.0, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [4.0]

    def test_schedule_at_in_past_clamps_to_now(self):
        sim = Simulator()
        seen = []

        def later():
            sim.schedule_at(0.5, lambda: seen.append(sim.now))

        sim.schedule(2.0, later)
        sim.run()
        assert seen == [2.0]

    def test_call_soon_runs_after_pending_same_time(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: (order.append("first"), sim.call_soon(lambda: order.append("soon")))[0])
        sim.schedule(1.0, lambda: order.append("second"))
        sim.run()
        assert order == ["first", "second", "soon"]


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sim = Simulator()
        seen = []
        event = sim.schedule(1.0, lambda: seen.append("no"))
        event.cancel()
        sim.run()
        assert seen == []

    def test_peek_time_skips_cancelled(self):
        sim = Simulator()
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        first.cancel()
        assert sim.peek_time() == 2.0

    def test_pending_counts_live_events(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        dead = sim.schedule(2.0, lambda: None)
        dead.cancel()
        assert sim.pending() == 1

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        dead = sim.schedule(2.0, lambda: None)
        dead.cancel()
        dead.cancel()
        assert sim.pending() == 1

    def test_cancel_after_execution_does_not_skew_pending(self):
        sim = Simulator()
        events = []
        events.append(sim.schedule(1.0, lambda: None))
        sim.run()
        events[0].cancel()  # already executed; must not affect accounting
        sim.schedule(2.0, lambda: None)
        assert sim.pending() == 1

    def test_mass_cancellation_compacts_heap(self):
        sim = Simulator()
        live = sim.schedule(500.0, lambda: None)
        doomed = [sim.schedule(float(i + 1), lambda: None) for i in range(200)]
        for event in doomed:
            event.cancel()
        assert sim.compactions >= 1
        assert sim.pending() == 1
        assert sim.peek_time() == 500.0
        live.cancel()
        assert sim.pending() == 0

    def test_order_preserved_across_compaction(self):
        sim = Simulator()
        order = []
        keepers = [
            sim.schedule(float(i), lambda i=i: order.append(i))
            for i in range(5)
        ]
        doomed = [
            sim.schedule(float(i) + 0.5, lambda: order.append(-1))
            for i in range(200)
        ]
        for event in doomed:
            event.cancel()
        assert sim.compactions >= 1
        sim.run()
        assert order == [0, 1, 2, 3, 4]
        assert keepers[0].sim is None


class TestRunControls:
    def test_until_pauses_clock(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(10.0, lambda: seen.append(2))
        sim.run(until=5.0)
        assert seen == [1]
        assert sim.now == 5.0
        sim.run()
        assert seen == [1, 2]

    def test_max_events_guard(self):
        sim = Simulator()

        def loop():
            sim.schedule(0.0, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(RuntimeError):
            sim.run(max_events=100)

    def test_not_reentrant(self):
        sim = Simulator()
        errors = []

        def reenter():
            try:
                sim.run()
            except RuntimeError as exc:
                errors.append(exc)

        sim.schedule(1.0, reenter)
        sim.run()
        assert len(errors) == 1

    def test_executed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.executed == 5


class TestInlineAdvance:
    """Fast-forward contract: only silent, strictly-forward windows."""

    def test_advance_moves_clock_and_counts(self):
        sim = Simulator()
        assert sim.advance_inline(1.5) is True
        assert sim.now == 1.5
        assert sim.inline_advances == 1

    def test_declines_backward_and_same_time(self):
        sim = Simulator()
        sim.advance_inline(1.0)
        assert sim.advance_inline(1.0) is False
        assert sim.advance_inline(0.5) is False
        assert sim.now == 1.0
        assert sim.inline_advances == 1

    def test_declines_when_event_pending_at_or_before_target(self):
        sim = Simulator()
        sim.schedule(2.0, lambda: None)
        assert sim.advance_inline(2.0) is False
        assert sim.advance_inline(2.5) is False
        assert sim.advance_inline(1.9) is True
        assert sim.now == 1.9

    def test_cancelled_head_does_not_block(self):
        """Only *live* events bound the jump; lazily-cancelled heap
        heads are drained by peek_time rather than declining forever."""
        sim = Simulator()
        event = sim.schedule(2.0, lambda: None)
        sim.schedule(5.0, lambda: None)
        event.cancel()
        assert sim.advance_inline(3.0) is True
        assert sim.now == 3.0
        assert sim.advance_inline(6.0) is False

    def test_declines_past_run_until(self):
        sim = Simulator()
        outcomes = []

        def probe():
            outcomes.append(sim.advance_inline(5.0))
            outcomes.append(sim.advance_inline(3.0))

        sim.schedule(1.0, probe)
        sim.run(until=4.0)
        assert outcomes == [False, True]

    def test_schedule_and_cancel_counters(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        event.cancel()
        assert sim.events_scheduled == 2
        assert sim.events_cancelled == 1

    def test_cancel_after_pop_not_counted(self):
        sim = Simulator()
        holder = []

        def fire():
            holder[0].cancel()

        holder.append(sim.schedule(1.0, fire))
        sim.run()
        assert sim.events_cancelled == 0


class TestArraySimulator:
    """The array-backed executor's own API surface and slot discipline.

    Ordering/cancellation semantics shared with the reference engine are
    covered by running the whole reference suite against a random
    program in :meth:`test_trace_matches_reference_engine`; the tests
    around it pin what is *new*: raw-slot scheduling, handle-free
    fire-and-forget paths, and slot recycling with generation guards.
    """

    def test_trace_matches_reference_engine(self):
        """A seeded random schedule/cancel program fires in the same
        order at the same times on both engines."""
        import random

        def run(sim_cls):
            sim = sim_cls()
            fired = []
            rng = random.Random(1234)
            handles = []

            def fire(tag):
                fired.append((tag, sim.now))
                if rng.random() < 0.4:
                    tag2 = f"{tag}.{len(fired)}"
                    handles.append(
                        sim.schedule(rng.choice([0.0, 0.5, 1.0]), lambda: fire(tag2))
                    )
                if handles and rng.random() < 0.3:
                    handles.pop(rng.randrange(len(handles))).cancel()

            for i in range(50):
                handles.append(
                    sim.schedule(rng.choice([0.0, 1.0, 2.0, 3.0]),
                                 lambda i=i: fire(str(i)))
                )
            final = sim.run()
            return fired, final, sim.events_scheduled, sim.events_cancelled

        assert run(Simulator) == run(ArraySimulator)

    def test_schedule_raw_returns_slot_without_handle(self):
        sim = ArraySimulator()
        seen = []
        slot = sim.schedule_raw(1.0, lambda: seen.append(sim.now))
        assert isinstance(slot, int)
        assert sim.events_scheduled == 1
        sim.run()
        assert seen == [1.0]

    def test_raw_slot_cancel(self):
        sim = ArraySimulator()
        seen = []
        slot = sim.schedule_raw(1.0, lambda: seen.append("raw"))
        sim.schedule(2.0, lambda: seen.append("kept"))
        sim._cancel_slot(slot)
        sim.run()
        assert seen == ["kept"]
        assert sim.events_cancelled == 1

    def test_schedule_drop_fires_and_returns_nothing(self):
        sim = ArraySimulator()
        seen = []
        assert sim.schedule_drop(1.0, lambda: seen.append(sim.now)) is None
        sim.run()
        assert seen == [1.0]

    def test_schedule_drop_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            ArraySimulator().schedule_drop(-0.1, lambda: None)
        # The reference engine exposes the same method, same contract.
        with pytest.raises(ValueError):
            Simulator().schedule_drop(-0.1, lambda: None)

    def test_call_soon_returns_none_and_runs_after_same_time(self):
        sim = ArraySimulator()
        order = []

        def first():
            assert sim.call_soon(lambda: order.append("soon")) is None
            order.append("first")

        sim.schedule(1.0, first)
        sim.schedule(1.0, lambda: order.append("second"))
        sim.run()
        assert order == ["first", "second", "soon"]

    def test_slot_recycled_after_execution(self):
        """Popped slots return to the free list and are reused instead
        of growing the parallel arrays."""
        sim = ArraySimulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        storage = len(sim._cb)
        assert sim._free, "executed event's slot must be freed"
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
            sim.run()
        assert len(sim._cb) == storage, "slots must be recycled, not grown"

    def test_stale_handle_cancel_is_noop(self):
        """A handle whose slot was recycled must not cancel the new
        occupant: the generation (seq) guard catches it."""
        sim = ArraySimulator()
        seen = []
        stale = sim.schedule(1.0, lambda: seen.append("old"))
        sim.run()
        replacement = sim.schedule(1.0, lambda: seen.append("new"))
        assert replacement.slot == stale.slot, (
            "test setup: the new event must recycle the old slot"
        )
        stale.cancel()  # stale seq: must not touch the recycled slot
        sim.run()
        assert seen == ["old", "new"]
        assert sim.events_cancelled == 0

    def test_cancel_after_execution_does_not_skew_counters(self):
        sim = ArraySimulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.run()
        handle.cancel()
        assert sim.events_cancelled == 0
        assert sim.pending() == 0

    def test_mass_cancellation_compacts_in_place(self):
        sim = ArraySimulator()
        keep = []
        handles = [
            sim.schedule(1.0 + i * 0.01, lambda: keep.append(sim.now))
            for i in range(100)
        ]
        for handle in handles[10:]:
            handle.cancel()
        assert sim.compactions >= 1
        assert sim.pending() == 10
        sim.run()
        assert len(keep) == 10

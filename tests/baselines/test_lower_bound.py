"""Tests for the CPU-bound / network-bound lower bounds."""

import pytest

from repro.baselines.lower_bound import (
    cpu_bound_load,
    lower_bound,
    network_bound_load,
)
from repro.replay.replayer import build_servers


class TestNetworkBound:
    def test_no_cpu_time_spent(self, snapshot, store, stamp):
        metrics = network_bound_load(
            snapshot, build_servers(store), when_hours=stamp.when_hours
        )
        assert metrics.cpu_busy_time == 0.0

    def test_everything_known_upfront(self, snapshot, store, stamp):
        metrics = network_bound_load(
            snapshot, build_servers(store), when_hours=stamp.when_hours
        )
        assert metrics.discovery_complete_at() == 0.0

    def test_bounded_below_by_transfer_time(self, snapshot, store, stamp):
        from repro.calibration import LTE_DOWNLINK_BPS

        metrics = network_bound_load(
            snapshot, build_servers(store), when_hours=stamp.when_hours
        )
        pure_transfer = snapshot.total_bytes() * 8.0 / LTE_DOWNLINK_BPS
        assert metrics.plt >= pure_transfer


class TestCpuBound:
    def test_faster_than_real_load(self, page, snapshot, store, stamp):
        from repro.baselines.configs import run_config

        cpu = cpu_bound_load(
            snapshot, build_servers(store), when_hours=stamp.when_hours
        )
        real = run_config("http2", page, snapshot, store)
        assert cpu.plt < real.plt

    def test_cpu_work_still_performed(self, snapshot, store, stamp):
        metrics = cpu_bound_load(
            snapshot, build_servers(store), when_hours=stamp.when_hours
        )
        assert metrics.cpu_busy_time > 1.0

    def test_dominated_by_cpu(self, snapshot, store, stamp):
        metrics = cpu_bound_load(
            snapshot, build_servers(store), when_hours=stamp.when_hours
        )
        assert metrics.cpu_busy_time > 0.5 * metrics.plt


class TestCombined:
    def test_lower_bound_is_max(self, snapshot, store, stamp):
        cpu = cpu_bound_load(
            snapshot, build_servers(store), when_hours=stamp.when_hours
        ).plt
        net = network_bound_load(
            snapshot, build_servers(store), when_hours=stamp.when_hours
        ).plt
        combined = lower_bound(
            snapshot,
            lambda: build_servers(store),
            when_hours=stamp.when_hours,
        )
        assert combined == pytest.approx(max(cpu, net))

    def test_bound_below_vroom(self, page, snapshot, store, stamp):
        """The lower bound must actually bound Vroom from below."""
        from repro.baselines.configs import run_config

        bound = lower_bound(
            snapshot,
            lambda: build_servers(store),
            when_hours=stamp.when_hours,
        )
        vroom = run_config("vroom", page, snapshot, store)
        assert bound <= vroom.plt * 1.02  # small tolerance for noise

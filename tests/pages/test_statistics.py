"""Tests for corpus statistics reporting."""

from repro.calibration import NEWS_SPORTS_PROFILE
from repro.pages.corpus import alexa_top100_corpus, news_sports_corpus
from repro.pages.statistics import corpus_statistics


class TestCorpusStatistics:
    def test_fields_computed(self, stamp):
        stats = corpus_statistics(news_sports_corpus(count=5), stamp)
        assert stats.pages == 5
        assert stats.resource_count_median > 50
        assert 0.1 < stats.processable_byte_share_median < 0.5
        assert stats.domain_count_median > 3
        assert stats.max_chain_depth_median >= 3

    def test_type_mix_sums_to_one(self, stamp):
        stats = corpus_statistics(news_sports_corpus(count=4), stamp)
        assert abs(sum(stats.type_mix.values()) - 1.0) < 1e-9
        assert abs(sum(stats.discovery_mix.values()) - 1.0) < 1e-9

    def test_images_dominate_media(self, stamp):
        stats = corpus_statistics(news_sports_corpus(count=4), stamp)
        assert stats.type_mix["image"] > stats.type_mix["font"]
        assert stats.type_mix["image"] > stats.type_mix["video"]

    def test_news_heavier_than_alexa(self, stamp):
        news = corpus_statistics(news_sports_corpus(count=5), stamp)
        alexa = corpus_statistics(alexa_top100_corpus(count=5), stamp)
        assert news.total_bytes_median > alexa.total_bytes_median
        assert news.resource_count_median > alexa.resource_count_median

    def test_async_share_bounded_by_profile(self, stamp):
        """async_script_frac applies to parser-inserted scripts only
        (chained scripts are implicitly async); the overall share is
        therefore below the profile's per-static-script fraction."""
        stats = corpus_statistics(news_sports_corpus(count=6), stamp)
        assert 0.0 <= stats.async_script_share <= (
            NEWS_SPORTS_PROFILE.async_script_frac
        )

    def test_summary_renders(self, stamp):
        stats = corpus_statistics(news_sports_corpus(count=3), stamp)
        text = stats.summary()
        assert "resources/page" in text
        assert "type mix" in text

"""Tests for the named corpora."""

from repro.pages.corpus import (
    accuracy_corpus,
    alexa_top100_corpus,
    alexa_top400_sample_corpus,
    news_sports_corpus,
)


def test_sizes():
    assert len(news_sports_corpus(count=10)) == 10
    assert len(alexa_top100_corpus(count=7)) == 7
    assert len(alexa_top400_sample_corpus(count=5)) == 5
    assert len(accuracy_corpus(count=9)) == 9


def test_deterministic():
    a = news_sports_corpus(count=4)
    b = news_sports_corpus(count=4)
    assert [p.name for p in a] == [p.name for p in b]
    assert [len(p.specs) for p in a] == [len(p.specs) for p in b]


def test_news_and_sports_halves():
    corpus = news_sports_corpus(count=8)
    names = [page.name for page in corpus]
    assert sum(1 for n in names if n.startswith("news")) == 4
    assert sum(1 for n in names if n.startswith("sports")) == 4


def test_unique_page_names():
    corpus = news_sports_corpus(count=12) + alexa_top100_corpus(count=12)
    names = [page.name for page in corpus]
    assert len(names) == len(set(names))


def test_accuracy_corpus_mixes_page_types():
    corpus = accuracy_corpus(count=10)
    names = [page.name for page in corpus]
    assert any(name.startswith("land") for name in names)
    assert any(name.startswith("artcl") for name in names)


def test_all_pages_validate():
    for page in news_sports_corpus(count=6):
        page.validate()
    for page in alexa_top100_corpus(count=6):
        page.validate()

"""Tests for waterfall rendering and phase summaries."""

from repro.analysis.waterfall import (
    render_waterfall,
    summarize_phases,
    waterfall_rows,
)
from repro.baselines.configs import run_config


class TestWaterfall:
    def test_rows_cover_referenced_resources(self, page, snapshot, store):
        metrics = run_config("http2", page, snapshot, store)
        rows = waterfall_rows(metrics)
        assert len(rows) == len(
            [
                t
                for t in metrics.referenced_timelines()
                if t.discovered_at is not None
            ]
        )

    def test_rows_sorted_by_discovery(self, page, snapshot, store):
        metrics = run_config("http2", page, snapshot, store)
        rows = waterfall_rows(metrics)
        times = [row.discovered_at for row in rows]
        assert times == sorted(times)

    def test_render_contains_header_and_rows(self, page, snapshot, store):
        metrics = run_config("http2", page, snapshot, store)
        text = render_waterfall(metrics, max_rows=10)
        assert "waterfall of" in text
        assert "plt=" in text
        assert "more resources" in text  # heavy page gets truncated

    def test_render_row_width(self, page, snapshot, store):
        metrics = run_config("http2", page, snapshot, store)
        rows = waterfall_rows(metrics)
        rendered = rows[0].render(width=50, horizon=metrics.plt)
        body = rendered.split("|")[1]
        assert len(body) == 50

    def test_span_markers_present(self, page, snapshot, store):
        metrics = run_config("http2", page, snapshot, store)
        text = render_waterfall(metrics)
        assert "=" in text  # network spans exist
        assert "#" in text  # cpu spans exist


class TestPhaseSummary:
    def test_summary_fields(self, page, snapshot, store):
        metrics = run_config("vroom", page, snapshot, store)
        summary = summarize_phases(metrics)
        assert summary["plt"] == metrics.plt
        assert summary["resources"] > 50
        assert summary["pushed"] > 0
        assert 0.0 <= summary["network_wait_fraction"] <= 1.0

    def test_vroom_summary_shows_earlier_discovery(
        self, page, snapshot, store
    ):
        http2 = summarize_phases(run_config("http2", page, snapshot, store))
        vroom = summarize_phases(run_config("vroom", page, snapshot, store))
        assert vroom["discovery_complete"] < http2["discovery_complete"]

"""Unit tests for dependency hints (Table 1 semantics)."""

import pytest

from repro.core.hints import (
    DependencyHint,
    HEADER_BY_PRIORITY,
    HintBundle,
    bundle_from_hints,
    parse_headers,
)
from repro.pages.resources import Priority


def hint(url, priority=Priority.PRELOAD, order=0):
    return DependencyHint(url=url, priority=priority, order=order)


class TestHeaders:
    def test_table1_header_names(self):
        assert HEADER_BY_PRIORITY[Priority.PRELOAD] == "link-preload"
        assert HEADER_BY_PRIORITY[Priority.SEMI_IMPORTANT] == "x-semi-important"
        assert HEADER_BY_PRIORITY[Priority.UNIMPORTANT] == "x-unimportant"

    def test_bundle_headers_grouped_and_ordered(self):
        bundle = bundle_from_hints(
            "a.com/p.html",
            [
                hint("a.com/late.js", Priority.PRELOAD, order=5),
                hint("a.com/early.js", Priority.PRELOAD, order=1),
                hint("a.com/img.jpg", Priority.UNIMPORTANT, order=2),
            ],
        )
        headers = bundle.headers()
        assert headers["link-preload"] == ["a.com/early.js", "a.com/late.js"]
        assert headers["x-unimportant"] == ["a.com/img.jpg"]
        assert "x-semi-important" not in headers

    def test_headers_roundtrip(self):
        original = bundle_from_hints(
            "a.com/p.html",
            [
                hint("a.com/x.js", Priority.PRELOAD, 0),
                hint("a.com/a.js", Priority.SEMI_IMPORTANT, 1),
                hint("a.com/i.jpg", Priority.UNIMPORTANT, 2),
            ],
        )
        parsed = parse_headers("a.com/p.html", original.headers())
        assert set(parsed.urls()) == set(original.urls())
        for priority in Priority:
            assert [h.url for h in parsed.by_priority(priority)] == [
                h.url for h in original.by_priority(priority)
            ]

    def test_parse_rejects_unknown_header(self):
        with pytest.raises(ValueError):
            parse_headers("a.com/p.html", {"x-bogus": ["a.com/x"]})


class TestBundleConstruction:
    def test_dedup_keeps_first(self):
        bundle = bundle_from_hints(
            "a.com/p.html",
            [
                hint("a.com/x.js", Priority.PRELOAD, 0),
                hint("a.com/x.js", Priority.UNIMPORTANT, 1),
            ],
        )
        assert len(bundle) == 1
        assert bundle.hints[0].priority is Priority.PRELOAD

    def test_source_url_never_hinted(self):
        bundle = bundle_from_hints(
            "a.com/p.html", [hint("a.com/p.html"), hint("a.com/x.js")]
        )
        assert bundle.urls() == ["a.com/x.js"]

    def test_merge_unions_preserving_first(self):
        first = bundle_from_hints("a", [hint("u1", Priority.PRELOAD)])
        second = bundle_from_hints(
            "b", [hint("u1", Priority.UNIMPORTANT), hint("u2")]
        )
        merged = HintBundle.merge([first, second])
        assert set(merged.urls()) == {"u1", "u2"}
        u1 = next(h for h in merged if h.url == "u1")
        assert u1.priority is Priority.PRELOAD

    def test_iteration_and_len(self):
        bundle = bundle_from_hints("s", [hint("a"), hint("b")])
        assert len(bundle) == 2
        assert [h.url for h in bundle] == ["a", "b"]

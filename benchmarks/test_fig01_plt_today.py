"""Fig 1: page load times on today's mobile web.

Paper: median top-100 PLT ~5 s; median News+Sports PLT >10 s; user
tolerance is 2-3 s.  Shape claim: News+Sports is markedly slower than the
overall top-100.
"""

from benchmarks.conftest import run_once
from repro.analysis.stats import median
from repro.experiments import figures
from repro.experiments.report import print_figure


def test_fig01_plt_today(benchmark, corpus_size):
    series = run_once(benchmark, figures.fig1_plt_today, count=corpus_size)
    print_figure(
        "Fig 1: PLT CDFs on today's mobile web (HTTP/1.1 replay)",
        series,
        paper_values={
            "top100_http1_plt": 5.0,
            "news_sports_http1_plt": 10.5,
        },
    )
    assert median(series["news_sports_http1_plt"]) > median(
        series["top100_http1_plt"]
    )
    assert median(series["news_sports_http1_plt"]) > 3.0

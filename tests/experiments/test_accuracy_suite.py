"""Tests for the multi-user / multi-hour accuracy protocol."""

import statistics

from repro.core.resolver import ResolutionStrategy
from repro.experiments.accuracy_suite import (
    USERS,
    accuracy_over_time,
    multi_user_accuracy,
    sweep_accuracy,
)
from repro.pages.corpus import accuracy_corpus


class TestSweepAccuracy:
    def test_sample_count(self):
        pages = accuracy_corpus(count=3)
        sweep = sweep_accuracy(
            pages, ResolutionStrategy.VROOM, hours=(0.0, 12.0)
        )
        assert len(sweep) == 3 * len(USERS) * 2

    def test_rates_bounded(self):
        pages = accuracy_corpus(count=3)
        sweep = sweep_accuracy(pages, ResolutionStrategy.OFFLINE_ONLY)
        assert all(0.0 <= rate <= 2.0 for rate in sweep.fn_rates)
        assert all(rate >= 0.0 for rate in sweep.fp_rates)

    def test_users_see_same_fn_for_unpersonalized_pages(self):
        """Vroom's FN is driven by flux, not by which user loads the
        page (personalised content is excluded from the envelope)."""
        pages = accuracy_corpus(count=2)
        per_user = {
            user: sweep_accuracy(
                pages, ResolutionStrategy.VROOM, users=(user,)
            )
            for user in USERS[:2]
        }
        medians = [
            statistics.median(sweep.fn_rates)
            for sweep in per_user.values()
        ]
        assert max(medians) - min(medians) < 0.05


class TestMultiUser:
    def test_vroom_still_best_under_full_protocol(self):
        series = multi_user_accuracy(count=4, hours=(0.0, 7.0))
        assert statistics.median(series["vroom_fn"]) <= statistics.median(
            series["offline_only_fn"]
        )
        assert statistics.median(
            series["online_only_fp"]
        ) >= statistics.median(series["vroom_fp"])


class TestOverTime:
    def test_fn_stays_low_across_hours(self):
        series = accuracy_over_time(count=4, horizon_hours=24.0,
                                    step_hours=12.0)
        assert len(series["hour"]) == len(series["vroom_fn_median"]) == 3
        assert max(series["vroom_fn_median"]) < 0.20

"""Property tests: markup rendering and extraction are exact inverses."""

from hypothesis import given, settings, strategies as st

from repro.pages import markup
from repro.pages.dynamics import LoadStamp
from repro.pages.page import PageBlueprint
from repro.pages.resources import Discovery, ResourceSpec, ResourceType

_STATIC_KINDS = [
    ResourceType.CSS,
    ResourceType.JS,
    ResourceType.IMAGE,
    ResourceType.HTML,
    ResourceType.VIDEO,
]


@st.composite
def documents(draw):
    page = PageBlueprint(name="mk", root="root")
    page.add(
        ResourceSpec(
            "root",
            ResourceType.HTML,
            "m.com",
            draw(st.integers(min_value=2_000, max_value=50_000)),
        )
    )
    n_children = draw(st.integers(min_value=0, max_value=15))
    for index in range(n_children):
        rtype = draw(st.sampled_from(_STATIC_KINDS))
        discovery = Discovery.STATIC_MARKUP
        parent = "root"
        page.add(
            ResourceSpec(
                f"c{index}",
                rtype,
                draw(st.sampled_from(["m.com", "cdn.m.com"])),
                draw(st.integers(min_value=100, max_value=20_000)),
                parent=parent,
                position=draw(st.floats(min_value=0.0, max_value=1.0)),
                discovery=discovery,
            )
        )
    page.validate()
    return page.materialize(LoadStamp(when_hours=9.0)).root


@given(documents())
@settings(max_examples=40, deadline=None)
def test_extraction_recovers_exactly_the_static_children(doc):
    urls = markup.extract_urls(doc.body)
    static = [
        child.url
        for child in doc.children
        if child.spec.discovery is Discovery.STATIC_MARKUP
    ]
    assert sorted(set(urls)) == sorted(set(static))


@given(documents())
@settings(max_examples=40, deadline=None)
def test_body_size_always_exact(doc):
    assert len(doc.body) == doc.size


@given(documents())
@settings(max_examples=40, deadline=None)
def test_offsets_within_body(doc):
    for url, offset in markup.extract_urls_with_offsets(doc.body):
        assert 0 < offset <= len(doc.body)
        assert url in doc.body[:offset]

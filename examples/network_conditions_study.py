#!/usr/bin/env python3
"""Scenario: does Vroom still help off its LTE design point?

Sec 4.3 of the paper notes the scheduler targets a modern phone on LTE,
where the CPU is the bottleneck, and predicts that different strategies
would be needed when bandwidth or latency dominates.  This script sweeps
Vroom and HTTP/2 across five network profiles and also tries the
Vroom+Polaris hybrid the paper suggests as future work.

Run:  python examples/network_conditions_study.py
"""

import statistics

from repro import LoadStamp, news_sports_corpus, run_config
from repro.browser.engine import BrowserConfig, load_page
from repro.replay.cache import materialize_cached
from repro.core.scheduler import VroomScheduler
from repro.core.server import vroom_servers
from repro.net.link import StreamScheduling
from repro.net.profiles import PROFILES
from repro.replay.replayer import build_servers


def main() -> None:
    pages = news_sports_corpus(count=4)
    stamp = LoadStamp(when_hours=1000.0)

    print("== Vroom vs HTTP/2 by network profile (median of 4 pages) ==")
    print(f"{'profile':<12} {'http2':>8} {'vroom':>8} {'gain':>8}")
    for name, profile in PROFILES.items():
        h2_plts, vroom_plts = [], []
        for page in pages:
            # One snapshot per page, shared across all five profiles
            # through the session-wide snapshot cache.
            snapshot, store = materialize_cached(page, stamp)
            browser = BrowserConfig(when_hours=stamp.when_hours)
            h2 = load_page(
                snapshot, build_servers(store), profile.config(), browser
            )
            h2_plts.append(h2.plt)
            vroom = load_page(
                snapshot,
                vroom_servers(page, snapshot, store),
                profile.config(h2_scheduling=StreamScheduling.FIFO),
                browser,
                policy=VroomScheduler(),
            )
            vroom_plts.append(vroom.plt)
        h2_median = statistics.median(h2_plts)
        vroom_median = statistics.median(vroom_plts)
        print(
            f"{name:<12} {h2_median:7.2f}s {vroom_median:7.2f}s "
            f"{h2_median - vroom_median:+7.2f}s"
        )

    print(
        "\nNote how the gain shrinks (or inverts) when bandwidth is the\n"
        "bottleneck (2g, loaded-lte): prefetched hints compete with the\n"
        "critical path for scarce bytes — exactly Sec 4.3's caveat."
    )

    print("\n== Vroom+Polaris hybrid (paper future work), LTE ==")
    rows = {"vroom": [], "polaris": [], "hybrid": []}
    for page in pages:
        snapshot, store = materialize_cached(page, stamp)
        for config in rows:
            rows[config].append(
                run_config(config, page, snapshot, store).plt
            )
    for config, values in rows.items():
        print(f"{config:<8} median {statistics.median(values):5.2f}s")


if __name__ == "__main__":
    main()

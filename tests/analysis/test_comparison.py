"""Tests for paired comparison statistics."""

import pytest

from repro.analysis.comparison import (
    bootstrap_median_ci,
    compare_paired,
)


class TestBootstrap:
    def test_ci_brackets_median(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0] * 10
        low, high = bootstrap_median_ci(values)
        assert low <= 3.0 <= high

    def test_ci_deterministic_with_seed(self):
        values = list(range(30))
        assert bootstrap_median_ci(values, seed=3) == bootstrap_median_ci(
            values, seed=3
        )

    def test_tight_for_constant_data(self):
        low, high = bootstrap_median_ci([5.0] * 20)
        assert low == high == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_median_ci([])


class TestComparePaired:
    def test_clear_winner(self):
        a = [1.0] * 20
        b = [2.0] * 20
        result = compare_paired("fast", a, "slow", b)
        assert result.median_delta == pytest.approx(1.0)
        assert result.win_rate == 1.0
        assert result.significant

    def test_tie_is_insignificant(self):
        a = [1.0, 2.0, 3.0] * 8
        b = [1.1, 1.9, 3.0] * 8
        result = compare_paired("a", a, "b", b)
        assert not result.significant or abs(result.median_delta) < 0.2

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            compare_paired("a", [1.0], "b", [1.0, 2.0])

    def test_describe(self):
        result = compare_paired("a", [1.0] * 5, "b", [2.0] * 5)
        text = result.describe()
        assert "median delta" in text
        assert "wins" in text

    def test_real_loads(self, corpus, stamp):
        """Vroom vs HTTP/2 on real simulated loads is significant."""
        from repro.baselines.configs import run_config
        from repro.replay.recorder import record_snapshot

        vroom, http2 = [], []
        for page in corpus[:4]:
            snapshot = page.materialize(stamp)
            store = record_snapshot(snapshot)
            vroom.append(run_config("vroom", page, snapshot, store).plt)
            http2.append(run_config("http2", page, snapshot, store).plt)
        result = compare_paired("vroom", vroom, "http2", http2)
        assert result.median_delta > 0
        assert result.win_rate >= 0.75

"""Engine micro-benchmark: fast-forward DES hot path vs event-per-tick.

Each scenario loads one page twice — once with the link's fast-forward
mode off (the reference event-per-tick engine) and once with it on — and
asserts the two :class:`LoadMetrics` are bit-identical before reporting
anything.  The report then carries two kinds of numbers:

* **Deterministic counters** (heap events scheduled/executed/cancelled,
  link pokes, fast-forward steps, rate recomputations): pure functions
  of the event trace, stable across machines, pinned as CI goldens by
  ``repro bench engine --smoke``.
* **Wall-clock** (seconds per load, speedup): machine-dependent, never
  asserted in CI, recorded in ``BENCH_engine.json`` for the trajectory.

Scenario shapes:

* ``corpus-news`` — a realistic synthetic News/Sports page under the
  push-all + fetch-asap configuration at LTE latency.  Thresholds
  (completions, preload-scanner watches) dominate, so coalescing is
  modest by design; this guards the realistic-workload counters.
* ``push-all-high-rtt`` — the slow-start-heavy shape from the paper's
  motivation: high RTT, lossy link, server push keeping many streams
  concurrent while windows are still opening.  Refresh ticks dominate
  and coalescing collapses the heap traffic (the >= 2x criterion).
* ``single-stream-drain`` — one long cwnd-limited body drain, the purest
  hot-path microbench: nearly every tick coalesces, so wall-clock
  speedup reflects the inline loop (the >= 1.5x criterion).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.browser.engine import BrowserConfig, load_page
from repro.browser.metrics import LoadMetrics
from repro.calibration import DEFAULT_EVAL_HOUR
from repro.core.push_policy import PushPolicy
from repro.core.scheduler import FetchAsapScheduler
from repro.core.server import vroom_servers
from repro.net.http import NetworkConfig
from repro.net.link import StreamScheduling
from repro.pages.corpus import news_sports_corpus
from repro.pages.dynamics import LoadStamp
from repro.pages.page import PageBlueprint, PageSnapshot
from repro.pages.resources import ResourceSpec, ResourceType
from repro.replay.recorder import record_snapshot
from repro.replay.store import ReplayStore


@dataclass(frozen=True)
class EngineScenario:
    """One benchmarked page/network shape."""

    name: str
    description: str
    #: "corpus" uses a generated News/Sports page; "synthetic" builds a
    #: root document plus ``images`` bodies of ``image_bytes`` each.
    kind: str
    images: int = 0
    image_bytes: int = 0
    #: None keeps the :class:`NetworkConfig` default (LTE).
    base_rtt: Optional[float] = None
    loss_rate: float = 0.0


SCENARIOS: Tuple[EngineScenario, ...] = (
    EngineScenario(
        name="corpus-news",
        description="realistic News/Sports page, push-all + fetch-asap, LTE",
        kind="corpus",
    ),
    EngineScenario(
        name="push-all-high-rtt",
        description="8 large pushed bodies, 500 ms RTT, 3% loss (slow-start-heavy)",
        kind="synthetic",
        images=8,
        image_bytes=900_000,
        base_rtt=0.5,
        loss_rate=0.03,
    ),
    EngineScenario(
        name="single-stream-drain",
        description="one 40 MB body, 200 ms RTT, 3% loss (pure hot-path drain)",
        kind="synthetic",
        images=1,
        image_bytes=40_000_000,
        base_rtt=0.2,
        loss_rate=0.03,
    ),
)

#: Counter keys copied from ``LoadMetrics.engine_counters`` into reports.
COUNTER_KEYS: Tuple[str, ...] = (
    "events_scheduled",
    "events_executed",
    "events_cancelled",
    "heap_compactions",
    "inline_advances",
    "link_pokes",
    "link_fast_forward_steps",
    "link_rate_recomputes",
)


def _scenario_page(scenario: EngineScenario) -> PageBlueprint:
    if scenario.kind == "corpus":
        return news_sports_corpus(count=1)[0]
    page = PageBlueprint(
        name=f"bench_{scenario.name.replace('-', '_')}", root="bench_root"
    )
    root = page.add(
        ResourceSpec(
            name="bench_root",
            rtype=ResourceType.HTML,
            domain="bench.com",
            size=60_000,
            parent=None,
            cacheable=False,
        )
    )
    for index in range(scenario.images):
        page.add(
            ResourceSpec(
                name=f"bench_img{index}",
                rtype=ResourceType.IMAGE,
                domain="bench.com",
                size=scenario.image_bytes,
                parent=root.name,
                position=0.1,
            )
        )
    return page


def _materialize(
    scenario: EngineScenario,
) -> Tuple[PageBlueprint, PageSnapshot, ReplayStore]:
    page = _scenario_page(scenario)
    snapshot = page.materialize(LoadStamp(when_hours=DEFAULT_EVAL_HOUR))
    return page, snapshot, record_snapshot(snapshot)


def _load_once(
    page: PageBlueprint,
    snapshot: PageSnapshot,
    store: ReplayStore,
    scenario: EngineScenario,
    fast_forward: bool,
) -> Tuple[LoadMetrics, float]:
    """One push-all + fetch-asap load; returns (metrics, wall seconds)."""
    servers = vroom_servers(
        page, snapshot, store, push_policy=PushPolicy.ALL_LOCAL
    )
    net_kwargs: Dict[str, object] = {
        "h2_scheduling": StreamScheduling.FAIR,
        "loss_rate": scenario.loss_rate,
        "link_fast_forward": fast_forward,
    }
    if scenario.base_rtt is not None:
        net_kwargs["base_rtt"] = scenario.base_rtt
    started = time.perf_counter()
    metrics = load_page(
        snapshot,
        servers,
        NetworkConfig(**net_kwargs),
        BrowserConfig(when_hours=DEFAULT_EVAL_HOUR),
        policy=FetchAsapScheduler(),
    )
    return metrics, time.perf_counter() - started


def bench_scenario(scenario: EngineScenario, repeats: int = 3) -> dict:
    """Benchmark one scenario; raises if the two modes ever diverge."""
    page, snapshot, store = _materialize(scenario)
    wall: Dict[bool, float] = {}
    metrics: Dict[bool, LoadMetrics] = {}
    for fast_forward in (False, True):
        best = None
        for _ in range(max(1, repeats)):
            result, elapsed = _load_once(
                page, snapshot, store, scenario, fast_forward
            )
            metrics[fast_forward] = result
            best = elapsed if best is None else min(best, elapsed)
        wall[fast_forward] = best or 0.0
    if metrics[False] != metrics[True]:
        raise AssertionError(
            f"scenario {scenario.name!r}: fast-forward diverged from the "
            f"event-per-tick engine (plt {metrics[False].plt!r} vs "
            f"{metrics[True].plt!r})"
        )
    counters_off = {
        key: metrics[False].engine_counters[key] for key in COUNTER_KEYS
    }
    counters_on = {
        key: metrics[True].engine_counters[key] for key in COUNTER_KEYS
    }
    scheduled_on = max(1, counters_on["events_scheduled"])
    return {
        "scenario": scenario.name,
        "description": scenario.description,
        "plt": metrics[True].plt,
        "bit_identical": True,
        "counters_event_per_tick": counters_off,
        "counters_fast_forward": counters_on,
        "event_reduction": counters_off["events_scheduled"] / scheduled_on,
        "wall_event_per_tick_sec": wall[False],
        "wall_fast_forward_sec": wall[True],
        "wall_speedup": (
            wall[False] / wall[True] if wall[True] > 0 else 0.0
        ),
    }


def engine_benchmark(
    scenarios: Tuple[EngineScenario, ...] = SCENARIOS, repeats: int = 3
) -> dict:
    """Run every scenario; returns the ``BENCH_engine.json`` payload."""
    return {
        "benchmark": "engine",
        "scenarios": [
            bench_scenario(scenario, repeats=repeats)
            for scenario in scenarios
        ],
    }


#: Golden deterministic counters per scenario, asserted by ``--smoke``.
#: Any hot-path change that alters the event trace shows up here —
#: without the flakiness of asserting wall-clock in CI.  Regenerate by
#: running ``repro bench engine --smoke`` and copying the printed
#: counters after verifying the change is intentional.
SMOKE_GOLDENS: Dict[str, Dict[str, int]] = {
    "corpus-news": {
        "events_scheduled_event_per_tick": 1636,
        "events_scheduled_fast_forward": 1631,
        "link_pokes": 553,
        "link_fast_forward_steps": 5,
    },
    "push-all-high-rtt": {
        "events_scheduled_event_per_tick": 317,
        "events_scheduled_fast_forward": 110,
        "link_pokes": 246,
        "link_fast_forward_steps": 207,
    },
    "single-stream-drain": {
        "events_scheduled_event_per_tick": 1281,
        "events_scheduled_fast_forward": 27,
        "link_pokes": 1266,
        "link_fast_forward_steps": 1254,
    },
}


def smoke_counters(report: dict) -> Dict[str, Dict[str, int]]:
    """The golden-comparable slice of an :func:`engine_benchmark` report."""
    observed: Dict[str, Dict[str, int]] = {}
    for row in report["scenarios"]:
        observed[row["scenario"]] = {
            "events_scheduled_event_per_tick": row[
                "counters_event_per_tick"
            ]["events_scheduled"],
            "events_scheduled_fast_forward": row["counters_fast_forward"][
                "events_scheduled"
            ],
            "link_pokes": row["counters_fast_forward"]["link_pokes"],
            "link_fast_forward_steps": row["counters_fast_forward"][
                "link_fast_forward_steps"
            ],
        }
    return observed


def smoke_run() -> dict:
    """Single-repeat benchmark over every scenario (for CI)."""
    return engine_benchmark(repeats=1)


def smoke_check(report: dict) -> List[str]:
    """Mismatches between a benchmark report and the pinned goldens."""
    problems: List[str] = []
    observed = smoke_counters(report)
    for scenario, golden in SMOKE_GOLDENS.items():
        actual = observed.get(scenario)
        if actual is None:
            problems.append(f"{scenario}: missing from report")
            continue
        for field, expected in golden.items():
            if actual.get(field) != expected:
                problems.append(
                    f"{scenario}.{field}: expected {expected!r}, "
                    f"got {actual.get(field)!r}"
                )
    return problems

"""Unit tests for server push policies."""

from repro.core.hints import DependencyHint, bundle_from_hints
from repro.core.push_policy import PushPolicy, select_pushes
from repro.pages.resources import Priority


def make_bundle():
    return bundle_from_hints(
        "a.com/p.html",
        [
            DependencyHint("a.com/x.js", Priority.PRELOAD, 0),
            DependencyHint("a.com/y.css", Priority.PRELOAD, 1),
            DependencyHint("b.com/z.js", Priority.PRELOAD, 2),
            DependencyHint("a.com/async.js", Priority.SEMI_IMPORTANT, 3),
            DependencyHint("a.com/img.jpg", Priority.UNIMPORTANT, 4),
        ],
    )


class TestSelectPushes:
    def test_none_policy_pushes_nothing(self):
        assert select_pushes(PushPolicy.NONE, make_bundle(), "a.com") == []

    def test_high_priority_local_only(self):
        pushes = select_pushes(
            PushPolicy.HIGH_PRIORITY_LOCAL, make_bundle(), "a.com"
        )
        assert pushes == ["a.com/x.js", "a.com/y.css"]

    def test_cross_origin_never_pushed(self):
        """Structural security: a server can only push what it owns."""
        for policy in (PushPolicy.HIGH_PRIORITY_LOCAL, PushPolicy.ALL_LOCAL):
            pushes = select_pushes(policy, make_bundle(), "a.com")
            assert all(url.startswith("a.com/") for url in pushes)

    def test_all_local_includes_media(self):
        pushes = select_pushes(PushPolicy.ALL_LOCAL, make_bundle(), "a.com")
        assert "a.com/img.jpg" in pushes
        assert "a.com/async.js" in pushes
        assert "b.com/z.js" not in pushes

    def test_push_order_follows_hint_order(self):
        pushes = select_pushes(PushPolicy.ALL_LOCAL, make_bundle(), "a.com")
        assert pushes == [
            "a.com/x.js",
            "a.com/y.css",
            "a.com/async.js",
            "a.com/img.jpg",
        ]

    def test_other_domain_perspective(self):
        pushes = select_pushes(
            PushPolicy.HIGH_PRIORITY_LOCAL, make_bundle(), "b.com"
        )
        assert pushes == ["b.com/z.js"]

"""Unit tests for the fluid shared access link."""

import pytest

from repro.net.link import (
    AccessLink,
    INITIAL_CWND_BYTES,
    StreamScheduling,
)
from repro.net.simulator import ArraySimulator, Simulator


def make_link(bandwidth_bps=8.0e6):
    sim = Simulator()
    return sim, AccessLink(sim, bandwidth_bps)


class TestSingleStream:
    def test_transfer_time_matches_bandwidth(self):
        sim, link = make_link(8.0e6)  # 1 MB/s
        channel = link.open_channel()
        done = []
        channel.start_stream(1_000_000, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(1.0, rel=1e-6)]

    def test_zero_byte_stream_completes_immediately(self):
        sim, link = make_link()
        channel = link.open_channel()
        done = []
        channel.start_stream(0, lambda: done.append(sim.now))
        sim.run()
        assert done == [0.0]

    def test_negative_size_rejected(self):
        _, link = make_link()
        channel = link.open_channel()
        with pytest.raises(ValueError):
            channel.start_stream(-1, lambda: None)

    def test_bytes_delivered_accounting(self):
        sim, link = make_link()
        channel = link.open_channel()
        channel.start_stream(500_000, lambda: None)
        sim.run()
        assert link.bytes_delivered == pytest.approx(500_000, rel=1e-6)


class TestSharing:
    def test_two_connections_split_bandwidth(self):
        sim, link = make_link(8.0e6)
        done = []
        for _ in range(2):
            channel = link.open_channel()
            channel.start_stream(500_000, lambda: done.append(sim.now))
        sim.run()
        # Each gets 0.5 MB/s: both finish at 1.0 s.
        assert done == [pytest.approx(1.0, rel=1e-6)] * 2

    def test_completion_frees_bandwidth(self):
        sim, link = make_link(8.0e6)
        done = {}
        small_channel = link.open_channel()
        big_channel = link.open_channel()
        small_channel.start_stream(
            250_000, lambda: done.setdefault("small", sim.now)
        )
        big_channel.start_stream(
            750_000, lambda: done.setdefault("big", sim.now)
        )
        sim.run()
        # small: 0.25MB at 0.5MB/s -> 0.5s; big then speeds up:
        # 0.25MB done by 0.5s, remaining 0.5MB at 1MB/s -> 1.0s total.
        assert done["small"] == pytest.approx(0.5, rel=1e-6)
        assert done["big"] == pytest.approx(1.0, rel=1e-6)

    def test_fair_within_connection(self):
        sim, link = make_link(8.0e6)
        channel = link.open_channel(StreamScheduling.FAIR)
        done = []
        channel.start_stream(500_000, lambda: done.append(("a", sim.now)))
        channel.start_stream(500_000, lambda: done.append(("b", sim.now)))
        sim.run()
        assert [t for _, t in done] == [pytest.approx(1.0, rel=1e-6)] * 2

    def test_fifo_serializes_within_connection(self):
        sim, link = make_link(8.0e6)
        channel = link.open_channel(StreamScheduling.FIFO)
        done = []
        channel.start_stream(500_000, lambda: done.append(("a", sim.now)))
        channel.start_stream(500_000, lambda: done.append(("b", sim.now)))
        sim.run()
        assert done[0][0] == "a"
        assert done[0][1] == pytest.approx(0.5, rel=1e-6)
        assert done[1][1] == pytest.approx(1.0, rel=1e-6)

    def test_fifo_priority_jump(self):
        """A heavier-weight stream preempts the FIFO head."""
        sim, link = make_link(8.0e6)
        channel = link.open_channel(StreamScheduling.FIFO)
        done = []
        channel.start_stream(
            800_000, lambda: done.append(("bulk", sim.now)), weight=0.2
        )

        def start_urgent():
            channel.start_stream(
                100_000, lambda: done.append(("urgent", sim.now)), weight=2.0
            )

        sim.schedule(0.1, start_urgent)
        sim.run()
        assert done[0][0] == "urgent"

    def test_weighted_proportional_shares(self):
        sim, link = make_link(8.0e6)
        channel = link.open_channel(StreamScheduling.WEIGHTED)
        done = {}
        channel.start_stream(
            300_000, lambda: done.setdefault("heavy", sim.now), weight=3.0
        )
        channel.start_stream(
            100_000, lambda: done.setdefault("light", sim.now), weight=1.0
        )
        sim.run()
        # Rates 0.75 / 0.25 MB/s: both complete at 0.4 s.
        assert done["heavy"] == pytest.approx(0.4, rel=1e-4)
        assert done["light"] == pytest.approx(0.4, rel=1e-4)


class TestOffsetWatches:
    def test_watch_fires_at_offset(self):
        sim, link = make_link(8.0e6)
        channel = link.open_channel()
        hits = []
        stream = channel.start_stream(1_000_000, lambda: None)
        stream.watch_offset(250_000, lambda: hits.append(sim.now))
        sim.run()
        assert hits == [pytest.approx(0.25, rel=1e-6)]

    def test_watch_past_offset_fires_immediately(self):
        sim, link = make_link(8.0e6)
        channel = link.open_channel()
        hits = []
        stream = channel.start_stream(1_000_000, lambda: None)

        def late_watch():
            stream.watch_offset(100, lambda: hits.append(sim.now))

        sim.schedule(0.5, late_watch)
        sim.run()
        assert hits == [pytest.approx(0.5, rel=1e-6)]

    def test_multiple_watches_ordered(self):
        sim, link = make_link(8.0e6)
        channel = link.open_channel()
        hits = []
        stream = channel.start_stream(1_000_000, lambda: None)
        stream.watch_offset(750_000, lambda: hits.append("late"))
        stream.watch_offset(250_000, lambda: hits.append("early"))
        sim.run()
        assert hits == ["early", "late"]


class TestCongestionWindow:
    def test_cold_connection_slower_than_warm(self):
        """Slow start: the same bytes take longer on a fresh window."""
        def timed_transfer(prewarm):
            sim, link = make_link(80.0e6)  # fat link: cwnd is the cap
            channel = link.open_channel(rtt=0.1)
            done = []
            if prewarm:
                channel.cwnd = 4.0e6
            channel.start_stream(1_000_000, lambda: done.append(sim.now))
            sim.run()
            return done[0]

        assert timed_transfer(prewarm=False) > timed_transfer(prewarm=True)

    def test_window_grows_with_delivery(self):
        sim, link = make_link(80.0e6)
        channel = link.open_channel(rtt=0.1)
        channel.start_stream(500_000, lambda: None)
        sim.run()
        assert channel.cwnd > INITIAL_CWND_BYTES

    def test_idle_reset(self):
        sim, link = make_link(80.0e6)
        channel = link.open_channel(rtt=0.1)
        channel.start_stream(500_000, lambda: None)
        sim.run()
        grown = channel.cwnd
        assert grown > INITIAL_CWND_BYTES

        def second_transfer():
            channel.start_stream(100, lambda: None)

        sim.schedule(5.0, second_transfer)  # long idle -> reset
        sim.run()
        assert channel.cwnd < grown

    def test_zero_rtt_uncapped(self):
        sim, link = make_link(8.0e6)
        channel = link.open_channel(rtt=0.0)
        assert channel.rate_cap() == float("inf")

    def test_loss_halves_window(self):
        sim = Simulator()
        link = AccessLink(sim, 80.0e6, loss_rate=0.05)
        channel = link.open_channel(rtt=0.1)
        channel.start_stream(2_000_000, lambda: None)
        sim.run()
        assert channel._loss_count > 0

    def test_loss_slows_transfers(self):
        def finish_time(loss_rate):
            sim = Simulator()
            link = AccessLink(sim, 80.0e6, loss_rate=loss_rate)
            channel = link.open_channel(rtt=0.1)
            channel.start_stream(2_000_000, lambda: None)
            return sim.run()

        assert finish_time(0.10) > finish_time(0.0)

    def test_loss_is_deterministic(self):
        def run_once():
            sim = Simulator()
            link = AccessLink(sim, 80.0e6, loss_rate=0.05)
            channel = link.open_channel(rtt=0.1)
            channel.start_stream(1_000_000, lambda: None)
            sim.run()
            return channel._loss_count

        assert run_once() == run_once()

    def test_invalid_loss_rate_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            AccessLink(sim, 8.0e6, loss_rate=1.5)

    def test_zero_loss_never_loses(self):
        sim, link = make_link(8.0e6)
        channel = link.open_channel(rtt=0.05)
        channel.start_stream(3_000_000, lambda: None)
        sim.run()
        assert channel._loss_count == 0

    def test_bandwidth_must_be_positive(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            AccessLink(sim, 0.0)


class TestWatchCursor:
    """Sorted-insert + cursor bookkeeping behind the watch list."""

    def test_interleaved_out_of_order_registrations(self):
        """Watches registered out of order, some mid-transfer after
        earlier ones fired, still fire in offset order at exact times."""
        sim, link = make_link(8.0e6)  # 1 MB/s
        channel = link.open_channel()
        hits = []
        stream = channel.start_stream(1_000_000, lambda: hits.append("done"))
        stream.watch_offset(600_000, lambda: hits.append("c"))
        stream.watch_offset(200_000, lambda: hits.append("a"))
        stream.watch_offset(400_000, lambda: hits.append("b"))

        def mid_transfer():
            # 300 KB arrived: "a" has fired, cursor sits before "b".
            stream.watch_offset(500_000, lambda: hits.append("b2"))
            stream.watch_offset(320_000, lambda: hits.append("a2"))

        sim.schedule(0.3, mid_transfer)
        sim.run()
        assert hits == ["a", "a2", "b", "b2", "c", "done"]

    def test_equal_offsets_fire_in_registration_order(self):
        sim, link = make_link(8.0e6)
        channel = link.open_channel()
        hits = []
        stream = channel.start_stream(1_000_000, lambda: None)
        stream.watch_offset(250_000, lambda: hits.append("first"))
        stream.watch_offset(250_000, lambda: hits.append("second"))
        sim.run()
        assert hits == ["first", "second"]

    def test_cursor_resets_after_drain(self):
        """Once every watch fired, a fresh registration starts a new
        list rather than appending after a stale cursor."""
        sim, link = make_link(8.0e6)
        channel = link.open_channel()
        hits = []
        stream = channel.start_stream(1_000_000, lambda: None)
        stream.watch_offset(100_000, lambda: hits.append("early"))

        def late():
            assert stream._watches == []
            assert stream._watch_cursor == 0
            stream.watch_offset(800_000, lambda: hits.append("late"))

        sim.schedule(0.5, late)
        sim.run()
        assert hits == ["early", "late"]


class TestFastForwardMode:
    """The coalesced hot path must match event-per-tick bit for bit."""

    def _drain(self, fast_forward, loss_rate=0.0):
        sim = Simulator()
        link = AccessLink(
            sim, 8.0e6, loss_rate=loss_rate, fast_forward=fast_forward
        )
        channel = link.open_channel(rtt=0.2)
        done = []
        hits = []
        stream = channel.start_stream(4_000_000, lambda: done.append(sim.now))
        stream.watch_offset(1_000_000, lambda: hits.append(sim.now))
        sim.run()
        return done, hits, link.bytes_delivered, channel._loss_count

    def test_drain_identical_with_and_without(self):
        assert self._drain(False) == self._drain(True)

    def test_lossy_drain_identical_with_and_without(self):
        off = self._drain(False, loss_rate=0.02)
        on = self._drain(True, loss_rate=0.02)
        assert off == on
        assert off[3] > 0, "loss must actually occur for this to test RNG"

    def test_fast_forward_coalesces_heap_events(self):
        def events_scheduled(fast_forward):
            sim = Simulator()
            link = AccessLink(
                sim, 8.0e6, loss_rate=0.02, fast_forward=fast_forward
            )
            channel = link.open_channel(rtt=0.2)
            channel.start_stream(8_000_000, lambda: None)
            sim.run()
            return sim.events_scheduled, link.pokes

        off_events, off_pokes = events_scheduled(False)
        on_events, on_pokes = events_scheduled(True)
        assert on_events < off_events / 2
        assert on_pokes == off_pokes, "inline steps must mirror heap ticks"


class TestBatchedRunDetection:
    """Boundary behaviour of the batched executor's run detection.

    A *run* is a maximal stretch of silent refresh steps that
    ``_run_batch`` absorbs in one call.  These tests pin where runs must
    end (a foreign heap event, the ``run(until=)`` cap) and that a batch
    invocation absorbing zero steps is not counted as a run — each
    against the reference engine bit for bit.
    """

    def _build(self, batched, channels=2, size=2_000_000, rtt=0.2):
        # 100 MB/s link: far above the 4 MB/0.2 s window cap, so the
        # whole drain stays cwnd-limited and every silent stretch is a
        # sequence of rtt/2 = 0.1 s refresh steps the batch loop can eat.
        sim = ArraySimulator() if batched else Simulator()
        link = AccessLink(
            sim, 8.0e8, fast_forward=batched, batched=batched
        )
        done = []
        for index in range(channels):
            channel = link.open_channel(rtt=rtt)
            channel.start_stream(
                size, lambda index=index: done.append((index, sim.now))
            )
        return sim, link, done

    def test_run_split_by_cross_kind_event(self):
        """A foreign heap event mid-drain ends the run; a second run
        resumes after it.  Observables stay bit-identical."""
        ref_sim, _, ref_done = self._build(batched=False)
        ref_sim.schedule(1.0, lambda: None)
        ref_sim.run()

        sim, link, done = self._build(batched=True)
        sim.schedule(1.0, lambda: None)
        sim.run()

        assert done == ref_done
        assert link.batch_runs >= 2, (
            "the foreign event must split the silent drain into at "
            "least a run before it and a run after it"
        )

    def test_zero_length_runs_not_counted(self):
        """Foreign events denser than the batch loop's first horizon:
        every batch invocation refuses at step zero and no run is
        recorded, while the generic fast-forward step still works."""
        def run(batched):
            sim, link, done = self._build(batched=batched)
            # One no-op every 0.15 s (above the 0.1 s slow-start refresh
            # span, below two of them) for the whole drain: a generic
            # inline advance sometimes fits before the next no-op, but a
            # second consecutive step never does — every batch
            # invocation refuses at step zero.
            for k in range(1, 40):
                sim.schedule(0.15 * k, lambda: None)
            sim.run()
            return sim, link, done

        ref_sim, _, ref_done = run(batched=False)
        sim, link, done = run(batched=True)
        assert done == ref_done
        assert link.ff_steps > 0, "the generic inline step must engage"
        assert link.batch_runs == 0, (
            "zero-step batch invocations must not count as runs"
        )
        assert link.batch_steps == 0

    def test_run_truncated_by_run_until(self):
        """``run(until=)`` caps a run mid-silent-window: the clock stops
        exactly at the cap with partially-delivered state identical to
        the reference engine, and resuming completes identically."""
        ref_sim, ref_link, ref_done = self._build(batched=False)
        sim, link, done = self._build(batched=True)

        assert ref_sim.run(until=1.0) == 1.0
        assert sim.run(until=1.0) == 1.0
        assert sim.now == 1.0
        ref_bytes = [
            s.bytes_done for c in ref_link.channels for s in c.streams
        ]
        bat_bytes = [
            s.bytes_done for c in link.channels for s in c.streams
        ]
        assert bat_bytes == ref_bytes, "mid-run state must match bitwise"
        assert done == ref_done == []

        ref_sim.run()
        sim.run()
        assert done == ref_done
        assert link.bytes_delivered == ref_link.bytes_delivered

    def test_multi_stream_batch_engages_and_matches(self):
        """Two connections drain through the general (array-hoisted)
        batch loop — runs recorded, observables bit-identical."""
        ref_sim, ref_link, ref_done = self._build(batched=False)
        ref_sim.run()
        sim, link, done = self._build(batched=True)
        sim.run()
        assert done == ref_done
        assert link.bytes_delivered == ref_link.bytes_delivered
        assert link.batch_runs >= 1
        assert link.batch_steps > link.batch_runs
        assert link.pokes == ref_link.pokes, (
            "batched steps must mirror one-per-tick accounting"
        )

    def test_single_stream_scalar_batch_matches(self):
        """The one-connection drain takes the scalar fast path and still
        mirrors the reference trace exactly."""
        ref_sim, ref_link, ref_done = self._build(batched=False, channels=1)
        ref_sim.run()
        sim, link, done = self._build(batched=True, channels=1)
        sim.run()
        assert done == ref_done
        assert link.batch_steps > 0
        assert link.pokes == ref_link.pokes

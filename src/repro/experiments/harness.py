"""Running configurations over corpora and collecting distributions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Union

from repro.baselines.configs import run_config
from repro.browser.metrics import LoadMetrics
from repro.calibration import DEFAULT_EVAL_HOUR
from repro.pages.dynamics import LoadStamp
from repro.pages.page import PageBlueprint
from repro.replay.cache import SnapshotCache, materialize_cached
from repro.replay.recorder import record_snapshot


@dataclass
class ExperimentRun:
    """Distributions of one metric across a corpus, per configuration."""

    metric: str
    values: Dict[str, List[float]] = field(default_factory=dict)

    def add(self, config: str, value: float) -> None:
        self.values.setdefault(config, []).append(value)

    def series(self, config: str) -> List[float]:
        try:
            return self.values[config]
        except KeyError:
            known = ", ".join(sorted(self.values)) or "<none>"
            raise KeyError(
                f"no series for config {config!r}; "
                f"this run holds: {known}"
            ) from None

    @classmethod
    def merge(cls, runs: Iterable["ExperimentRun"]) -> "ExperimentRun":
        """Combine shards (e.g. from parallel workers) into one run.

        Shards must agree on the metric; per-config series concatenate in
        shard order, so sharding a corpus and merging reproduces the
        unsharded run exactly.
        """
        runs = list(runs)
        if not runs:
            raise ValueError("cannot merge zero ExperimentRun shards")
        metrics = {run.metric for run in runs}
        if len(metrics) > 1:
            raise ValueError(
                f"cannot merge runs over different metrics: {sorted(metrics)}"
            )
        merged = cls(metric=runs[0].metric)
        for run in runs:
            for config, series in run.values.items():
                merged.values.setdefault(config, []).extend(series)
        return merged


def load_once(
    page: PageBlueprint,
    config: str,
    stamp: Optional[LoadStamp] = None,
    snapshot_cache: Union[SnapshotCache, None, bool] = False,
    **kwargs,
) -> LoadMetrics:
    """Record one snapshot of ``page`` and load it under ``config``.

    ``snapshot_cache`` selects where the snapshot/store come from: ``False``
    (default) records fresh, ``None`` uses the session-wide cache, or pass
    a :class:`SnapshotCache` instance.
    """
    stamp = stamp or LoadStamp(when_hours=DEFAULT_EVAL_HOUR)
    if snapshot_cache is False:
        snapshot = page.materialize(stamp)
        store = record_snapshot(snapshot)
    else:
        cache = None if snapshot_cache in (None, True) else snapshot_cache
        snapshot, store = materialize_cached(page, stamp, cache)
    return run_config(config, page, snapshot, store, **kwargs)


def sweep_configs(
    pages: Iterable[PageBlueprint],
    configs: Iterable[str],
    metric: Callable[[LoadMetrics], float] = lambda metrics: metrics.plt,
    metric_name: str = "plt",
    stamp: Optional[LoadStamp] = None,
    per_page_hook: Optional[
        Callable[[PageBlueprint, str, LoadMetrics], None]
    ] = None,
    workers: Optional[int] = None,
    cache: Optional[SnapshotCache] = None,
) -> ExperimentRun:
    """Load every page under every configuration; collect one metric.

    Runs on the parallel sweep engine: ``workers=None`` uses the session
    default (1, i.e. serial, unless raised via
    :func:`repro.experiments.parallel.set_default_workers` or the CLI's
    ``--workers``); any value > 1 fans the (page, config) jobs out over
    that many processes.  Results are collected by job index, so the
    returned run is bit-identical regardless of the worker count.
    """
    from repro.experiments.parallel import get_default_workers, run_sweep

    if workers is None:
        workers = get_default_workers()
    run, _ = run_sweep(
        pages,
        configs,
        metric=metric,
        metric_name=metric_name,
        stamp=stamp,
        per_page_hook=per_page_hook,
        workers=workers,
        cache=cache,
    )
    return run

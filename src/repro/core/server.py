"""Vroom-compliant origin servers: replay servers + hints + push.

``vroom_servers`` wraps a recorded page into per-domain origin servers
whose HTML responses carry dependency hints and trigger pushes, per a
:class:`~repro.core.resolver.ResolutionStrategy` and a
:class:`~repro.core.push_policy.PushPolicy`.  Partial-adoption experiments
restrict the behaviour to a subset of domains (Sec 6.1's first-party-only
scenario); every other domain behaves as a plain HTTP/2 server.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.calibration import VROOM_ONLINE_PARSE_OVERHEAD
from repro.core.hints import HintBundle
from repro.core.offline import OfflineResolver
from repro.core.push_policy import PushPolicy, select_pushes
from repro.core.resolver import ResolutionStrategy, VroomResolver
from repro.net.origin import OriginServer, Response
from repro.pages.page import PageBlueprint, PageSnapshot
from repro.replay.replayer import ResponseDecorator, build_servers
from repro.replay.store import RecordedResponse, ReplayStore


def first_party_domains(page: PageBlueprint) -> Set[str]:
    """Domains controlled by the page's own organisation."""
    return {f"{page.name}.com"}


def make_vroom_decorator(
    page: PageBlueprint,
    snapshot: PageSnapshot,
    *,
    strategy: ResolutionStrategy = ResolutionStrategy.VROOM,
    push_policy: PushPolicy = PushPolicy.HIGH_PRIORITY_LOCAL,
    send_hints: bool = True,
    adopting_domains: Optional[Set[str]] = None,
    as_of_hours: Optional[float] = None,
    device_class: str = "phone",
    resolver: Optional[VroomResolver] = None,
) -> ResponseDecorator:
    """Response decorator adding hints/pushes to HTML responses.

    ``adopting_domains`` of ``None`` means universal adoption.  Hints for
    every document are precomputed once (they depend only on the snapshot
    and the offline database, not on request timing).
    """
    resolver = resolver or VroomResolver(page, strategy=strategy)
    when = as_of_hours if as_of_hours is not None else snapshot.stamp.when_hours
    bundles: Dict[str, HintBundle] = {}
    uses_online = strategy in (
        ResolutionStrategy.VROOM,
        ResolutionStrategy.ONLINE_ONLY,
    )
    for doc in snapshot.documents():
        if adopting_domains is not None and doc.domain not in adopting_domains:
            continue
        bundles[doc.url] = resolver.hints_for(
            doc, as_of_hours=when, device_class=device_class
        )

    def decorate(
        recorded: RecordedResponse, response: Response, is_push: bool
    ) -> Response:
        if not recorded.is_html or is_push:
            return response
        bundle = bundles.get(recorded.url)
        if bundle is None:
            return response
        if send_hints:
            response.hints = list(bundle)
        response.pushes = select_pushes(push_policy, bundle, recorded.domain)
        if uses_online:
            response.think_time += VROOM_ONLINE_PARSE_OVERHEAD
        return response

    return decorate


def hinted_extra_content(
    page: PageBlueprint,
    snapshot: PageSnapshot,
    resolver: VroomResolver,
    *,
    as_of_hours: float,
    device_class: str = "phone",
    adopting_domains: Optional[Set[str]] = None,
) -> Dict[str, RecordedResponse]:
    """Servable bodies for hinted URLs absent from this load.

    Server false positives (stale offline entries, the online-only
    strawman's own nonce URLs) are fetched by the client even though the
    page never references them; origin servers must have *something* to
    return.  Sizes come from the resolver's own exemplars.
    """
    known = set(snapshot.urls())
    extra: Dict[str, RecordedResponse] = {}
    for doc in snapshot.documents():
        if adopting_domains is not None and doc.domain not in adopting_domains:
            continue
        bundle = resolver.hints_for(
            doc, as_of_hours=as_of_hours, device_class=device_class
        )
        for hint in bundle:
            if hint.url in known or hint.url in extra:
                continue
            extra[hint.url] = RecordedResponse(
                url=hint.url,
                domain=hint.url.partition("/")[0],
                size=max(hint.size_estimate, 600),
                is_html=hint.url.endswith(".html"),
            )
    return extra


def vroom_servers(
    page: PageBlueprint,
    snapshot: PageSnapshot,
    store: ReplayStore,
    *,
    strategy: ResolutionStrategy = ResolutionStrategy.VROOM,
    push_policy: PushPolicy = PushPolicy.HIGH_PRIORITY_LOCAL,
    send_hints: bool = True,
    adopting_domains: Optional[Set[str]] = None,
    offline: Optional[OfflineResolver] = None,
    atf_first: bool = False,
) -> Dict[str, OriginServer]:
    """Per-domain servers implementing the chosen Vroom configuration."""
    resolver = VroomResolver(
        page, strategy=strategy, offline=offline, atf_first=atf_first
    )
    when = snapshot.stamp.when_hours
    decorator = make_vroom_decorator(
        page,
        snapshot,
        strategy=strategy,
        push_policy=push_policy,
        send_hints=send_hints,
        adopting_domains=adopting_domains,
        as_of_hours=when,
        resolver=resolver,
    )
    extra = hinted_extra_content(
        page,
        snapshot,
        resolver,
        as_of_hours=when,
        adopting_domains=adopting_domains,
    )
    return build_servers(store, decorator=decorator, extra_content=extra)

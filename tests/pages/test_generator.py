"""Tests for the statistical page generator."""

from repro.calibration import ALEXA_TOP100_PROFILE, NEWS_SPORTS_PROFILE
from repro.pages.dynamics import LoadStamp
from repro.pages.generator import PageGenerator, generate_page
from repro.pages.resources import Discovery, ResourceType

STAMP = LoadStamp(when_hours=500.0)


class TestDeterminism:
    def test_same_seed_same_page(self):
        a = generate_page(NEWS_SPORTS_PROFILE, "p", seed=7)
        b = generate_page(NEWS_SPORTS_PROFILE, "p", seed=7)
        assert set(a.specs) == set(b.specs)
        for name in a.specs:
            assert a.specs[name].size == b.specs[name].size
            assert a.specs[name].domain == b.specs[name].domain

    def test_different_seed_different_page(self):
        a = generate_page(NEWS_SPORTS_PROFILE, "p", seed=1)
        b = generate_page(NEWS_SPORTS_PROFILE, "p", seed=2)
        assert set(a.specs) != set(b.specs) or any(
            a.specs[n].size != b.specs[n].size for n in a.specs
        )


class TestStructure:
    def test_pages_validate(self):
        for seed in range(5):
            generate_page(NEWS_SPORTS_PROFILE, f"v{seed}", seed=seed).validate()

    def test_single_root(self):
        page = generate_page(NEWS_SPORTS_PROFILE, "p", seed=3)
        roots = [s for s in page.specs.values() if s.parent is None]
        assert len(roots) == 1
        assert roots[0].rtype is ResourceType.HTML

    def test_first_party_hosts_root(self):
        page = generate_page(NEWS_SPORTS_PROFILE, "mysite", seed=3)
        assert page.root_spec.domain == "mysite.com"

    def test_script_computed_children_under_js(self):
        page = generate_page(NEWS_SPORTS_PROFILE, "p", seed=4)
        for spec in page.specs.values():
            if spec.discovery is Discovery.SCRIPT_COMPUTED:
                assert page.specs[spec.parent].rtype is ResourceType.JS

    def test_css_refs_under_css(self):
        page = generate_page(NEWS_SPORTS_PROFILE, "p", seed=4)
        for spec in page.specs.values():
            if spec.discovery is Discovery.CSS_REF:
                assert page.specs[spec.parent].rtype is ResourceType.CSS

    def test_iframes_are_personalized_third_party_html(self):
        page = generate_page(NEWS_SPORTS_PROFILE, "p", seed=5)
        frames = [
            s
            for s in page.specs.values()
            if s.rtype is ResourceType.HTML and s.parent is not None
        ]
        for frame in frames:
            assert frame.personalized


class TestStatistics:
    def test_processable_byte_share_near_profile(self):
        shares = []
        for seed in range(6):
            page = generate_page(NEWS_SPORTS_PROFILE, f"s{seed}", seed=seed)
            snap = page.materialize(STAMP)
            shares.append(snap.processable_bytes() / snap.total_bytes())
        mean_share = sum(shares) / len(shares)
        target = NEWS_SPORTS_PROFILE.processable_byte_share
        assert abs(mean_share - target) < 0.10

    def test_resource_count_scales_with_profile(self):
        heavy = generate_page(NEWS_SPORTS_PROFILE, "h", seed=11)
        light = generate_page(ALEXA_TOP100_PROFILE, "l", seed=11)
        assert len(heavy.specs) > len(light.specs)

    def test_multiple_domains(self):
        page = generate_page(NEWS_SPORTS_PROFILE, "p", seed=12)
        snap = page.materialize(STAMP)
        assert len(snap.domains()) >= 5

    def test_nonce_media_is_small(self):
        """Unpredictable non-script resources are beacons, not banners."""
        for seed in range(6):
            page = generate_page(NEWS_SPORTS_PROFILE, f"n{seed}", seed=seed)
            for spec in page.specs.values():
                if spec.unpredictable and spec.rtype in (
                    ResourceType.IMAGE,
                    ResourceType.JSON,
                    ResourceType.OTHER,
                ):
                    assert spec.size <= 4000

    def test_dynamic_bias_increases_flux(self):
        generator = PageGenerator(NEWS_SPORTS_PROFILE, seed=21)
        calm = generator.generate("calm", dynamic_bias=0.5)
        generator = PageGenerator(NEWS_SPORTS_PROFILE, seed=21)
        wild = generator.generate("wild", dynamic_bias=3.0)

        def unpredictable_count(page):
            return sum(
                1 for spec in page.specs.values() if spec.unpredictable
            )

        assert unpredictable_count(wild) > unpredictable_count(calm)

    def test_third_party_scripts_have_think_time(self):
        page = generate_page(NEWS_SPORTS_PROFILE, "p", seed=30)
        third_party_js = [
            s
            for s in page.specs.values()
            if s.rtype is ResourceType.JS and s.domain != "p.com"
        ]
        assert third_party_js
        assert all(s.server_think_time is not None for s in third_party_js)

    def test_first_party_media_has_default_think(self):
        page = generate_page(NEWS_SPORTS_PROFILE, "p", seed=30)
        first_party_media = [
            s
            for s in page.specs.values()
            if s.rtype is ResourceType.IMAGE and s.domain == "p.com"
        ]
        assert all(s.server_think_time is None for s in first_party_media)

"""PERF4xx: allocation and construction rules for hot regions.

These rules only run inside the *hot region* of the call graph — the
transitive closure of the ``# repro: hotpath`` pragma seeds (see
:mod:`repro.devtools.callgraph`).  A comprehension in a report formatter
is idiomatic Python; the same comprehension inside the link's refresh
tick allocates on every simulated event, and PRs 5–6 spent most of
their profile wins removing exactly that class of code by hand.

The rules, in increasing order of judgement required:

* **PERF401** — per-iteration container allocation: comprehensions and
  container-constructor calls inside a loop of a hot function, plus
  constant-element ``set``/``list`` displays anywhere in a hot function
  (those can always be hoisted to a module constant).
* **PERF402** — per-call construction of engine objects that are meant
  to be built once: ``random.Random``, ``re.compile`` (or implicit
  compilation via module-level ``re.match`` and friends), ``datetime``
  constructors.
* **PERF403** — the same attribute chain loaded repeatedly inside one
  loop: CPython resolves ``self.queue.heap`` on every load, so invariant
  chains belong in a local before the loop.
* **PERF404** — ``try``/``except`` inside a loop of a hot function:
  zero-cost until it isn't (the handler path allocates a traceback per
  iteration), and it usually hides an LBYL check that would be cheaper.
* **PERF405** — instantiating a project class with no ``__slots__``
  inside a hot region: each instance carries a dict; hot-path object
  churn is exactly where ``__slots__`` pays.

Each rule is a heuristic, not a proof — the triage contract from
CONTRIBUTING.md applies: fix it, waive the line with
``# repro: allow[PERF40x] reason``, or baseline it with a reason.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from repro.devtools.callgraph import CallGraph, FunctionInfo, ModuleInfo
from repro.devtools.findings import Finding

#: Container constructors whose call-with-arguments inside a loop means
#: a fresh allocation (and usually a full copy) per iteration.
_CONTAINER_CALLS = frozenset(
    {"list", "dict", "set", "frozenset", "tuple", "sorted"}
)

#: ``re`` module functions that compile their pattern on every call.
_RE_IMPLICIT = frozenset(
    {"match", "fullmatch", "search", "sub", "subn", "split", "findall",
     "finditer", "compile"}
)

#: ``datetime`` constructors / wall-clock-ish factories.
_DATETIME_CALLS = frozenset(
    {
        "datetime.datetime", "datetime.date", "datetime.time",
        "datetime.timedelta", "datetime.datetime.now",
        "datetime.datetime.utcnow", "datetime.datetime.today",
        "datetime.date.today", "datetime.datetime.fromtimestamp",
    }
)

#: Minimum loads of one attribute chain in one loop before PERF403 fires.
_HOIST_THRESHOLD = 3


def _dotted(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def _describe(node: ast.expr, limit: int = 48) -> str:
    text = ast.unparse(node)
    return text if len(text) <= limit else text[: limit - 3] + "..."


def _is_static_element(node: ast.expr) -> bool:
    """Constant, or a dotted chain like ``FaultKind.SERVER_ERROR``.

    Bare names do not count: ``{start}`` with a local ``start`` is a
    legitimate per-call set.  Depth-2+ chains are module-level enums and
    constants in this codebase, so a display built only from them can be
    hoisted to a module constant.
    """
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.Attribute):
        return _dotted(node) is not None
    return False


class _HotFunctionVisitor(ast.NodeVisitor):
    """Scan one hot function's body for PERF4xx violations."""

    def __init__(
        self,
        info: ModuleInfo,
        fn: FunctionInfo,
        graph: CallGraph,
        chain: str,
    ):
        self.info = info
        self.fn = fn
        self.graph = graph
        self.chain = chain  # why this function is hot, for messages
        self.findings: List[Finding] = []
        self._loop_depth = 0
        #: attribute chains assigned anywhere in the function: a chain
        #: that is ever a Store target is not loop-invariant.
        self._stored_chains = {
            _dotted(node)
            for node in ast.walk(fn.node)
            if isinstance(node, ast.Attribute)
            and isinstance(node.ctx, (ast.Store, ast.Del))
        }
        self._stored_chains.discard(None)

    # -- plumbing ----------------------------------------------------------

    def _emit(self, code: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                code=code,
                path=self.fn.path,
                line=getattr(node, "lineno", self.fn.line),
                message=f"{message} [hot: {self.chain}]",
            )
        )

    @property
    def _in_loop(self) -> bool:
        return self._loop_depth > 0

    # -- loops -------------------------------------------------------------

    def _visit_loop(self, node) -> None:
        if isinstance(node, ast.For):
            # The iterable expression evaluates once per loop *entry*.
            self.visit(node.iter)
            for target in (
                [node.target] if not isinstance(node.target, ast.Tuple)
                else node.target.elts
            ):
                self.visit(target)
        self._loop_depth += 1
        if self._loop_depth == 1:
            self._check_hoistable_chains(node)
        try:
            if isinstance(node, ast.While):
                self.visit(node.test)
            for stmt in node.body:
                self.visit(stmt)
        finally:
            self._loop_depth -= 1
        for stmt in node.orelse:
            self.visit(stmt)

    visit_For = _visit_loop
    visit_While = _visit_loop

    def _check_hoistable_chains(self, loop: ast.AST) -> None:
        """PERF403: one chain loaded >= threshold times in one loop."""
        # Names (re)bound inside the loop — loop targets, assignments,
        # walrus bindings: a chain hanging off one changes per trip and
        # cannot be hoisted.
        loop_bound = {
            node.id
            for node in ast.walk(loop)
            if isinstance(node, ast.Name)
            and isinstance(node.ctx, (ast.Store, ast.Del))
        }
        counts: Dict[str, Tuple[int, int]] = {}  # chain -> (count, line)
        for node in ast.walk(loop):
            if not isinstance(node, ast.Attribute):
                continue
            if not isinstance(node.ctx, ast.Load):
                continue
            chain = _dotted(node)
            if chain is None or "." not in chain:
                continue
            if chain.partition(".")[0] in loop_bound:
                continue
            # Only count the full chain, not its prefixes: walking also
            # yields ``self.queue`` inside ``self.queue.heap``.
            parent_chains = counts.get(chain)
            count, line = parent_chains if parent_chains else (0, node.lineno)
            counts[chain] = (count + 1, min(line, node.lineno))
        inner = {
            chain.rpartition(".")[0] for chain in counts if chain.count(".") > 1
        }
        for chain in sorted(counts):
            count, line = counts[chain]
            if count < _HOIST_THRESHOLD:
                continue
            if chain in inner:
                continue  # reported via the longer chain (or below noise)
            if chain in self._stored_chains:
                continue
            prefix = chain.rpartition(".")[0]
            if prefix in self._stored_chains:
                continue
            self._emit(
                "PERF403",
                _Anchor(line),
                f"`{chain}` loaded {count}x inside one loop — hoist to a "
                "local before the loop if invariant",
            )

    # -- allocation rules --------------------------------------------------

    def _visit_comprehension_node(self, node) -> None:
        if self._in_loop and not isinstance(node, ast.GeneratorExp):
            kind = type(node).__name__
            self._emit(
                "PERF401",
                node,
                f"{kind} `{_describe(node)}` allocates per loop iteration",
            )
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension_node
    visit_SetComp = _visit_comprehension_node
    visit_DictComp = _visit_comprehension_node
    visit_GeneratorExp = _visit_comprehension_node

    def _visit_display(self, node) -> None:
        elements = getattr(node, "elts", None)
        if elements is None:  # ast.Dict
            elements = [k for k in node.keys if k is not None] + node.values
        # Single-element lists/dicts are dominated by ``[0] * n`` seed
        # patterns where the display itself is not the cost; sets keep
        # the threshold at one (``{FaultKind.X}`` membership sets are
        # exactly the target).
        minimum = 1 if isinstance(node, ast.Set) else 3
        if (
            len(elements) >= minimum
            and not isinstance(node, ast.Tuple)
            and all(_is_static_element(element) for element in elements)
        ):
            # A constant-element display rebuilds the same container on
            # every execution — hoistable regardless of loop nesting.
            self._emit(
                "PERF401",
                node,
                f"constant {type(node).__name__.lower()} display "
                f"`{_describe(node)}` rebuilt per call — hoist to a "
                "module-level constant",
            )
        self.generic_visit(node)

    visit_Set = _visit_display
    visit_List = _visit_display
    visit_Dict = _visit_display
    visit_Tuple = _visit_display  # constant tuples are folded by CPython

    # -- try/except --------------------------------------------------------

    def visit_Try(self, node: ast.Try) -> None:
        if self._in_loop:
            self._emit(
                "PERF404",
                node,
                "try/except inside a hot loop — the handler path builds "
                "a traceback per trip; prefer an explicit check",
            )
        self.generic_visit(node)

    # -- calls -------------------------------------------------------------

    def _canonical(self, node: ast.expr) -> Optional[str]:
        dotted = _dotted(node)
        if dotted is None:
            return None
        head, sep, rest = dotted.partition(".")
        from_imports = self.graph.from_imports.get(self.info.module, {})
        aliases = self.graph.module_aliases.get(self.info.module, {})
        if head in from_imports:
            module, symbol = from_imports[head]
            head = f"{module}.{symbol}"
        elif head in aliases:
            head = aliases[head]
        return head + sep + rest if sep else head

    def visit_Call(self, node: ast.Call) -> None:
        canon = self._canonical(node.func)
        if canon is not None:
            self._check_per_call_construction(node, canon)
            if (
                self._in_loop
                and canon in _CONTAINER_CALLS
                and (node.args or node.keywords)
            ):
                self._emit(
                    "PERF401",
                    node,
                    f"`{canon}(...)` call allocates a container per loop "
                    "iteration",
                )
        cls = self.graph.resolve_class(self.info.module, node.func)
        if cls is not None and not cls.has_slots and not cls.is_exception:
            self._emit(
                "PERF405",
                node,
                f"instantiates `{cls.name}` ({cls.path}:{cls.line}) which "
                "has no __slots__ — hot-path instances carry a dict each",
            )
        self.generic_visit(node)

    def _check_per_call_construction(
        self, node: ast.Call, canon: str
    ) -> None:
        if canon == "random.Random" or canon == "numpy.random.default_rng":
            self._emit(
                "PERF402",
                node,
                f"`{canon}(...)` constructed per call — build the RNG "
                "once and thread it through",
            )
        elif (
            canon.startswith("re.")
            and canon.partition(".")[2] in _RE_IMPLICIT
        ):
            self._emit(
                "PERF402",
                node,
                f"`{canon}(...)` compiles its pattern per call — hoist a "
                "module-level re.compile()",
            )
        elif canon in _DATETIME_CALLS:
            self._emit(
                "PERF402",
                node,
                f"`{canon}(...)` constructed per call in a hot region",
            )


class _Anchor:
    """A minimal lineno carrier for findings not tied to one node."""

    def __init__(self, lineno: int):
        self.lineno = lineno


def scan_perf(
    modules: List[ModuleInfo], graph: CallGraph
) -> List[Finding]:
    """Run the PERF4xx rules over every hot function in the project."""
    by_path = {info.path: info for info in modules}
    findings: List[Finding] = []
    for fn in graph.hot_functions():
        info = by_path.get(fn.path)
        if info is None:
            continue
        visitor = _HotFunctionVisitor(
            info, fn, graph, chain=graph.hot[fn.qualname]
        )
        # Visit statements, not the def node itself: decorators and
        # default expressions evaluate at definition time, not per call.
        for stmt in fn.node.body:
            visitor.visit(stmt)
        findings.extend(visitor.findings)
    return findings

"""Fleet placement: replication, failover, live resharding, hot keys."""

import pytest

from repro import audit
from repro.audit import AuditError
from repro.net.faults import FaultPlan
from repro.service.placement import (
    FleetStore,
    FrontendCache,
    PlacementMap,
    shard_outage_rule,
    shard_url,
)
from repro.service.store import (
    HashRing,
    LookupStatus,
    StoreConfig,
    StoreEntry,
)

KEYS = [f"page{i}.com/" for i in range(400)]


def entry(page="news0", device="phone", at=0.0, size=100):
    return StoreEntry(
        page=page,
        device_class=device,
        payload={"urls": [f"{page}.com/app.js"], "exemplars": {}},
        computed_at_hours=at,
        size_bytes=size,
    )


@pytest.fixture
def audited():
    """Arm the audit for one test, restoring the prior state after."""
    was = audit.ENABLED
    audit.enable()
    yield
    if not was:
        audit.disable()


class TestPlacementMap:
    def test_matches_hashring_at_replication_one(self):
        # The fleet map must be a drop-in for the static ring: same
        # labels, same sha1, same tie-break — not one key moves.
        ring = HashRing(8)
        placement = PlacementMap(8)
        for key in KEYS:
            assert placement.shard_for(key) == ring.shard_for(key)

    def test_preference_list_is_distinct_and_prefix_stable(self):
        placement = PlacementMap(8, replication=3)
        for key in KEYS[:50]:
            owners = placement.shards_for(key)
            assert len(owners) == 3
            assert len(set(owners)) == 3
            # Raising the replication factor only appends replicas; it
            # never changes who the primary is.
            assert owners[0] == placement.shards_for(key, 1)[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            PlacementMap(0)
        with pytest.raises(ValueError):
            PlacementMap(4, vnodes=0)
        with pytest.raises(ValueError):
            PlacementMap(4, replication=0)
        with pytest.raises(ValueError):
            PlacementMap(4, replication=5)

    def test_join_moves_keys_only_to_the_joiner(self):
        placement = PlacementMap(8)
        before = {key: placement.shard_for(key) for key in KEYS}
        joiner = placement.begin_add_shard()
        while placement.pending_points():
            placement.step(16)
        moved = [key for key in KEYS if placement.shard_for(key) != before[key]]
        # Consistent hashing: a join steals arcs, it never shuffles
        # keys between existing shards — and it steals about 1/n.
        assert all(placement.shard_for(key) == joiner for key in moved)
        assert 0 < len(moved) <= len(KEYS) // 8

    def test_map_stays_valid_between_steps(self):
        placement = PlacementMap(4, vnodes=16)
        before = {key: placement.shard_for(key) for key in KEYS}
        joiner = placement.begin_add_shard()
        versions = {placement.version}
        while placement.pending_points():
            placement.step(1)
            versions.add(placement.version)
            for key in KEYS[:100]:
                owner = placement.shard_for(key)
                # Mid-migration every key routes to its old owner or the
                # joiner — never to some third shard.
                assert owner in (before[key], joiner)
        assert len(versions) == 1 + placement.vnodes

    def test_remove_shard_drains_fully(self):
        placement = PlacementMap(4)
        placement.begin_remove_shard(2)
        while placement.pending_points():
            placement.step(8)
        assert placement.shard_ids == [0, 1, 3]
        assert all(placement.shard_for(key) != 2 for key in KEYS)

    def test_reshard_guards(self):
        placement = PlacementMap(2, replication=2)
        with pytest.raises(ValueError):
            placement.begin_remove_shard(0)  # would drop below replication
        with pytest.raises(ValueError):
            placement.begin_remove_shard(9)
        placement.begin_add_shard()
        with pytest.raises(RuntimeError):
            placement.begin_add_shard()  # one reshard at a time


class TestShardOutageRule:
    def test_window_and_trailing_dot(self):
        plan = FaultPlan(
            seed=0,
            rules=(shard_outage_rule(1, down_at_hours=2.0, up_at_hours=4.0),),
        )

        def down(url, now):
            return (
                plan.transport_fault(url, "store.internal", now=now, attempt=0)
                is not None
            )

        assert not down(shard_url(1), 1.0)
        assert down(shard_url(1), 2.0)
        assert not down(shard_url(1), 4.5)
        # "shard1." must not match shard 11's URL.
        assert not down(shard_url(11), 3.0)


def fleet(
    shards=4,
    replication=1,
    rules=(),
    frontend_entries=0,
    frontend_ttl=0.5,
):
    config = StoreConfig(
        shard_count=shards,
        replication=replication,
        frontend_cache_entries=frontend_entries,
        frontend_cache_ttl_hours=frontend_ttl,
    )
    plan = FaultPlan(seed=0, rules=tuple(rules)) if rules else None
    return FleetStore(config, fault_plan=plan)


class TestFleetStoreFailover:
    def url_and_owners(self, store):
        url = "news0.com/"
        return url, store.placement.shards_for(url)

    def test_replica_serves_through_primary_outage(self):
        probe = fleet(shards=4, replication=2)
        url, owners = self.url_and_owners(probe)
        rule = shard_outage_rule(owners[0], down_at_hours=1.0, up_at_hours=2.0)
        store = fleet(shards=4, replication=2, rules=[rule])
        store.sync_health(0.0)
        store.insert(url, entry(at=0.0))
        store.sync_health(1.5)  # primary dies, losing its copy
        got = store.lookup(url, "news0", "phone", 1.5)
        assert got.entry is not None
        assert got.shard.index == owners[1]
        assert store.counters.failovers == 1
        assert store.counters.shard_wipes == 1
        assert store.counters.entries_lost == 1

    def test_replication_one_loses_the_keyspace(self):
        probe = fleet(shards=4, replication=1)
        url, owners = self.url_and_owners(probe)
        rule = shard_outage_rule(owners[0], down_at_hours=1.0, up_at_hours=2.0)
        store = fleet(shards=4, replication=1, rules=[rule])
        store.sync_health(0.0)
        store.insert(url, entry(at=0.0))
        store.sync_health(1.5)
        down = store.lookup(url, "news0", "phone", 1.5)
        assert down.unavailable and down.entry is None
        assert store.counters.unavailable == 1
        store.sync_health(2.5)  # healed — but the shard came back empty
        healed = store.lookup(url, "news0", "phone", 2.5)
        assert healed.entry is None
        assert healed.status is LookupStatus.MISS

    def test_read_repair_heals_the_healed_primary(self):
        probe = fleet(shards=4, replication=2)
        url, owners = self.url_and_owners(probe)
        rule = shard_outage_rule(owners[0], down_at_hours=0.0, up_at_hours=1.0)
        store = fleet(shards=4, replication=2, rules=[rule])
        store.sync_health(0.5)
        store.insert(url, entry(at=0.5))  # primary down: replica only
        store.sync_health(1.5)  # primary back, empty
        first = store.lookup(url, "news0", "phone", 1.5)
        assert first.shard.index == owners[1]
        assert first.probes == 2
        assert store.counters.read_repairs == 1
        # The repaired primary serves the next read itself.
        second = store.lookup(url, "news0", "phone", 1.6)
        assert second.shard.index == owners[0]
        assert store.counters.failovers == 1

    def test_failover_is_deterministic(self):
        probe = fleet(shards=6, replication=3)
        url, owners = self.url_and_owners(probe)
        rule = shard_outage_rule(owners[0], down_at_hours=1.0, up_at_hours=9.0)

        def run():
            store = fleet(shards=6, replication=3, rules=[rule])
            store.sync_health(0.0)
            for i, key in enumerate(KEYS[:60]):
                store.insert(
                    key, entry(page=f"page{i}", at=0.0)
                )
            outcomes = []
            for hour in (1.5, 2.5, 3.5):
                store.sync_health(hour)
                for i, key in enumerate(KEYS[:60]):
                    got = store.lookup(key, f"page{i}", "phone", hour)
                    outcomes.append(
                        (
                            got.status.value,
                            got.shard.index if got.shard else None,
                            got.probes,
                        )
                    )
            return outcomes, store.counters.as_dict()

        assert run() == run()


class TestFleetReshard:
    def populate(self, store, count=40):
        for i in range(count):
            store.insert(f"page{i}.com/", entry(page=f"page{i}", at=0.0))

    def test_audited_reshard_serves_every_key(self, audited):
        # The acceptance run: lookups interleave with segment-by-segment
        # migration under REPRO_AUDIT; a single wrong-shard routing (or
        # stranded copy) raises AuditError instead of passing.
        store = fleet(shards=4, replication=2)
        self.populate(store)
        store.begin_add_shard()
        while store.reshard_pending():
            store.reshard_step(points=8)
            for i in range(40):
                got = store.lookup(f"page{i}.com/", f"page{i}", "phone", 0.1)
                assert got.entry is not None
        assert store.migration.keys_moved > 0
        assert sorted(store.shards) == [0, 1, 2, 3, 4]

    def test_audit_catches_a_stranded_copy(self, audited):
        store = fleet(shards=4, replication=1)
        url = "news0.com/"
        store.insert(url, entry(at=0.0))
        owner = store.placement.shard_for(url)
        stray = next(i for i in store.shards if i != owner)
        store.shards[stray].insert(entry(at=0.0))
        with pytest.raises(AuditError, match="placement-residency"):
            store.lookup(url, "news0", "phone", 0.1)

    def test_remove_shard_migrates_and_retires(self):
        store = fleet(shards=4, replication=2)
        self.populate(store)
        store.begin_remove_shard(1)
        while store.reshard_pending():
            store.reshard_step(points=16)
        assert sorted(store.shards) == [0, 2, 3]
        assert [s.index for s in store.retired_shards] == [1]
        for i in range(40):
            got = store.lookup(f"page{i}.com/", f"page{i}", "phone", 0.1)
            assert got.entry is not None
            assert got.shard.index != 1

    def test_migration_keeps_copies_exactly_on_owners(self):
        store = fleet(shards=4, replication=2)
        self.populate(store)
        store.begin_add_shard()
        while store.reshard_pending():
            store.reshard_step(points=4)
            for i in range(40):
                key = (f"page{i}", "phone")
                owners = set(store.placement.shards_for(f"page{i}.com/"))
                holders = {
                    index
                    for index, shard in store.shards.items()
                    if shard.get(key) is not None
                }
                assert holders == owners


class TestFrontendCache:
    def test_lru_eviction_and_hits(self):
        cache = FrontendCache(2, ttl_hours=1.0)
        cache.put(("a", "phone"), entry(page="a"), 0.0)
        cache.put(("b", "phone"), entry(page="b"), 0.0)
        assert cache.get(("a", "phone"), 0.1) is not None  # promotes a
        cache.put(("c", "phone"), entry(page="c"), 0.2)  # evicts b
        assert cache.get(("b", "phone"), 0.3) is None
        assert cache.get(("a", "phone"), 0.3) is not None
        assert (cache.hits, cache.misses, cache.evictions) == (2, 1, 1)

    def test_ttl_expiry_counts_a_miss(self):
        cache = FrontendCache(2, ttl_hours=0.5)
        cache.put(("a", "phone"), entry(page="a"), 0.0)
        assert cache.get(("a", "phone"), 1.0) is None
        assert len(cache) == 0

    def test_invalidate_counts_only_real_removals(self):
        cache = FrontendCache(2, ttl_hours=1.0)
        cache.put(("a", "phone"), entry(page="a"), 0.0)
        cache.invalidate(("a", "phone"))
        cache.invalidate(("a", "phone"))
        assert cache.invalidations == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            FrontendCache(0, ttl_hours=1.0)
        with pytest.raises(ValueError):
            FrontendCache(2, ttl_hours=0.0)


class TestFleetFrontend:
    def test_hot_key_absorbed_by_frontend(self):
        store = fleet(shards=4, replication=1, frontend_entries=2)
        url = "news0.com/"
        store.insert(url, entry(at=0.0))
        first = store.lookup(url, "news0", "phone", 0.1)
        assert not first.frontend
        second = store.lookup(url, "news0", "phone", 0.2)
        assert second.frontend and second.probes == 0
        assert store.counters.frontend_hits == 1
        # Front-door accounting still sees exactly one hit per lookup.
        assert store.counters.hits == 2

    def test_insert_invalidates_the_frontend(self):
        store = fleet(shards=4, replication=1, frontend_entries=2)
        url = "news0.com/"
        store.insert(url, entry(at=0.0))
        store.lookup(url, "news0", "phone", 0.1)
        store.insert(url, entry(at=0.2))
        refreshed = store.lookup(url, "news0", "phone", 0.3)
        assert not refreshed.frontend
        assert refreshed.entry.computed_at_hours == 0.2

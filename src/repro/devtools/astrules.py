"""AST determinism and purity rules, tuned to this codebase.

The rules encode the repository's determinism contract (see
CONTRIBUTING.md): identical inputs must produce bit-identical
simulations across processes and ``PYTHONHASHSEED`` values, and the
simulation layers must not touch process state (clock, environment,
filesystem, stdout).

``scan_source`` is pure: it parses source text and returns findings; it
never imports or executes the code under analysis.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Union

from repro.devtools.findings import Finding

#: ``random`` module functions that draw from the hidden global RNG.
_GLOBAL_RNG_FUNCS = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gammavariate",
        "gauss", "getrandbits", "lognormvariate", "normalvariate",
        "paretovariate", "randbytes", "randint", "random", "randrange",
        "sample", "seed", "shuffle", "triangular", "uniform",
        "vonmisesvariate", "weibullvariate",
    }
)

#: Wall-clock reads (forbidden in pure simulation layers).
_WALL_CLOCK = frozenset(
    {
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns", "time.process_time",
        "time.process_time_ns", "datetime.datetime.now",
        "datetime.datetime.utcnow", "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Builtin calls that are I/O (forbidden in pure simulation layers).
_IO_BUILTINS = frozenset({"print", "input", "open", "breakpoint"})

#: ``os`` helpers that read or write the process environment.
_ENV_CALLS = frozenset({"os.getenv", "os.putenv", "os.unsetenv"})

#: Method names that read/write files regardless of receiver type.
_IO_METHODS = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes"}
)

#: Consumers whose output order follows their argument's iteration order.
_ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "enumerate", "iter"})


def _dotted(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def _describe(node: ast.expr, limit: int = 48) -> str:
    text = ast.unparse(node)
    return text if len(text) <= limit else text[: limit - 3] + "..."


class _RuleVisitor(ast.NodeVisitor):
    """One pass over one module's AST, collecting findings."""

    def __init__(self, path: str, pure: bool):
        self.path = path
        self.pure = pure
        self.findings: List[Finding] = []
        #: alias -> canonical dotted module path (``import numpy as np``).
        self._modules: Dict[str, str] = {}
        #: local name -> canonical dotted origin (``from time import time``).
        self._from_imports: Dict[str, str] = {}
        #: scope stack of name -> "is a set" verdicts for local dataflow.
        self._scopes: List[Dict[str, bool]] = [{}]
        self._function_stack: List[str] = []

    # -- bookkeeping ------------------------------------------------------

    def _emit(self, code: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                code=code,
                path=self.path,
                line=getattr(node, "lineno", 0),
                message=message,
            )
        )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._modules[alias.asname or alias.name.partition(".")[0]] = (
                alias.name
                if alias.asname
                else alias.name.partition(".")[0]
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                self._from_imports[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
        self.generic_visit(node)

    def _canonical(self, node: ast.expr) -> Optional[str]:
        """Dotted call target with import aliases resolved."""
        dotted = _dotted(node)
        if dotted is None:
            return None
        head, sep, rest = dotted.partition(".")
        if head in self._from_imports:
            head = self._from_imports[head]
        elif head in self._modules:
            head = self._modules[head]
        return head + sep + rest if sep else head

    # -- set dataflow ------------------------------------------------------

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            canon = self._canonical(node.func)
            if canon in ("set", "frozenset"):
                return True
            # s.union(...) / s.intersection(...) on a known set.
            if isinstance(node.func, ast.Attribute) and node.func.attr in (
                "union", "intersection", "difference", "symmetric_difference",
                "copy",
            ):
                return self._is_set_expr(node.func.value)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(
                node.right
            )
        if isinstance(node, ast.Name):
            for scope in reversed(self._scopes):
                if node.id in scope:
                    return scope[node.id]
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            self._scopes[-1][node.targets[0].id] = self._is_set_expr(
                node.value
            )
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name) and node.value is not None:
            self._scopes[-1][node.target.id] = self._is_set_expr(node.value)
        self.generic_visit(node)

    # -- scopes ------------------------------------------------------------

    def _visit_function(
        self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    ) -> None:
        self._function_stack.append(node.name)
        self._scopes.append({})
        self.generic_visit(node)
        self._scopes.pop()
        self._function_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- iteration rules ---------------------------------------------------

    def _check_iteration(
        self, iter_node: ast.expr, order_free: bool = False
    ) -> None:
        if self._is_set_expr(iter_node):
            if order_free:
                # Building a set from a set: contents are order-free.
                return
            self._emit(
                "DET101",
                iter_node,
                f"iteration over unordered set `{_describe(iter_node)}` — "
                "wrap in sorted() or deduplicate with dict.fromkeys()",
            )
            return
        if (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Attribute)
            and iter_node.func.attr == "keys"
            and not iter_node.args
        ):
            self._emit(
                "DET102",
                iter_node,
                f"iteration over `{_describe(iter_node)}` — iterate the "
                "dict itself (insertion order) or sorted() it",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def _visit_comprehension_node(self, node) -> None:
        order_free = isinstance(node, ast.SetComp)
        for comp in node.generators:
            self._check_iteration(comp.iter, order_free=order_free)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension_node
    visit_SetComp = _visit_comprehension_node
    visit_DictComp = _visit_comprehension_node
    visit_GeneratorExp = _visit_comprehension_node

    # -- call rules --------------------------------------------------------

    def _check_key_function(self, node: ast.Call) -> None:
        """sorted(..., key=id) and lambdas closing over id()/hash()."""
        for keyword in node.keywords:
            if keyword.arg != "key":
                continue
            value = keyword.value
            if isinstance(value, ast.Name) and value.id in ("id", "hash"):
                self._emit(
                    "DET105",
                    value,
                    f"`key={value.id}` orders by process-specific "
                    f"{value.id}() values",
                )
            elif isinstance(value, ast.Lambda):
                for inner in ast.walk(value.body):
                    if (
                        isinstance(inner, ast.Call)
                        and isinstance(inner.func, ast.Name)
                        and inner.func.id in ("id", "hash")
                        and inner.func.id not in self._from_imports
                    ):
                        self._emit(
                            "DET105",
                            inner,
                            f"ordering key uses builtin {inner.func.id}()",
                        )

    def visit_Call(self, node: ast.Call) -> None:
        canon = self._canonical(node.func)
        if canon is not None:
            self._check_random(node, canon)
            self._check_clock_and_io(node, canon)
            if canon in ("sorted", "min", "max") or canon.endswith(".sort"):
                self._check_key_function(node)
            if (
                canon in _ORDER_SENSITIVE_CALLS
                and len(node.args) == 1
                and self._is_set_expr(node.args[0])
            ):
                self._emit(
                    "DET101",
                    node,
                    f"`{canon}()` materialises an unordered set "
                    f"`{_describe(node.args[0])}` — sorted() it first",
                )
            if canon == "hash" and "__hash__" not in self._function_stack:
                self._emit(
                    "DET105",
                    node,
                    "builtin hash() is PYTHONHASHSEED-dependent for str "
                    "inputs — use hashlib or zlib.crc32 for stable values",
                )
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
            and len(node.args) == 1
            and self._is_set_expr(node.args[0])
        ):
            self._emit(
                "DET101",
                node,
                f"join over unordered set `{_describe(node.args[0])}`",
            )
        if (
            self.pure
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _IO_METHODS
        ):
            self._emit(
                "PUR201",
                node,
                f"file I/O `.{node.func.attr}()` inside a pure simulation "
                "layer",
            )
        self.generic_visit(node)

    def _check_random(self, node: ast.Call, canon: str) -> None:
        if canon == "random.Random" and not node.args and not node.keywords:
            self._emit(
                "DET103",
                node,
                "random.Random() without a seed draws from OS entropy",
            )
        elif (
            canon.startswith("random.")
            and canon.partition(".")[2] in _GLOBAL_RNG_FUNCS
        ):
            self._emit(
                "DET103",
                node,
                f"module-level `{canon}()` uses the hidden global RNG — "
                "thread a seeded random.Random through instead",
            )
        elif canon.startswith("numpy.random."):
            tail = canon.rpartition(".")[2]
            if tail in ("default_rng", "Generator", "RandomState",
                        "SeedSequence"):
                if not node.args and not node.keywords:
                    self._emit(
                        "DET103",
                        node,
                        f"`{canon}()` without a seed draws from OS entropy",
                    )
            else:
                self._emit(
                    "DET103",
                    node,
                    f"`{canon}()` uses numpy's global RNG — use a seeded "
                    "numpy.random.Generator",
                )

    def _check_clock_and_io(self, node: ast.Call, canon: str) -> None:
        if not self.pure:
            return
        if canon in _WALL_CLOCK:
            self._emit(
                "DET104",
                node,
                f"wall-clock read `{canon}()` inside a pure simulation "
                "layer — simulated time comes from Simulator.now",
            )
        elif canon in _IO_BUILTINS or canon in _ENV_CALLS:
            self._emit(
                "PUR201",
                node,
                f"`{canon}()` inside a pure simulation layer",
            )

    # -- attribute / subscript rules --------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self.pure:
            canon = self._canonical(node)
            if canon in ("os.environ", "sys.stdout", "sys.stderr", "sys.stdin"):
                self._emit(
                    "PUR201",
                    node,
                    f"`{canon}` access inside a pure simulation layer",
                )
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        for inner in ast.walk(node.slice):
            if (
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Name)
                and inner.func.id == "id"
            ):
                self._emit(
                    "DET105",
                    inner,
                    "id() used as a container key — ids are reused and "
                    "vary per process",
                )
        self.generic_visit(node)


def scan_tree(tree: ast.Module, path: str, pure: bool) -> List[Finding]:
    """Run every AST rule over an already-parsed module.

    The runner parses each file exactly once and shares the tree across
    rule families; this is the entry point that takes the shared tree.
    """
    visitor = _RuleVisitor(path, pure)
    visitor.visit(tree)
    return visitor.findings


def scan_source(source: str, path: str, pure: bool) -> List[Finding]:
    """Run every AST rule over one module's source text.

    ``pure`` marks modules in the pure simulation layers, where the
    wall-clock and I/O rules additionally apply.  Raises ``SyntaxError``
    if the source does not parse.
    """
    return scan_tree(ast.parse(source, filename=path), path, pure)

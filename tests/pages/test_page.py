"""Unit tests for blueprints and snapshots."""

import pytest

from repro.pages.dynamics import LoadStamp
from repro.pages.page import (
    PageBlueprint,
    merge_url_sets,
    shared_urls,
)
from repro.pages.resources import Discovery, ResourceSpec, ResourceType

STAMP = LoadStamp(when_hours=10.0)


def spec(name, rtype, parent=None, **kw):
    return ResourceSpec(
        name=name,
        rtype=rtype,
        domain=kw.pop("domain", "a.com"),
        size=kw.pop("size", 1000),
        parent=parent,
        **kw,
    )


def tiny_page():
    page = PageBlueprint(name="tiny", root="root")
    page.add(spec("root", ResourceType.HTML))
    page.add(spec("css", ResourceType.CSS, "root", position=0.1))
    page.add(spec("js", ResourceType.JS, "root", position=0.3))
    page.add(
        spec(
            "dyn",
            ResourceType.IMAGE,
            "js",
            discovery=Discovery.SCRIPT_COMPUTED,
        )
    )
    page.add(
        spec(
            "font",
            ResourceType.FONT,
            "css",
            discovery=Discovery.CSS_REF,
        )
    )
    page.add(
        spec(
            "frame",
            ResourceType.HTML,
            "root",
            position=0.8,
            domain="b.com",
        )
    )
    page.add(spec("framed_img", ResourceType.IMAGE, "frame", position=0.5))
    page.validate()
    return page


class TestBlueprint:
    def test_duplicate_name_rejected(self):
        page = PageBlueprint(name="p", root="root")
        page.add(spec("root", ResourceType.HTML))
        with pytest.raises(ValueError):
            page.add(spec("root", ResourceType.HTML))

    def test_unknown_parent_rejected(self):
        page = PageBlueprint(name="p", root="root")
        page.add(spec("root", ResourceType.HTML))
        with pytest.raises(ValueError):
            page.add(spec("x", ResourceType.JS, "missing"))

    def test_validate_requires_root(self):
        page = PageBlueprint(name="p", root="nope")
        page.add(spec("root", ResourceType.HTML))
        with pytest.raises(ValueError):
            page.validate()

    def test_validate_rejects_orphan(self):
        page = PageBlueprint(name="p", root="root")
        page.add(spec("root", ResourceType.HTML))
        page.specs["stray"] = spec("stray", ResourceType.JS)
        with pytest.raises(ValueError):
            page.validate()

    def test_validate_rejects_css_ref_under_script(self):
        page = PageBlueprint(name="p", root="root")
        page.add(spec("root", ResourceType.HTML))
        page.add(spec("js", ResourceType.JS, "root"))
        page.add(
            spec(
                "bad",
                ResourceType.FONT,
                "js",
                discovery=Discovery.CSS_REF,
            )
        )
        with pytest.raises(ValueError):
            page.validate()

    def test_validate_rejects_static_under_js(self):
        page = PageBlueprint(name="p", root="root")
        page.add(spec("root", ResourceType.HTML))
        page.add(spec("js", ResourceType.JS, "root"))
        page.add(spec("bad", ResourceType.IMAGE, "js"))
        with pytest.raises(ValueError):
            page.validate()

    def test_children_sorted_by_position(self):
        page = PageBlueprint(name="p", root="root")
        page.add(spec("root", ResourceType.HTML))
        page.add(spec("late", ResourceType.IMAGE, "root", position=0.9))
        page.add(spec("early", ResourceType.IMAGE, "root", position=0.1))
        names = [child.name for child in page.children_of("root")]
        assert names == ["early", "late"]


class TestSnapshot:
    def test_materialize_counts(self):
        snap = tiny_page().materialize(STAMP)
        assert len(snap.all_resources()) == 7

    def test_parent_child_wiring(self):
        snap = tiny_page().materialize(STAMP)
        js = snap.find("js")
        dyn = snap.find("dyn")
        assert dyn.parent is js
        assert dyn in js.children

    def test_iframe_flags(self):
        snap = tiny_page().materialize(STAMP)
        frame = snap.find("frame")
        framed = snap.find("framed_img")
        assert frame.is_iframe_doc
        assert not frame.in_iframe
        assert framed.in_iframe
        assert not snap.root.is_iframe_doc

    def test_process_order_is_preorder(self):
        snap = tiny_page().materialize(STAMP)
        orders = [r.process_order for r in snap.all_resources()]
        assert orders == sorted(orders)
        assert snap.root.process_order == 0

    def test_documents_have_bodies(self):
        snap = tiny_page().materialize(STAMP)
        for doc in snap.documents():
            assert len(doc.body) == doc.size

    def test_by_url_bijective(self):
        snap = tiny_page().materialize(STAMP)
        by_url = snap.by_url()
        assert len(by_url) == len(snap.all_resources())

    def test_total_bytes(self):
        snap = tiny_page().materialize(STAMP)
        assert snap.total_bytes() == sum(
            resource.size for resource in snap.all_resources()
        )

    def test_domains(self):
        snap = tiny_page().materialize(STAMP)
        assert set(snap.domains()) == {"a.com", "b.com"}

    def test_hintable_descendants_cut_at_iframe(self):
        snap = tiny_page().materialize(STAMP)
        hintable = snap.hintable_descendants(snap.root)
        names = {resource.name for resource in hintable}
        assert "frame" in names          # the iframe URL itself is hinted
        assert "framed_img" not in names  # but nothing beneath it
        assert "dyn" in names            # script-derived is inside envelope
        assert "font" in names           # css-derived too

    def test_processable_bytes_subset(self):
        snap = tiny_page().materialize(STAMP)
        assert 0 < snap.processable_bytes() < snap.total_bytes()


class TestSnapshotComparisons:
    def test_shared_urls_identity(self):
        page = tiny_page()
        a = page.materialize(STAMP)
        b = page.materialize(STAMP)
        assert shared_urls(a, b) == a.urls()

    def test_merge_url_sets_counts(self):
        page = tiny_page()
        snaps = [page.materialize(STAMP) for _ in range(3)]
        counts = merge_url_sets(snaps)
        assert all(count == 3 for count in counts.values())

"""Workload generator: Zipf popularity, Poisson arrivals, determinism."""

import pytest

from repro.service.workload import Workload, WorkloadConfig, ZipfPopularity


def config(**overrides):
    base = dict(pages=20, lookups=500, rate_per_hour=1000.0, seed=3)
    base.update(overrides)
    return WorkloadConfig(**base)


class TestZipfPopularity:
    def test_weights_sum_to_one_and_decay(self):
        popularity = ZipfPopularity(10, exponent=1.1)
        weights = [popularity.weight(rank) for rank in range(10)]
        assert sum(weights) == pytest.approx(1.0)
        assert weights == sorted(weights, reverse=True)

    def test_sample_covers_extremes(self):
        popularity = ZipfPopularity(10, exponent=1.1)
        assert popularity.sample(0.0) == 0
        assert popularity.sample(0.999999) == 9

    def test_zero_exponent_is_uniform(self):
        popularity = ZipfPopularity(4, exponent=0.0)
        assert popularity.weight(0) == pytest.approx(popularity.weight(3))

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfPopularity(0)
        with pytest.raises(ValueError):
            ZipfPopularity(5, exponent=-1.0)


class TestWorkloadDeterminism:
    def test_two_iterations_are_identical(self):
        workload = Workload(config())
        assert list(workload) == list(workload)

    def test_same_seed_same_stream_different_instances(self):
        assert list(Workload(config())) == list(Workload(config()))

    def test_different_seed_different_stream(self):
        assert list(Workload(config())) != list(Workload(config(seed=4)))

    def test_duration_matches_last_arrival(self):
        workload = Workload(config())
        last = list(workload)[-1]
        assert workload.duration_hours() == pytest.approx(last.when_hours)


class TestWorkloadShape:
    def test_arrivals_are_increasing_and_rate_roughly_holds(self):
        lookups = list(Workload(config(lookups=2000)))
        times = [lookup.when_hours for lookup in lookups]
        assert times == sorted(times)
        # 2000 arrivals at 1000/hour ≈ 2 hours, within Poisson noise.
        assert 1.5 < times[-1] < 2.5

    def test_seq_is_dense(self):
        lookups = list(Workload(config()))
        assert [lookup.seq for lookup in lookups] == list(range(500))

    def test_popular_pages_dominate(self):
        lookups = list(Workload(config(lookups=2000)))
        top = sum(1 for lookup in lookups if lookup.page_index == 0)
        bottom = sum(1 for lookup in lookups if lookup.page_index == 19)
        assert top > 5 * max(bottom, 1)

    def test_phone_fraction_extremes(self):
        all_phone = list(Workload(config(phone_fraction=1.0)))
        assert {lookup.device_class for lookup in all_phone} == {"phone"}
        all_tablet = list(Workload(config(phone_fraction=0.0)))
        assert {lookup.device_class for lookup in all_tablet} == {"tablet"}

    def test_users_come_from_the_pool(self):
        lookups = list(Workload(config(user_pool=4)))
        users = {lookup.user for lookup in lookups}
        assert users <= {"user0", "user1", "user2", "user3"}
        assert len(users) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            Workload(config(lookups=0))
        with pytest.raises(ValueError):
            Workload(config(rate_per_hour=0.0))
        with pytest.raises(ValueError):
            Workload(config(phone_fraction=1.5))


class TestFlashCrowd:
    def test_disabled_flash_leaves_the_stream_bit_identical(self):
        # The flash branch must not perturb the base generator: PR 4's
        # pinned smoke counters depend on this exact draw sequence.
        plain = list(Workload(config()))
        gated = list(Workload(config(flash_at_hours=None)))
        assert plain == gated

    def test_flash_concentrates_on_the_flash_page(self):
        flashed = list(
            Workload(
                config(
                    lookups=2000,
                    flash_at_hours=0.5,
                    flash_duration_hours=0.3,
                    flash_multiplier=8.0,
                    flash_focus=1.0,
                    flash_page_rank=3,
                )
            )
        )
        inside = [
            lookup
            for lookup in flashed
            if 0.5 <= lookup.when_hours < 0.8
        ]
        assert inside
        # The window gate reads the previous arrival's clock, so the
        # first in-window arrival may still be a base-branch draw.
        focused = sum(1 for lookup in inside if lookup.page_index == 3)
        assert focused >= len(inside) - 1

    def test_flash_multiplies_the_arrival_rate(self):
        window = (0.5, 0.8)
        base = list(Workload(config(lookups=2000)))
        flashed = list(
            Workload(
                config(
                    lookups=2000,
                    flash_at_hours=window[0],
                    flash_duration_hours=window[1] - window[0],
                    flash_multiplier=8.0,
                )
            )
        )

        def in_window(stream):
            return sum(
                1 for x in stream if window[0] <= x.when_hours < window[1]
            )

        assert in_window(flashed) > 3 * in_window(base)

    def test_flash_validation(self):
        with pytest.raises(ValueError):
            Workload(config(flash_at_hours=-1.0))
        with pytest.raises(ValueError):
            Workload(config(flash_at_hours=1.0, flash_duration_hours=0.0))
        with pytest.raises(ValueError):
            Workload(config(flash_at_hours=1.0, flash_multiplier=0.0))
        with pytest.raises(ValueError):
            Workload(config(flash_at_hours=1.0, flash_focus=1.5))
        with pytest.raises(ValueError):
            Workload(config(flash_at_hours=1.0, flash_page_rank=20))

"""Tests for the Vroom client scheduler (staging, preload semantics)."""

import pytest

from repro.browser.engine import BrowserConfig, PageLoadEngine
from repro.core.scheduler import FetchAsapScheduler, VroomScheduler
from repro.core.server import vroom_servers
from repro.net.http import NetworkConfig
from repro.net.link import StreamScheduling
from repro.pages.resources import Priority


def vroom_engine(page, snapshot, store, policy=None, **net_kw):
    servers = vroom_servers(page, snapshot, store)
    return PageLoadEngine(
        snapshot,
        servers,
        NetworkConfig(
            h2_scheduling=StreamScheduling.FIFO, **net_kw
        ),
        BrowserConfig(when_hours=snapshot.stamp.when_hours),
        policy or VroomScheduler(),
    )


class TestStaging:
    def test_stages_advance_in_order(self, page, snapshot, store):
        policy = VroomScheduler()
        transitions = []
        original = policy._stage_check

        def traced():
            before = policy.stage
            original()
            if policy.stage is not before:
                transitions.append((before, policy.stage))

        policy._stage_check = traced
        engine = vroom_engine(page, snapshot, store, policy=policy)
        engine.run()
        assert policy.stage is Priority.UNIMPORTANT
        # Stages only ever move forward (a check may advance two at once).
        for before, after in transitions:
            assert after > before

    def test_unimportant_hints_fetched_after_preload(
        self, page, snapshot, store
    ):
        engine = vroom_engine(page, snapshot, store)
        metrics = engine.run()
        hint_fetch_starts = {}
        by_url = snapshot.by_url()
        for url, timeline in metrics.timelines.items():
            if timeline.discovered_via != "hint":
                continue
            resource = by_url.get(url)
            if resource is None or timeline.fetch_started_at is None:
                continue
            hint_fetch_starts.setdefault(resource.priority, []).append(
                timeline.fetch_started_at
            )
        if Priority.PRELOAD in hint_fetch_starts and (
            Priority.UNIMPORTANT in hint_fetch_starts
        ):
            assert min(hint_fetch_starts[Priority.PRELOAD]) < min(
                hint_fetch_starts[Priority.UNIMPORTANT]
            )

    def test_hints_discovered_at_header_time(self, page, snapshot, store):
        engine = vroom_engine(page, snapshot, store)
        metrics = engine.run()
        root_timeline = metrics.timelines[snapshot.root.url]
        hinted = [
            t
            for t in metrics.timelines.values()
            if t.discovered_via == "hint"
            and t.discovered_from == snapshot.root.url
        ]
        assert hinted
        for timeline in hinted:
            assert timeline.discovered_at >= root_timeline.headers_at - 1e-9
            assert timeline.discovered_at <= root_timeline.fetched_at + 1e-6

    def test_vroom_discovers_earlier_than_plain(self, page, snapshot, store):
        from repro.replay.replayer import build_servers
        from repro.browser.engine import load_page

        plain = load_page(
            snapshot,
            build_servers(store),
            NetworkConfig(),
            BrowserConfig(when_hours=snapshot.stamp.when_hours),
        )
        engine = vroom_engine(page, snapshot, store)
        vroom = engine.run()
        assert (
            vroom.discovery_complete_at() <= plain.discovery_complete_at()
        )


class TestPreloadSemantics:
    def test_prefetched_scripts_not_executed_until_referenced(
        self, page, snapshot, store
    ):
        """Link-preload semantics: bytes may arrive early, evaluation
        waits for an actual reference."""
        engine = vroom_engine(page, snapshot, store)
        metrics = engine.run()
        for resource in snapshot.all_resources():
            timeline = metrics.timelines[resource.url]
            if (
                timeline.discovered_via == "hint"
                and resource.rtype.value == "js"
                and resource.spec.discovery.value == "script"
                and timeline.processed_at is not None
            ):
                parent_timeline = metrics.timelines[resource.parent.url]
                assert (
                    timeline.processed_at
                    >= parent_timeline.processed_at - 1e-9
                )


class TestFetchAsap:
    def test_asap_fetches_all_hints_immediately(self, page, snapshot, store):
        engine = vroom_engine(
            page, snapshot, store, policy=FetchAsapScheduler()
        )
        metrics = engine.run()
        root_headers = metrics.timelines[snapshot.root.url].headers_at
        hinted = [
            t
            for t in metrics.timelines.values()
            if t.discovered_via == "hint"
            and t.discovered_from == snapshot.root.url
        ]
        for timeline in hinted:
            assert timeline.fetch_started_at == pytest.approx(
                timeline.discovered_at, abs=0.02
            )


class TestSchedulerBookkeeping:
    def test_hinted_urls_tracked(self, page, snapshot, store):
        policy = VroomScheduler()
        engine = vroom_engine(page, snapshot, store, policy=policy)
        engine.run()
        assert len(policy.hinted_urls()) > 10

    def test_no_duplicate_fetches(self, page, snapshot, store):
        engine = vroom_engine(page, snapshot, store)
        engine.run()
        served = sum(
            server.requests_served + server.pushes_sent
            for server in engine.client.servers.values()
        )
        assert served == len(engine.client.fetches)

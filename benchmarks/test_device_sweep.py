"""Device sweep: CPU headroom determines what Vroom can unlock.

Sec 2 observes that the client CPU is the bottleneck and that adding
cores would not help (loads are renderer-serial).  Here we sweep the
three device models the paper uses: a faster phone (OnePlus 3) lowers
every configuration's floor, a slower tablet (Nexus 10) raises it, and
Vroom's *relative* gain persists across all of them — the mechanism is
about feeding the CPU, whatever its speed.
"""

from benchmarks.conftest import run_once
from repro.analysis.stats import median
from repro.baselines.configs import run_config
from repro.calibration import DEFAULT_EVAL_HOUR
from repro.pages.corpus import news_sports_corpus
from repro.pages.dynamics import LoadStamp
from repro.replay.recorder import record_snapshot

DEVICES = ("oneplus3", "nexus6", "nexus10")


def device_sweep(count: int = 10):
    stamp_base = DEFAULT_EVAL_HOUR
    out = {
        device: {"http2": [], "vroom": []} for device in DEVICES
    }
    for page in news_sports_corpus(count):
        for device in DEVICES:
            stamp = LoadStamp(when_hours=stamp_base, device=device)
            snapshot = page.materialize(stamp)
            store = record_snapshot(snapshot)
            for config in ("http2", "vroom"):
                out[device][config].append(
                    run_config(
                        config, page, snapshot, store, device=device
                    ).plt
                )
    return out


def test_device_sweep(benchmark):
    result = run_once(benchmark, device_sweep, count=10)
    print("== Device sweep: median PLT ==")
    for device in DEVICES:
        h2 = median(result[device]["http2"])
        vroom = median(result[device]["vroom"])
        print(
            f"{device:<10} http2={h2:6.2f}s vroom={vroom:6.2f}s "
            f"gain={h2 - vroom:+5.2f}s ({(h2 - vroom) / h2:.0%})"
        )
    # Faster CPU -> faster loads, for both configs.
    assert median(result["oneplus3"]["vroom"]) < median(
        result["nexus10"]["vroom"]
    )
    # Vroom helps on every device.
    for device in DEVICES:
        assert median(result[device]["vroom"]) < median(
            result[device]["http2"]
        ), device

"""End-to-end integration tests across the whole stack."""

import statistics

import pytest

from repro import (
    LoadStamp,
    news_sports_corpus,
    record_snapshot,
    run_config,
)
from repro.calibration import DEFAULT_EVAL_HOUR, PAPER_TARGETS


@pytest.fixture(scope="module")
def loaded():
    """PLTs of four pages under the main configurations."""
    stamp = LoadStamp(when_hours=DEFAULT_EVAL_HOUR)
    results = {}
    for page in news_sports_corpus(count=4):
        snapshot = page.materialize(stamp)
        store = record_snapshot(snapshot)
        for config in (
            "http1",
            "http2",
            "vroom",
            "polaris",
            "cpu-bound",
            "network-bound",
        ):
            metrics = run_config(config, page, snapshot, store)
            results.setdefault(config, []).append(metrics)
    return results


def medians(loaded, config):
    return statistics.median(m.plt for m in loaded[config])


class TestHeadlineOrdering:
    def test_vroom_beats_http2(self, loaded):
        assert medians(loaded, "vroom") < medians(loaded, "http2")

    def test_http2_not_slower_than_http1(self, loaded):
        assert medians(loaded, "http2") <= medians(loaded, "http1") * 1.02

    def test_lower_bound_bounds_everything(self, loaded):
        bound = statistics.median(
            max(cpu.plt, net.plt)
            for cpu, net in zip(loaded["cpu-bound"], loaded["network-bound"])
        )
        for config in ("http1", "http2", "vroom", "polaris"):
            assert bound <= medians(loaded, config) * 1.05, config

    def test_vroom_near_lower_bound(self, loaded):
        """Fig 13a: Vroom closely matches the achievable lower bound."""
        bound = statistics.median(
            max(cpu.plt, net.plt)
            for cpu, net in zip(loaded["cpu-bound"], loaded["network-bound"])
        )
        ratio = medians(loaded, "vroom") / bound
        paper_ratio = (
            PAPER_TARGETS.vroom_median_plt
            / PAPER_TARGETS.lower_bound_median_plt
        )
        # Four pages is a noisy sample; the benchmark suite checks the
        # full corpus, where the ratio lands within a few percent.
        assert ratio < paper_ratio * 1.55

    def test_improvement_factor_in_paper_ballpark(self, loaded):
        """Vroom/HTTP2 ratio should be within a generous band of the
        paper's 5.1/7.3."""
        ratio = medians(loaded, "vroom") / medians(loaded, "http2")
        assert 0.5 < ratio < 0.95


class TestSecondaryMetrics:
    def test_vroom_improves_aft(self, loaded):
        vroom_aft = statistics.median(m.aft for m in loaded["vroom"])
        http2_aft = statistics.median(m.aft for m in loaded["http2"])
        assert vroom_aft < http2_aft

    def test_vroom_speed_index_close_to_http2(self, loaded):
        """Known deviation (see EXPERIMENTS.md): hint fan-out contends
        with the root document's bytes in our link model, so Vroom's
        Speed Index lands slightly above HTTP/2's instead of slightly
        below.  Bound the regression rather than assert the paper's sign.
        """
        vroom_si = statistics.median(m.speed_index for m in loaded["vroom"])
        http2_si = statistics.median(m.speed_index for m in loaded["http2"])
        assert vroom_si < http2_si * 1.30

    def test_vroom_reduces_network_wait_on_critical_path(self, loaded):
        vroom = statistics.median(
            m.network_wait_fraction for m in loaded["vroom"]
        )
        http2 = statistics.median(
            m.network_wait_fraction for m in loaded["http2"]
        )
        assert vroom < http2

    def test_vroom_speeds_discovery(self, loaded):
        vroom = statistics.median(
            m.discovery_complete_at() for m in loaded["vroom"]
        )
        http2 = statistics.median(
            m.discovery_complete_at() for m in loaded["http2"]
        )
        assert vroom < http2


class TestConservation:
    def test_bytes_fetched_at_least_page_bytes(self, loaded):
        stamp = LoadStamp(when_hours=DEFAULT_EVAL_HOUR)
        pages = news_sports_corpus(count=4)
        for page, metrics in zip(pages, loaded["http2"]):
            snapshot = page.materialize(stamp)
            total = snapshot.total_bytes()
            assert metrics.bytes_fetched >= total * 0.95

    def test_no_wasted_bytes_without_hints(self, loaded):
        for metrics in loaded["http2"]:
            assert metrics.wasted_bytes == 0.0

"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.analysis.stats import Cdf, percentile
from repro.net.link import AccessLink, StreamScheduling
from repro.net.simulator import Simulator
from repro.pages.dynamics import LoadStamp, resolve_url
from repro.pages.resources import ResourceSpec, ResourceType

# ---------------------------------------------------------------------------
# Simulator
# ---------------------------------------------------------------------------


@given(st.lists(st.floats(min_value=0.0, max_value=1e4), max_size=40))
def test_simulator_executes_in_nondecreasing_time(delays):
    sim = Simulator()
    times = []
    for delay in delays:
        sim.schedule(delay, lambda: times.append(sim.now))
    sim.run()
    assert times == sorted(times)
    assert len(times) == len(delays)


@given(
    st.lists(
        st.floats(min_value=0.001, max_value=100.0), min_size=1, max_size=20
    )
)
def test_simulator_clock_ends_at_last_event(delays):
    sim = Simulator()
    for delay in delays:
        sim.schedule(delay, lambda: None)
    assert sim.run() == max(delays)


# ---------------------------------------------------------------------------
# Fluid link: byte conservation and work conservation
# ---------------------------------------------------------------------------


@given(
    st.lists(
        st.integers(min_value=1, max_value=2_000_000),
        min_size=1,
        max_size=12,
    ),
    st.sampled_from(list(StreamScheduling)),
)
@settings(max_examples=40, deadline=None)
def test_link_conserves_bytes(sizes, scheduling):
    sim = Simulator()
    link = AccessLink(sim, 8.0e6)
    channel = link.open_channel(scheduling)
    done = []
    for size in sizes:
        channel.start_stream(size, lambda s=size: done.append(s))
    sim.run()
    assert sorted(done) == sorted(sizes)
    assert abs(link.bytes_delivered - sum(sizes)) < 1.0


@given(
    st.lists(
        st.integers(min_value=10_000, max_value=1_000_000),
        min_size=1,
        max_size=8,
    )
)
@settings(max_examples=30, deadline=None)
def test_link_is_work_conserving(sizes):
    """Total completion time never beats nor wildly exceeds capacity."""
    sim = Simulator()
    link = AccessLink(sim, 8.0e6)  # 1 MB/s
    channel = link.open_channel(StreamScheduling.FAIR)
    for size in sizes:
        channel.start_stream(size, lambda: None)
    finish = sim.run()
    ideal = sum(sizes) / 1.0e6
    assert finish >= ideal * 0.999
    assert finish <= ideal * 1.01 + 0.001


@given(
    st.integers(min_value=1, max_value=1_000_000),
    st.lists(
        st.integers(min_value=1, max_value=1_000_000),
        min_size=1,
        max_size=6,
    ),
)
@settings(max_examples=30, deadline=None)
def test_watch_offsets_fire_before_completion(size, offsets):
    sim = Simulator()
    link = AccessLink(sim, 8.0e6)
    channel = link.open_channel()
    events = []
    stream = channel.start_stream(size, lambda: events.append(("done", sim.now)))
    for offset in offsets:
        stream.watch_offset(
            min(offset, size), lambda o=offset: events.append(("watch", sim.now))
        )
    sim.run()
    done_time = next(t for kind, t in events if kind == "done")
    assert all(t <= done_time + 1e-9 for _, t in events)
    assert sum(1 for kind, _ in events if kind == "watch") == len(offsets)


# ---------------------------------------------------------------------------
# URL dynamics: determinism and flux scoping
# ---------------------------------------------------------------------------

_spec_strategy = st.builds(
    ResourceSpec,
    name=st.text(
        alphabet=st.characters(whitelist_categories=("Ll",)),
        min_size=1,
        max_size=8,
    ),
    rtype=st.sampled_from(list(ResourceType)),
    domain=st.just("prop.com"),
    size=st.integers(min_value=1, max_value=10_000),
    lifetime_hours=st.one_of(
        st.none(), st.floats(min_value=0.5, max_value=100.0)
    ),
    unpredictable=st.booleans(),
    device_dependent=st.booleans(),
    personalized=st.booleans(),
)

_stamp_strategy = st.builds(
    LoadStamp,
    when_hours=st.floats(min_value=0.0, max_value=10_000.0),
    device=st.sampled_from(["nexus6", "oneplus3", "nexus10"]),
    user=st.sampled_from(["u0", "u1"]),
    nonce=st.integers(min_value=0, max_value=1_000_000),
)


@given(_spec_strategy, _stamp_strategy)
def test_resolve_url_deterministic(spec, stamp):
    assert resolve_url(spec, stamp) == resolve_url(spec, stamp)


@given(_spec_strategy, _stamp_strategy)
def test_resolve_url_well_formed(spec, stamp):
    url = resolve_url(spec, stamp)
    assert url.startswith("prop.com/")
    assert "." in url.rsplit("/", 1)[1]


@given(_spec_strategy, _stamp_strategy)
def test_stable_specs_ignore_nonce_and_user(spec, stamp):
    if spec.unpredictable or spec.personalized:
        return
    other = LoadStamp(
        when_hours=stamp.when_hours,
        device=stamp.device,
        user=stamp.user + "x",
        nonce=stamp.nonce + 17,
    )
    if not spec.personalized:
        assert resolve_url(spec, stamp) == resolve_url(spec, other)


@given(_spec_strategy, _stamp_strategy)
def test_same_epoch_same_url(spec, stamp):
    if spec.lifetime_hours is None or spec.unpredictable:
        return
    nudge = LoadStamp(
        when_hours=stamp.when_hours
        + min(spec.lifetime_hours / 10.0, 0.01),
        device=stamp.device,
        user=stamp.user,
        nonce=stamp.nonce,
    )
    if int(stamp.when_hours // spec.lifetime_hours) == int(
        nudge.when_hours // spec.lifetime_hours
    ):
        assert resolve_url(spec, stamp) == resolve_url(spec, nudge)


# ---------------------------------------------------------------------------
# Statistics
# ---------------------------------------------------------------------------


@given(
    st.lists(
        st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200
    ),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_percentile_within_range(values, fraction):
    result = percentile(values, fraction)
    assert min(values) <= result <= max(values)


@given(
    st.lists(
        st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200
    )
)
def test_percentile_monotone_in_fraction(values):
    results = [percentile(values, f / 10.0) for f in range(11)]
    for earlier, later in zip(results, results[1:]):
        assert later >= earlier - 1e-9 * max(1.0, abs(earlier))


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=100
    )
)
def test_cdf_at_is_monotone(values):
    cdf = Cdf(values)
    probes = sorted(set(values))
    fractions = [cdf.at(x) for x in probes]
    assert fractions == sorted(fractions)
    assert cdf.at(max(values)) == 1.0


# ---------------------------------------------------------------------------
# Generator: every generated page obeys structural invariants
# ---------------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_generated_pages_always_validate(seed):
    from repro.calibration import NEWS_SPORTS_PROFILE
    from repro.pages.generator import generate_page

    page = generate_page(NEWS_SPORTS_PROFILE, "prop", seed=seed)
    page.validate()  # raises on violation
    snapshot = page.materialize(LoadStamp(when_hours=123.0))
    urls = snapshot.urls()
    assert len(urls) == len(set(urls))
    assert snapshot.root.process_order == 0

"""Tests for the declarative scenario layer."""

import json

import pytest

from repro.calibration import DEFAULT_EVAL_HOUR
from repro.net.faults import FaultKind, FaultRule
from repro.scenario import ScenarioSpec, fault_rule_from_dict, fault_rule_to_dict


def spec_with_extras() -> ScenarioSpec:
    return ScenarioSpec(
        pages=4,
        horizon_hours=6.0,
        shard_cycle_every_hours=2.0,
        shard_cycle_down_hours=0.5,
        shard_cycle_start_hours=1.0,
        extra_fault_rules=(
            FaultRule(
                kind=FaultKind.STALL,
                rate=0.5,
                url_substring="cdn.",
                not_before=1.0,
            ),
            FaultRule(kind=FaultKind.SERVER_ERROR, rate=1.0, domain="ads.example"),
        ),
    )


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"corpus": "nope"}, "unknown corpus"),
            ({"pages": 0}, "at least one page"),
            ({"horizon_hours": 0.0}, "horizon must be positive"),
            ({"rate_per_hour": -1.0}, "arrival rate"),
            ({"phone_fraction": 1.5}, "phone fraction"),
            ({"user_pool": 0}, "user pool"),
            ({"network_profile": "carrier-pigeon"}, "network profile"),
            ({"shards": 0}, "at least one shard"),
            ({"shards": 2, "replication": 3}, "replication"),
            ({"ttl_hours": 0.0}, "TTL and freshness"),
            ({"batch_period_hours": 0.0}, "batch period"),
            ({"crawl_budget_per_hour": 0.0}, "crawl budget"),
            ({"digest_filter_bits": 40}, "digest_filter_bits"),
            ({"digest_filter_bits": -1}, "digest_filter_bits"),
            ({"shard_cycle_every_hours": -1.0}, "cycle period"),
            (
                {
                    "shard_cycle_every_hours": 1.0,
                    "shard_cycle_down_hours": 1.5,
                },
                "inside the cycle period",
            ),
            (
                {
                    "shard_cycle_every_hours": 1.0,
                    "shard_cycle_down_hours": 0.5,
                    "shard_cycle_start_hours": -0.5,
                },
                "predate the run",
            ),
            ({"rollup_hours": 0.0}, "rollup window"),
        ],
    )
    def test_bad_values_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            ScenarioSpec(**kwargs)

    def test_defaults_valid(self):
        spec = ScenarioSpec()
        assert spec.corpus == "news"
        assert spec.horizon_hours == 48.0
        assert spec.start_hour == DEFAULT_EVAL_HOUR


class TestRoundTrip:
    def test_json_round_trip_identity(self):
        spec = spec_with_extras()
        wire = json.loads(json.dumps(spec.as_dict()))
        back = ScenarioSpec.from_dict(wire)
        assert back == spec
        assert back.fingerprint() == spec.fingerprint()

    def test_open_ended_fault_window_survives_json(self):
        rule = FaultRule(kind=FaultKind.SERVER_ERROR, rate=1.0, domain="x.example")
        assert rule.not_after == float("inf")
        wire = fault_rule_to_dict(rule)
        assert wire["not_after"] is None
        json.dumps(wire)  # no Infinity token in the payload
        assert fault_rule_from_dict(wire) == rule


class TestFingerprint:
    def test_stable_across_constructions(self):
        assert ScenarioSpec().fingerprint() == ScenarioSpec().fingerprint()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"pages": 13},
            {"workload_seed": 1},
            {"replication": 3},
            {"digest_filter_bits": 8},
            {"shard_cycle_every_hours": 12.0},
            {
                "extra_fault_rules": (
                    FaultRule(kind=FaultKind.SERVER_ERROR, rate=1.0, domain="a"),
                )
            },
        ],
    )
    def test_any_field_change_changes_fingerprint(self, kwargs):
        assert (
            ScenarioSpec(**kwargs).fingerprint()
            != ScenarioSpec().fingerprint()
        )


class TestComposition:
    def test_cycle_rules_rotate_victims(self):
        spec = ScenarioSpec(
            shards=3,
            horizon_hours=6.0,
            shard_cycle_every_hours=1.0,
            shard_cycle_down_hours=0.25,
            shard_cycle_start_hours=0.5,
        )
        rules = spec.cycle_rules()
        # k = 0..5: 0.5 + k * 1.0 < 6.0
        assert len(rules) == 6
        assert [r.url_substring for r in rules[:4]] == [
            "shard0.",
            "shard1.",
            "shard2.",
            "shard0.",
        ]
        first = rules[0]
        assert first.not_before == spec.start_hour + 0.5
        assert first.not_after == spec.start_hour + 0.75

    def test_no_cycle_means_no_fault_plan(self):
        spec = ScenarioSpec()
        assert spec.cycle_rules() == ()
        assert spec.fault_plan() is None

    def test_fault_plan_appends_extra_rules(self):
        spec = spec_with_extras()
        plan = spec.fault_plan()
        assert plan is not None
        assert len(plan.rules) == len(spec.cycle_rules()) + 2
        assert plan.rules[-1].domain == "ads.example"

    def test_service_config_compiles_knobs(self):
        spec = spec_with_extras()
        config = spec.service_config()
        assert config.pages == spec.pages
        assert config.lookups == spec.lookups_estimate()
        assert len(config.shard_fault_rules) == len(spec.cycle_rules()) + 2
        assert config.fingerprint is False
        assert config.bridge_sample_every == 0

    def test_build_pages_honours_count_and_seed(self):
        spec = ScenarioSpec(pages=3)
        pages = spec.build_pages()
        assert len(pages) == 3
        reseeded = ScenarioSpec(pages=3, corpus_seed=99).build_pages()
        # The seed drives the generated page structure, not the names.
        assert [sorted(p.specs) for p in pages] != [
            sorted(p.specs) for p in reseeded
        ]

    def test_network_resolves_profile(self):
        assert ScenarioSpec(network_profile="5g").network().name == "5g"

"""The hint service itself: store + scheduler + workload on the DES.

:class:`HintService` simulates a multi-tenant Vroom hint-serving
backend for a fleet of pages.  One :class:`~repro.net.simulator.
Simulator` instance provides the virtual clock — its time unit here is
**hours** (the offline-resolution timescale), not the seconds a page
load uses; the two simulations never share a clock instance.

The operational loop per lookup:

1. Route the page URL through the consistent-hash ring to a shard.
2. ``HIT`` — serve the stored stable set.  ``STALE_HIT`` — serve it
   *and* enqueue a refresh (stale hints still beat no hints; the
   bridge quantifies the gap).  ``MISS``/``EXPIRED`` — serve **no
   hints** (the client falls back to vanilla HTTP/2 discovery, Vroom's
   graceful cold-start story) and enqueue a resolution job.
3. Record a deterministic lookup latency into the shard's histogram.

Every ``batch_period_hours`` the scheduler tick takes a batch within
the crawl budget and runs real offline resolutions
(:class:`~repro.core.offline.OfflineResolver`) at the tick's simulated
hour, inserting fresh entries into the store.  Entries therefore age
exactly as ``pages.dynamics`` rotates URLs underneath them, which is
what makes staleness *mean* something downstream.

A run is a pure function of its :class:`ServiceConfig`: repeated runs
produce bit-identical :class:`ServiceReport` dictionaries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.calibration import DEFAULT_EVAL_HOUR, OFFLINE_WINDOW_LOADS
from repro.core.offline import OfflineResolver, stable_set_to_dict
from repro.net.simulator import Simulator
from repro.pages.page import PageBlueprint
from repro.service.bridge import BridgeSample
from repro.service.scheduler import BatchScheduler, ResolutionJob
from repro.service.store import (
    DependencyStore,
    LatencyHistogram,
    LookupStatus,
    StoreConfig,
    StoreEntry,
    payload_size_bytes,
    stable_hash,
)
from repro.service.workload import Workload, WorkloadConfig


@dataclass(frozen=True)
class ServiceConfig:
    """Everything a service run depends on (the seed included)."""

    # -- fleet ----------------------------------------------------------
    pages: int = 50
    # -- traffic --------------------------------------------------------
    lookups: int = 100_000
    rate_per_hour: float = 20_000.0
    zipf_exponent: float = 1.1
    phone_fraction: float = 0.85
    user_pool: int = 32
    # -- store ----------------------------------------------------------
    shards: int = 8
    vnodes: int = 64
    shard_memory_bytes: int = 256 * 1024
    ttl_hours: float = 12.0
    freshness_hours: float = 2.0
    # -- offline-resolution scheduler -----------------------------------
    batch_period_hours: float = 0.25
    crawl_budget_per_hour: float = 60.0
    #: Resolve every (page, device-class) key once at ``start_hour``
    #: before traffic begins (steady-state fleet rather than cold
    #: start).  The staleness sweep needs this: without it, starvation
    #: budgets turn would-be stale hits into misses and the
    #: budget→staleness relationship is confounded by coverage.
    prewarm: bool = False
    # -- time & determinism ---------------------------------------------
    start_hour: float = DEFAULT_EVAL_HOUR
    seed: int = 0
    # -- accuracy bridge -------------------------------------------------
    #: Sample every Nth lookup for end-to-end evaluation (0 disables).
    bridge_sample_every: int = 0

    def workload(self) -> WorkloadConfig:
        return WorkloadConfig(
            pages=self.pages,
            lookups=self.lookups,
            rate_per_hour=self.rate_per_hour,
            zipf_exponent=self.zipf_exponent,
            phone_fraction=self.phone_fraction,
            user_pool=self.user_pool,
            seed=self.seed,
        )

    def store(self) -> StoreConfig:
        return StoreConfig(
            shard_count=self.shards,
            vnodes=self.vnodes,
            shard_memory_bytes=self.shard_memory_bytes,
            ttl_hours=self.ttl_hours,
            freshness_hours=self.freshness_hours,
        )

    def as_dict(self) -> dict:
        return {
            "pages": self.pages,
            "lookups": self.lookups,
            "rate_per_hour": self.rate_per_hour,
            "zipf_exponent": self.zipf_exponent,
            "phone_fraction": self.phone_fraction,
            "user_pool": self.user_pool,
            "shards": self.shards,
            "vnodes": self.vnodes,
            "shard_memory_bytes": self.shard_memory_bytes,
            "ttl_hours": self.ttl_hours,
            "freshness_hours": self.freshness_hours,
            "batch_period_hours": self.batch_period_hours,
            "crawl_budget_per_hour": self.crawl_budget_per_hour,
            "prewarm": self.prewarm,
            "start_hour": self.start_hour,
            "seed": self.seed,
            "bridge_sample_every": self.bridge_sample_every,
        }


def tenant_of(page_name: str) -> str:
    """Tenant (site operator) a page belongs to: its name sans index."""
    return page_name.rstrip("0123456789") or page_name


@dataclass
class ServiceReport:
    """Counters and distributions from one service run."""

    config: dict
    duration_hours: float
    totals: dict
    latency: dict
    shards: List[dict]
    tenants: Dict[str, dict]
    scheduler: dict
    #: Hit rate per tenth of the lookup stream — the warm-up curve.
    warmup_hit_rate: List[float]
    samples: List[BridgeSample] = field(default_factory=list)

    @property
    def hit_rate(self) -> float:
        return self.totals["hit_rate"]

    @property
    def stale_hit_rate(self) -> float:
        return self.totals["stale_hit_rate"]

    def as_dict(self) -> dict:
        """JSON-ready form; deterministic modulo nothing (no wall clock)."""
        return {
            "config": self.config,
            "duration_hours": round(self.duration_hours, 6),
            "totals": self.totals,
            "latency": self.latency,
            "shards": self.shards,
            "tenants": {
                tenant: self.tenants[tenant]
                for tenant in sorted(self.tenants)
            },
            "scheduler": self.scheduler,
            "warmup_hit_rate": self.warmup_hit_rate,
        }


class HintService:
    """One simulated hint-serving backend over a fixed page fleet."""

    def __init__(self, pages: List[PageBlueprint], config: ServiceConfig):
        if not pages:
            raise ValueError("the service needs a non-empty page fleet")
        if len(pages) != config.pages:
            raise ValueError(
                f"config says {config.pages} pages, fleet has {len(pages)}"
            )
        self.pages = pages
        self.config = config
        self.store = DependencyStore(config.store())
        self.scheduler = BatchScheduler(
            budget_loads_per_hour=config.crawl_budget_per_hour,
            batch_period_hours=config.batch_period_hours,
            loads_per_job=OFFLINE_WINDOW_LOADS,
        )
        self._page_by_name = {page.name: page for page in pages}
        self._resolvers: Dict[str, OfflineResolver] = {}
        self._samples: List[BridgeSample] = []
        self._tenants: Dict[str, dict] = {}
        self._ran = False
        #: Per-decile (hits+stale_hits, lookups) for the warm-up curve.
        self._decile_served = [0] * 10
        self._decile_lookups = [0] * 10

    # -- helpers ----------------------------------------------------------

    @staticmethod
    def page_url(page: PageBlueprint) -> str:
        """The routing key: the page's canonical URL."""
        return f"{page.name}.com/"

    def _resolver(self, page_name: str) -> OfflineResolver:
        resolver = self._resolvers.get(page_name)
        if resolver is None:
            resolver = OfflineResolver(self._page_by_name[page_name])
            self._resolvers[page_name] = resolver
        return resolver

    def _lookup_latency_ms(self, shard, seq: int) -> float:
        """Deterministic per-lookup service latency (milliseconds).

        Base dispatch cost, a logarithmic occupancy term (index walk),
        and a heavy-tailed deterministic jitter drawn from a sha1 of the
        sequence number — giving a realistic p50≪p99 spread that is
        bit-identical across runs.
        """
        base = 0.15
        occupancy = 0.02 * math.log2(1.0 + len(shard))
        draw = (stable_hash(f"lat{seq}") % 10_000) / 10_000.0
        jitter = 0.05 * draw + 4.0 * draw ** 12
        return base + occupancy + jitter

    # -- event handlers ---------------------------------------------------

    def _handle_lookup(self, lookup, now_hours: float) -> None:
        page = self.pages[lookup.page_index]
        key = (page.name, lookup.device_class)
        entry, status, shard = self.store.lookup(
            self.page_url(page), page.name, lookup.device_class, now_hours
        )
        shard.latency.record(self._lookup_latency_ms(shard, lookup.seq))

        tenant = self._tenants.setdefault(
            tenant_of(page.name),
            {"lookups": 0, "hits": 0, "stale_hits": 0, "misses": 0},
        )
        tenant["lookups"] += 1
        decile = min(9, lookup.seq * 10 // self.config.lookups)
        self._decile_lookups[decile] += 1

        if status is LookupStatus.HIT:
            tenant["hits"] += 1
            self._decile_served[decile] += 1
        elif status is LookupStatus.STALE_HIT:
            tenant["stale_hits"] += 1
            self._decile_served[decile] += 1
            self.scheduler.enqueue(
                ResolutionJob(
                    page=page.name,
                    device_class=lookup.device_class,
                    page_index=lookup.page_index,
                    enqueued_at_hours=now_hours,
                    reason="stale",
                )
            )
        else:  # MISS or EXPIRED: cold start — serve no hints, resolve.
            tenant["misses"] += 1
            self.scheduler.enqueue(
                ResolutionJob(
                    page=page.name,
                    device_class=lookup.device_class,
                    page_index=lookup.page_index,
                    enqueued_at_hours=now_hours,
                    reason=(
                        "expired"
                        if status is LookupStatus.EXPIRED
                        else "miss"
                    ),
                )
            )

        every = self.config.bridge_sample_every
        if every > 0 and lookup.seq % every == 0:
            self._samples.append(
                BridgeSample(
                    seq=lookup.seq,
                    when_hours=now_hours,
                    page_index=lookup.page_index,
                    page=page.name,
                    device_class=lookup.device_class,
                    user=lookup.user,
                    status=status.value,
                    computed_at_hours=(
                        entry.computed_at_hours if entry is not None else None
                    ),
                    payload=(entry.payload if entry is not None else None),
                )
            )

    def _staleness_of(
        self, key: Tuple[str, str], now_hours: float
    ) -> Optional[float]:
        page_name, device_class = key
        page = self._page_by_name[page_name]
        shard = self.store.shard_for_page(self.page_url(page))
        entry = shard.get(key)
        if entry is None:
            return None
        return entry.age_hours(now_hours)

    def _install_entry(
        self, page_name: str, device_class: str, now_hours: float
    ) -> None:
        """Resolve one key at ``now_hours`` and insert it into the store."""
        resolver = self._resolver(page_name)
        stable = resolver.stable_set(round(now_hours, 6), device_class)
        payload = stable_set_to_dict(stable)
        entry = StoreEntry(
            page=page_name,
            device_class=device_class,
            payload=payload,
            computed_at_hours=round(now_hours, 6),
            size_bytes=payload_size_bytes(payload),
        )
        self.store.insert(self.page_url(self._page_by_name[page_name]), entry)

    def _prewarm(self) -> None:
        """Populate every (page, device-class) key at the start hour."""
        for page in self.pages:
            for device_class in ("phone", "tablet"):
                self._install_entry(
                    page.name, device_class, self.config.start_hour
                )

    def _run_batch(self, now_hours: float) -> None:
        batch = self.scheduler.take_batch(
            now_hours, lambda key: self._staleness_of(key, now_hours)
        )
        for job in batch:
            self._install_entry(job.page, job.device_class, now_hours)

    # -- the run ----------------------------------------------------------

    def run(self) -> ServiceReport:
        """Drive the whole workload through the DES; return the report."""
        if self._ran:
            raise RuntimeError(
                "a HintService holds per-run counters; build a fresh one "
                "per run"
            )
        self._ran = True
        if self.config.prewarm:
            self._prewarm()
        sim = Simulator()
        workload = Workload(self.config.workload())
        arrivals = iter(workload)

        def pump() -> None:
            """Self-rescheduling arrival chain: one live event at a time."""
            lookup = next(arrivals, None)
            if lookup is None:
                return
            delay = max(0.0, lookup.when_hours - sim.now)

            def fire(lookup=lookup) -> None:
                self._handle_lookup(
                    lookup, self.config.start_hour + sim.now
                )
                pump()

            sim.schedule_drop(delay, fire)

        duration = workload.duration_hours()
        ticks = int(math.ceil(duration / self.config.batch_period_hours)) + 1
        for tick in range(1, ticks + 1):
            when = tick * self.config.batch_period_hours

            def fire_batch(when=when) -> None:
                self._run_batch(self.config.start_hour + when)

            sim.schedule_at(when, fire_batch)

        pump()
        sim.run(max_events=self.config.lookups * 2 + ticks + 16)
        return self._report(duration)

    def _report(self, duration: float) -> ServiceReport:
        totals = self.store.totals()
        lookups = totals["lookups"]
        served = totals["hits"] + totals["stale_hits"]
        totals["hit_rate"] = round(served / lookups, 6) if lookups else 0.0
        totals["fresh_hit_rate"] = (
            round(totals["hits"] / lookups, 6) if lookups else 0.0
        )
        totals["stale_hit_rate"] = (
            round(totals["stale_hits"] / lookups, 6) if lookups else 0.0
        )
        totals["miss_rate"] = (
            round((totals["misses"] + totals["expired"]) / lookups, 6)
            if lookups
            else 0.0
        )

        shard_rows = []
        for shard in self.store.shards:
            row = {"shard": shard.index, "entries": len(shard)}
            row.update(shard.counters.as_dict())
            row.update(shard.latency.summary())
            shard_rows.append(row)
        merged = LatencyHistogram.merged(
            [shard.latency for shard in self.store.shards]
        )

        warmup = []
        for served_d, lookups_d in zip(
            self._decile_served, self._decile_lookups
        ):
            warmup.append(
                round(served_d / lookups_d, 6) if lookups_d else 0.0
            )

        return ServiceReport(
            config=self.config.as_dict(),
            duration_hours=duration,
            totals=totals,
            latency=merged.summary(),
            shards=shard_rows,
            tenants=self._tenants,
            scheduler=self.scheduler.counters.as_dict(),
            warmup_hit_rate=warmup,
            samples=list(self._samples),
        )

"""Unit tests for the HTTP/1.1 and HTTP/2 transport layer."""

import pytest

from repro.calibration import HTTP1_MAX_CONNS_PER_DOMAIN
from repro.net.http import HttpClient, HttpVersion, NetworkConfig
from repro.net.link import StreamScheduling
from repro.net.origin import OriginServer, Response
from repro.net.simulator import Simulator


def make_client(
    contents=None,
    version=HttpVersion.HTTP2,
    domains=("a.com",),
    pushes=None,
    hints=None,
    **config_kw,
):
    sim = Simulator()
    contents = contents or {"a.com/x.js": 20_000}
    pushes = pushes or {}
    hints = hints or {}

    def make_responder(domain):
        def respond(url, is_push):
            if url not in contents:
                return None
            return Response(
                url=url,
                size=contents[url],
                think_time=0.01,
                pushes=pushes.get(url, []),
                hints=hints.get(url, []),
            )

        return respond

    servers = {
        domain: OriginServer(domain, make_responder(domain), server_rtt=0.03)
        for domain in domains
    }
    client = HttpClient(
        sim, servers, NetworkConfig(version=version, **config_kw)
    )
    return sim, client, servers


class TestBasics:
    def test_fetch_completes(self):
        sim, client, _ = make_client()
        done = []
        client.fetch("a.com/x.js", on_complete=lambda f: done.append(f))
        sim.run()
        assert len(done) == 1
        assert done[0].completed_at is not None

    def test_headers_before_completion(self):
        sim, client, _ = make_client()
        times = {}
        client.fetch(
            "a.com/x.js",
            on_headers=lambda f: times.setdefault("headers", sim.now),
            on_complete=lambda f: times.setdefault("done", sim.now),
        )
        sim.run()
        assert times["headers"] < times["done"]

    def test_unknown_url_raises(self):
        sim, client, _ = make_client()
        client.fetch("a.com/missing.js")
        with pytest.raises(KeyError):
            sim.run()

    def test_unknown_domain_raises(self):
        sim, client, _ = make_client()
        client.fetch("zzz.com/x.js")
        with pytest.raises(KeyError):
            sim.run()

    def test_duplicate_fetch_coalesced(self):
        sim, client, servers = make_client()
        done = []
        first = client.fetch("a.com/x.js", on_complete=lambda f: done.append(1))
        second = client.fetch("a.com/x.js", on_complete=lambda f: done.append(2))
        assert first is second
        sim.run()
        assert sorted(done) == [1, 2]
        assert servers["a.com"].requests_served == 1

    def test_attach_after_completion_fires_soon(self):
        sim, client, _ = make_client()
        client.fetch("a.com/x.js")
        sim.run()
        late = []
        client.fetch("a.com/x.js", on_complete=lambda f: late.append(sim.now))
        sim.run()
        assert len(late) == 1

    def test_dns_paid_once_per_domain(self):
        sim, client, _ = make_client(
            contents={"a.com/x.js": 1000, "a.com/y.js": 1000}
        )
        start = {}
        client.fetch("a.com/x.js", on_headers=lambda f: start.setdefault("x", sim.now))
        client.fetch("a.com/y.js", on_headers=lambda f: start.setdefault("y", sim.now))
        sim.run()
        # Both waited on one DNS resolution; neither paid it twice.
        assert abs(start["x"] - start["y"]) < 0.05


class TestHttp1:
    def test_connection_limit_queues_requests(self):
        n = HTTP1_MAX_CONNS_PER_DOMAIN + 3
        contents = {f"a.com/r{i}.jpg": 200_000 for i in range(n)}
        sim, client, _ = make_client(contents, version=HttpVersion.HTTP1)
        done = []
        for url in contents:
            client.fetch(url, on_complete=lambda f: done.append(f.url))
        sim.run()
        assert len(done) == n
        state = client._domains["a.com"]
        assert len(state.connections) == HTTP1_MAX_CONNS_PER_DOMAIN

    def test_priority_orders_queued_requests(self):
        n = HTTP1_MAX_CONNS_PER_DOMAIN
        contents = {f"a.com/r{i}.jpg": 400_000 for i in range(n)}
        contents["a.com/low.jpg"] = 1000
        contents["a.com/high.js"] = 1000
        sim, client, _ = make_client(contents, version=HttpVersion.HTTP1)
        done = []
        for i in range(n):
            client.fetch(f"a.com/r{i}.jpg", priority=4.0)
        client.fetch("a.com/low.jpg", priority=5.0,
                     on_complete=lambda f: done.append("low"))
        client.fetch("a.com/high.js", priority=1.0,
                     on_complete=lambda f: done.append("high"))
        sim.run()
        assert done.index("high") < done.index("low")

    def test_h1_slower_than_h2_for_many_small_objects(self):
        contents = {f"a.com/r{i}.js": 15_000 for i in range(30)}
        results = {}
        for version in (HttpVersion.HTTP1, HttpVersion.HTTP2):
            sim, client, _ = make_client(contents, version=version)
            for url in contents:
                client.fetch(url)
            results[version] = sim.run()
        assert results[HttpVersion.HTTP1] > results[HttpVersion.HTTP2]


class TestHttp2:
    def test_single_connection_per_domain(self):
        contents = {f"a.com/r{i}.js": 5000 for i in range(10)}
        sim, client, _ = make_client(contents)
        for url in contents:
            client.fetch(url)
        sim.run()
        assert len(client._domains["a.com"].connections) == 1

    def test_push_delivered_without_request(self):
        contents = {"a.com/page.html": 30_000, "a.com/pushed.js": 10_000}
        sim, client, servers = make_client(
            contents, pushes={"a.com/page.html": ["a.com/pushed.js"]}
        )
        pushed = []
        client.on_push = lambda p: pushed.append(p.url)
        client.fetch("a.com/page.html")
        sim.run()
        assert pushed == ["a.com/pushed.js"]
        assert servers["a.com"].pushes_sent == 1
        assert servers["a.com"].requests_served == 1

    def test_push_skipped_when_cached(self):
        contents = {"a.com/page.html": 30_000, "a.com/pushed.js": 10_000}
        sim, client, servers = make_client(
            contents, pushes={"a.com/page.html": ["a.com/pushed.js"]}
        )
        client.is_cached = lambda url: url == "a.com/pushed.js"
        client.fetch("a.com/page.html")
        sim.run()
        assert servers["a.com"].pushes_sent == 0

    def test_push_disabled_by_config(self):
        contents = {"a.com/page.html": 30_000, "a.com/pushed.js": 10_000}
        sim, client, servers = make_client(
            contents,
            pushes={"a.com/page.html": ["a.com/pushed.js"]},
            push_enabled=False,
        )
        client.fetch("a.com/page.html")
        sim.run()
        assert servers["a.com"].pushes_sent == 0

    def test_preconnect_warms_connection(self):
        sim, client, _ = make_client()
        client.preconnect("a.com")
        started = {}

        def fetch_later():
            client.fetch(
                "a.com/x.js",
                on_headers=lambda f: started.setdefault("t", sim.now),
            )

        sim.schedule(1.0, fetch_later)
        sim.run()
        warm_time = started["t"] - 1.0

        sim2, client2, _ = make_client()
        started2 = {}
        client2.fetch(
            "a.com/x.js",
            on_headers=lambda f: started2.setdefault("t", sim2.now),
        )
        sim2.run()
        assert warm_time < started2["t"]

    def test_preconnect_unknown_domain_is_noop(self):
        sim, client, _ = make_client()
        client.preconnect("unknown.com")
        sim.run()  # must not raise

    def test_fifo_response_ordering(self):
        contents = {"a.com/a.js": 200_000, "a.com/b.js": 200_000}
        sim, client, _ = make_client(
            contents, h2_scheduling=StreamScheduling.FIFO
        )
        done = []
        client.fetch("a.com/a.js", on_complete=lambda f: done.append(("a", sim.now)))
        client.fetch("a.com/b.js", on_complete=lambda f: done.append(("b", sim.now)))
        sim.run()
        assert done[0][0] == "a"
        assert done[0][1] < done[1][1] - 0.05


class TestZeroLatency:
    def test_zero_latency_is_fast(self):
        sim, client, _ = make_client(
            zero_latency=True, downlink_bps=1.0e9
        )
        done = []
        client.fetch("a.com/x.js", on_complete=lambda f: done.append(sim.now))
        sim.run()
        assert done[0] < 0.05


class TestBodyWatches:
    def test_watch_body_offset_mid_transfer(self):
        sim, client, _ = make_client({"a.com/big.html": 1_000_000})
        hits = []
        fetch = client.fetch("a.com/big.html")
        fetch.watch_body_offset(500_000, lambda: hits.append(sim.now))
        sim.run()
        assert len(hits) == 1
        assert hits[0] < fetch.completed_at

"""Unit tests for the resource model."""

import pytest

from repro.pages.resources import (
    Discovery,
    Priority,
    PROCESSABLE_TYPES,
    Resource,
    ResourceSpec,
    ResourceType,
    priority_of,
    split_url,
)


def make_spec(**overrides):
    base = dict(
        name="r0",
        rtype=ResourceType.IMAGE,
        domain="a.com",
        size=1000,
    )
    base.update(overrides)
    return ResourceSpec(**base)


class TestResourceSpec:
    def test_positive_size_required(self):
        with pytest.raises(ValueError):
            make_spec(size=0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            make_spec(size=-5)

    def test_position_bounds(self):
        with pytest.raises(ValueError):
            make_spec(position=1.5)
        with pytest.raises(ValueError):
            make_spec(position=-0.1)

    def test_position_boundaries_allowed(self):
        assert make_spec(position=0.0).position == 0.0
        assert make_spec(position=1.0).position == 1.0

    def test_processable_types(self):
        for rtype in (ResourceType.HTML, ResourceType.CSS, ResourceType.JS):
            assert make_spec(rtype=rtype).processable
        for rtype in (
            ResourceType.IMAGE,
            ResourceType.FONT,
            ResourceType.VIDEO,
            ResourceType.JSON,
            ResourceType.OTHER,
        ):
            assert not make_spec(rtype=rtype).processable

    def test_is_document(self):
        assert make_spec(rtype=ResourceType.HTML).is_document
        assert not make_spec(rtype=ResourceType.JS).is_document


class TestPriorityOf:
    def test_sync_processable_is_preload(self):
        assert priority_of(ResourceType.JS) is Priority.PRELOAD
        assert priority_of(ResourceType.CSS) is Priority.PRELOAD

    def test_async_processable_is_semi_important(self):
        assert (
            priority_of(ResourceType.JS, exec_async=True)
            is Priority.SEMI_IMPORTANT
        )

    def test_media_is_unimportant(self):
        assert priority_of(ResourceType.IMAGE) is Priority.UNIMPORTANT
        assert priority_of(ResourceType.FONT) is Priority.UNIMPORTANT
        assert priority_of(ResourceType.VIDEO) is Priority.UNIMPORTANT

    def test_iframe_descendants_are_unimportant(self):
        """Footnote 4: anything under third-party HTML is low priority."""
        assert (
            priority_of(ResourceType.JS, in_iframe=True)
            is Priority.UNIMPORTANT
        )
        assert (
            priority_of(ResourceType.CSS, in_iframe=True)
            is Priority.UNIMPORTANT
        )

    def test_iframe_documents_are_unimportant(self):
        assert (
            priority_of(ResourceType.HTML, is_iframe_doc=True)
            is Priority.UNIMPORTANT
        )

    def test_priority_ordering(self):
        assert Priority.PRELOAD < Priority.SEMI_IMPORTANT < Priority.UNIMPORTANT


class TestResource:
    def _tree(self):
        root_spec = make_spec(name="root", rtype=ResourceType.HTML)
        child_spec = make_spec(
            name="child", rtype=ResourceType.JS, parent="root"
        )
        grand_spec = make_spec(
            name="grand",
            rtype=ResourceType.IMAGE,
            parent="child",
            discovery=Discovery.SCRIPT_COMPUTED,
        )
        root = Resource(spec=root_spec, url="a.com/root.html", size=100)
        child = Resource(spec=child_spec, url="a.com/child.js", size=50)
        grand = Resource(spec=grand_spec, url="a.com/grand.jpg", size=10)
        child.parent = root
        grand.parent = child
        root.children = [child]
        child.children = [grand]
        return root, child, grand

    def test_descendants_preorder(self):
        root, child, grand = self._tree()
        assert root.descendants() == [child, grand]

    def test_subtree_includes_self(self):
        root, child, grand = self._tree()
        assert root.subtree() == [root, child, grand]
        assert grand.subtree() == [grand]

    def test_delegated_properties(self):
        root, child, _ = self._tree()
        assert child.name == "child"
        assert child.rtype is ResourceType.JS
        assert child.domain == "a.com"
        assert child.processable
        assert not child.is_document
        assert root.is_document


def test_split_url():
    assert split_url("a.com/x/y.js") == ("a.com", "x/y.js")
    assert split_url("a.com") == ("a.com", "")


def test_processable_types_frozen():
    assert ResourceType.HTML in PROCESSABLE_TYPES
    with pytest.raises(AttributeError):
        PROCESSABLE_TYPES.add(ResourceType.IMAGE)

"""Fig 9: stable-set overlap across devices (device equivalence classes).

Paper: a OnePlus 3 (phone) matches a Nexus 6's stable set far more closely
than a Nexus 10 (tablet) does — so servers can load pages once per device
*class* instead of once per model.
"""

from benchmarks.conftest import run_once
from repro.analysis.stats import median
from repro.experiments import figures
from repro.experiments.report import print_figure


def test_fig09_device_iou(benchmark, corpus_size):
    series = run_once(
        benchmark, figures.fig9_device_iou, count=max(30, corpus_size)
    )
    print_figure(
        "Fig 9: stable-set IoU vs Nexus 6",
        series,
        paper_values={"oneplus3": 0.90, "nexus10": 0.65},
    )
    assert median(series["oneplus3"]) > median(series["nexus10"])

"""Unit tests for online HTML analysis."""

from repro.calibration import VROOM_ONLINE_PARSE_OVERHEAD
from repro.core.online import analyze_html
from repro.pages.resources import Discovery


class TestAnalyzeHtml:
    def test_finds_exactly_static_children(self, snapshot):
        root = snapshot.root
        analysis = analyze_html(root.url, root.body)
        static_urls = {
            child.url
            for child in root.children
            if child.spec.discovery is Discovery.STATIC_MARKUP
        }
        assert set(analysis.urls) == static_urls

    def test_misses_script_computed_urls(self, snapshot):
        root = snapshot.root
        analysis = analyze_html(root.url, root.body)
        computed = {
            child.url
            for child in root.children
            if child.spec.discovery is Discovery.SCRIPT_COMPUTED
        }
        assert not (set(analysis.urls) & computed)

    def test_urls_in_document_order(self, snapshot):
        root = snapshot.root
        analysis = analyze_html(root.url, root.body)
        positions = [root.body.index(url) for url in analysis.urls]
        assert positions == sorted(positions)

    def test_deduplicates(self):
        body = '<img src="a.com/x.jpg"><img src="a.com/x.jpg">'
        analysis = analyze_html("a.com/p.html", body)
        assert analysis.urls == ["a.com/x.jpg"]

    def test_overhead_reported(self, snapshot):
        analysis = analyze_html(snapshot.root.url, snapshot.root.body)
        assert analysis.parse_overhead == VROOM_ONLINE_PARSE_OVERHEAD

    def test_empty_body(self):
        analysis = analyze_html("a.com/p.html", "")
        assert len(analysis) == 0

    def test_works_on_iframe_documents(self, snapshot):
        frames = [doc for doc in snapshot.documents() if doc.parent]
        for frame in frames:
            analysis = analyze_html(frame.url, frame.body)
            static = {
                child.url
                for child in frame.children
                if child.spec.discovery is Discovery.STATIC_MARKUP
            }
            assert set(analysis.urls) == static

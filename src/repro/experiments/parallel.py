"""Parallel sweep engine: fan (page, config, stamp) jobs over processes.

Every paper figure is a sweep of (page × config) simulations.  The engine
here decomposes a sweep into an indexed job list, runs the jobs on a
``ProcessPoolExecutor`` (or inline when ``workers <= 1``), and collects
results *by job index*, so the assembled :class:`ExperimentRun` is
bit-identical to what the serial loop produces no matter how jobs
interleave across workers.

Determinism contract
--------------------
* Job ``i * len(configs) + j`` is page ``i`` under config ``j`` — the same
  nesting order as the serial loop.
* Workers receive prebuilt ``(page, snapshot, store)`` bundles (pickled
  once per worker at pool start-up), not builders: ``materialize`` and
  ``record_snapshot`` are pure, so a pickled copy is value-identical to
  the parent's and each simulation is a pure function of its bundle.
* Metric extraction and ``per_page_hook`` calls happen in the parent, in
  job-index order, because metrics/hooks are often closures that cannot
  (and should not) cross a process boundary.

The snapshot/store bundles come from a content-addressed
:class:`~repro.replay.cache.SnapshotCache`, so repeated sweeps in one
session — every figure bench, every config — share one snapshot per
(page, stamp) instead of re-materialising it.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.baselines.configs import run_config
from repro.browser.metrics import LoadMetrics
from repro.calibration import DEFAULT_EVAL_HOUR
from repro.pages.dynamics import LoadStamp
from repro.pages.page import PageBlueprint, PageSnapshot
from repro.replay.cache import SnapshotCache, materialize_cached
from repro.replay.store import ReplayStore

#: Work bundle one job needs: the page plus its prebuilt snapshot/store.
WorkItem = Tuple[PageBlueprint, PageSnapshot, ReplayStore]

#: Session default used when ``sweep_configs`` is called without an
#: explicit worker count; set from the CLI's ``--workers`` flag.
_DEFAULT_WORKERS = 1


def set_default_workers(workers: Optional[int]) -> None:
    """Set the session-wide default worker count (None/0 → cpu_count)."""
    global _DEFAULT_WORKERS
    _DEFAULT_WORKERS = resolve_workers(workers)


def get_default_workers() -> int:
    return _DEFAULT_WORKERS


def resolve_workers(
    workers: Optional[int], jobs: Optional[int] = None
) -> int:
    """Normalise a worker request.

    None or 0 auto-sizes to one worker per CPU, never more than there
    are ``jobs`` (pool start-up is pure overhead past that point — on a
    1-CPU box a 4-worker pool *lost* to the serial loop).  An explicit
    positive count is honoured, clamped only by ``jobs``.
    """
    if workers is None or workers <= 0:
        workers = os.cpu_count() or 1
    if jobs is not None:
        workers = min(workers, max(1, jobs))
    return workers


@dataclass(frozen=True)
class SweepJob:
    """One (page, config) cell of a sweep, with its deterministic index."""

    index: int
    page_index: int
    config: str


@dataclass
class SweepPerf:
    """Machine-readable performance record of one sweep."""

    jobs: int
    workers: int
    elapsed: float
    cache_hits: int
    cache_misses: int
    #: "inline" when the grid ran in-process (effective workers == 1 or
    #: a single job — e.g. any 1-CPU host), "pool" when it fanned out
    #: over a ``ProcessPoolExecutor``.  Recorded so perf reports can't
    #: silently compare a pool-overhead run against a serial one.
    mode: str = "inline"

    @property
    def jobs_per_sec(self) -> float:
        return self.jobs / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "jobs": self.jobs,
            "workers": self.workers,
            "mode": self.mode,
            "elapsed_sec": self.elapsed,
            "jobs_per_sec": self.jobs_per_sec,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
        }


def grid_mode(workers: int, jobs: int) -> str:
    """How :func:`run_metrics_grid` will execute: "inline" or "pool"."""
    return "inline" if workers <= 1 or jobs <= 1 else "pool"


def sweep_jobs(
    page_count: int, configs: Sequence[str]
) -> List[SweepJob]:
    """The dense job list for a sweep, in serial-loop order."""
    jobs: List[SweepJob] = []
    for page_index in range(page_count):
        for config in configs:
            jobs.append(SweepJob(len(jobs), page_index, config))
    return jobs


# -- worker side -------------------------------------------------------------

#: Per-process work table, installed by the pool initializer so each job
#: submission only ships a few integers instead of the snapshot tree.
_WORKER_WORK: List[WorkItem] = []

#: Extra keyword arguments forwarded to every ``run_config`` call (e.g. a
#: fault plan and resilience policy for the resilience study).
_WORKER_KWARGS: dict = {}


def _init_worker(
    work: List[WorkItem], config_kwargs: Optional[dict] = None
) -> None:
    global _WORKER_WORK, _WORKER_KWARGS
    _WORKER_WORK = work
    _WORKER_KWARGS = dict(config_kwargs) if config_kwargs else {}


def _run_job(job: SweepJob) -> Tuple[int, LoadMetrics]:
    page, snapshot, store = _WORKER_WORK[job.page_index]
    return job.index, run_config(
        job.config, page, snapshot, store, **_WORKER_KWARGS
    )


# -- parent side -------------------------------------------------------------

def run_metrics_grid(
    work: List[WorkItem],
    configs: Sequence[str],
    workers: int,
    config_kwargs: Optional[dict] = None,
) -> List[LoadMetrics]:
    """Run every (page, config) job; results in job-index order."""
    jobs = sweep_jobs(len(work), configs)
    results: List[Optional[LoadMetrics]] = [None] * len(jobs)
    if grid_mode(workers, len(jobs)) == "inline":
        _init_worker(work, config_kwargs)
        try:
            for job in jobs:
                index, metrics = _run_job(job)
                results[index] = metrics
        finally:
            # Release the work table: leaving it populated would pin every
            # snapshot tree in this process for its remaining lifetime.
            _init_worker([], None)
    else:
        chunksize = max(1, len(jobs) // (workers * 4))
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(work, config_kwargs),
        ) as pool:
            for index, metrics in pool.map(
                _run_job, jobs, chunksize=chunksize
            ):
                results[index] = metrics
    return results  # type: ignore[return-value]


def run_sweep(
    pages: Iterable[PageBlueprint],
    configs: Iterable[str],
    metric: Callable[[LoadMetrics], float] = lambda metrics: metrics.plt,
    metric_name: str = "plt",
    stamp: Optional[LoadStamp] = None,
    per_page_hook: Optional[
        Callable[[PageBlueprint, str, LoadMetrics], None]
    ] = None,
    workers: Optional[int] = None,
    cache: Optional[SnapshotCache] = None,
    config_kwargs: Optional[dict] = None,
) -> Tuple["ExperimentRun", SweepPerf]:
    """Sweep every page under every config; return the run plus its perf.

    ``workers=None`` auto-sizes to ``min(cpu_count, jobs)`` (so a 1-CPU
    box runs inline instead of paying pool overhead); ``workers=1`` runs
    inline.  ``SweepPerf.workers`` records the effective count.
    ``cache=None`` uses the session-wide snapshot cache (pass a private
    :class:`SnapshotCache` to isolate, e.g. in tests).
    ``config_kwargs`` (picklable) is forwarded to every ``run_config``
    call — e.g. ``{"fault_plan": ..., "resilience": ...}``.
    """
    from repro.experiments.harness import ExperimentRun

    pages = list(pages)
    configs = list(configs)
    stamp = stamp or LoadStamp(when_hours=DEFAULT_EVAL_HOUR)
    workers = resolve_workers(workers, jobs=len(pages) * len(configs))

    from repro.replay.cache import DEFAULT_CACHE

    started = time.perf_counter()
    active_cache = cache if cache is not None else DEFAULT_CACHE
    hits_before = active_cache.stats.hits
    misses_before = active_cache.stats.misses

    work: List[WorkItem] = []
    for page in pages:
        snapshot, store = materialize_cached(page, stamp, active_cache)
        work.append((page, snapshot, store))

    results = run_metrics_grid(work, configs, workers, config_kwargs)

    run = ExperimentRun(metric=metric_name)
    cursor = 0
    for page in pages:
        for config in configs:
            metrics = results[cursor]
            cursor += 1
            run.add(config, metric(metrics))
            if per_page_hook is not None:
                per_page_hook(page, config, metrics)
    perf = SweepPerf(
        jobs=len(results),
        workers=workers,
        elapsed=time.perf_counter() - started,
        cache_hits=active_cache.stats.hits - hits_before,
        cache_misses=active_cache.stats.misses - misses_before,
        mode=grid_mode(workers, len(results)),
    )
    return run, perf

"""Tests for persistence-over-time analysis (Fig 7)."""

from repro.analysis.persistence import (
    HORIZONS_HOURS,
    persistence_distributions,
    persistence_fraction,
)


class TestPersistenceFraction:
    def test_bounds(self, corpus, stamp):
        for page in corpus[:3]:
            for hours in (1.0, 24.0, 24.0 * 7):
                fraction = persistence_fraction(page, stamp, hours)
                assert 0.0 <= fraction <= 1.0

    def test_monotone_in_horizon_on_average(self, corpus, stamp):
        short = sum(
            persistence_fraction(p, stamp, 1.0) for p in corpus
        )
        long = sum(
            persistence_fraction(p, stamp, 24.0 * 7) for p in corpus
        )
        assert short >= long

    def test_zero_horizon_keeps_stable_resources(self, page, stamp):
        """Back-to-back persistence only loses nonce URLs."""
        fraction = persistence_fraction(page, stamp, 0.0)
        assert fraction > 0.5


class TestDistributions:
    def test_all_horizons_present(self, corpus, stamp):
        dists = persistence_distributions(corpus[:3], stamp)
        assert set(dists) == set(HORIZONS_HOURS)
        for values in dists.values():
            assert len(values) == 3

"""Fig 2: potential for reducing PLT by fully using CPU or network.

Paper: with exactly one resource as the bottleneck, median PLT drops from
10.5 s to ~5 s; the CPU is typically the binding constraint.
"""

from benchmarks.conftest import run_once
from repro.analysis.stats import median
from repro.experiments import figures
from repro.experiments.report import print_figure


def test_fig02_lower_bounds(benchmark, corpus_size):
    series = run_once(benchmark, figures.fig2_lower_bounds, count=corpus_size)
    print_figure(
        "Fig 2: lower bounds vs loads from the web (News+Sports)",
        series,
        paper_values={
            "network_bound": 2.7,
            "cpu_bound": 5.0,
            "max_cpu_network": 5.0,
            "loads_from_web": 10.5,
        },
    )
    assert median(series["max_cpu_network"]) < median(
        series["loads_from_web"]
    )
    # The CPU, not the network, is the typical bottleneck.
    assert median(series["cpu_bound"]) > median(series["network_bound"])

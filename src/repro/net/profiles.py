"""Network profiles beyond the paper's LTE baseline.

Sec 4.3 notes that Vroom's scheduler is tailored to a state-of-the-art
phone on LTE, where the CPU is the bottleneck, and that "alternate
scheduling strategies will likely be necessary in settings where either
network bandwidth ... or latency ... is the bottleneck".  These profiles
let the benchmarks probe exactly those regimes: a loaded cell (bandwidth
bound), 3G and 2G/EDGE (latency bound), fast Wi-Fi and 5G (CPU bound),
geostationary satellite (RTT bound), and a lossy cell whose random drops
keep resetting slow start.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.net.http import HttpVersion, NetworkConfig
from repro.net.link import StreamScheduling


@dataclass(frozen=True)
class NetworkProfile:
    """Named last-mile characteristics."""

    name: str
    downlink_bps: float
    uplink_bps: float
    rtt: float
    #: Per-segment random-loss probability (bursty cells, 0 = clean).
    loss_rate: float = 0.0

    def config(
        self,
        version: HttpVersion = HttpVersion.HTTP2,
        h2_scheduling: StreamScheduling = StreamScheduling.FAIR,
    ) -> NetworkConfig:
        return NetworkConfig(
            version=version,
            downlink_bps=self.downlink_bps,
            uplink_bps=self.uplink_bps,
            base_rtt=self.rtt,
            h2_scheduling=h2_scheduling,
            loss_rate=self.loss_rate,
        )


PROFILES: Dict[str, NetworkProfile] = {
    # The paper's setting: Verizon LTE, excellent signal.
    "lte": NetworkProfile("lte", 10.0e6, 4.0e6, 0.070),
    # Many users sharing the cell: bandwidth becomes the bottleneck.
    "loaded-lte": NetworkProfile("loaded-lte", 2.0e6, 0.8e6, 0.090),
    # HSPA-era 3G: latency dominates.
    "3g": NetworkProfile("3g", 3.0e6, 1.0e6, 0.250),
    # EDGE: both starved.
    "2g": NetworkProfile("2g", 0.24e6, 0.12e6, 0.600),
    # Home Wi-Fi: the CPU is overwhelmingly the limit.
    "wifi": NetworkProfile("wifi", 50.0e6, 20.0e6, 0.020),
    # mmWave/sub-6 5G, good signal: even more so than Wi-Fi.
    "5g": NetworkProfile("5g", 200.0e6, 50.0e6, 0.015),
    # Geostationary satellite: plenty of bandwidth, brutal RTT.
    "satellite": NetworkProfile("satellite", 20.0e6, 3.0e6, 0.600),
    # LTE with bursty random loss: slow start keeps collapsing.
    "bursty-loss": NetworkProfile(
        "bursty-loss", 10.0e6, 4.0e6, 0.070, loss_rate=0.02
    ),
}


def profile(name: str) -> NetworkProfile:
    try:
        return PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown network profile {name!r}; "
            f"choose from {sorted(PROFILES)}"
        ) from None

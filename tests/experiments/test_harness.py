"""Tests for the experiment harness."""

from repro.experiments.harness import ExperimentRun, load_once, sweep_configs
from repro.experiments.report import describe_series, median_table, print_figure


class TestExperimentRun:
    def test_add_and_series(self):
        run = ExperimentRun(metric="plt")
        run.add("http2", 1.0)
        run.add("http2", 2.0)
        run.add("vroom", 0.5)
        assert run.series("http2") == [1.0, 2.0]
        assert run.series("vroom") == [0.5]


class TestLoadOnce:
    def test_returns_metrics(self, page):
        metrics = load_once(page, "http2")
        assert metrics.plt > 0


class TestSweep:
    def test_sweep_collects_all(self, corpus):
        run = sweep_configs(corpus[:2], ["http2", "vroom"])
        assert len(run.series("http2")) == 2
        assert len(run.series("vroom")) == 2

    def test_custom_metric(self, corpus):
        run = sweep_configs(
            corpus[:2],
            ["http2"],
            metric=lambda metrics: metrics.aft,
            metric_name="aft",
        )
        assert run.metric == "aft"
        assert all(value > 0 for value in run.series("http2"))

    def test_per_page_hook(self, corpus):
        seen = []
        sweep_configs(
            corpus[:2],
            ["http2"],
            per_page_hook=lambda page, config, metrics: seen.append(
                (page.name, config)
            ),
        )
        assert len(seen) == 2


class TestReport:
    def test_describe_series(self):
        row = describe_series("demo", [1.0, 2.0, 3.0], paper=2.5)
        assert "demo" in row
        assert "median" in row
        assert "paper~" in row

    def test_print_figure(self, capsys):
        block = print_figure("Fig X", {"a": [1.0, 2.0], "empty": []})
        out = capsys.readouterr().out
        assert "Fig X" in out
        assert "(empty)" in block

    def test_median_table(self):
        table = median_table({"a": [1.0, 3.0], "b": []})
        assert table == {"a": 2.0}

"""Sharded dependency store: the production half of Sec 4.1.2.

A fleet-scale Vroom deployment cannot recompute stable sets per request;
it serves them out of a store.  The store here is deliberately shaped
like the real thing:

* **Consistent-hash sharding** over the page URL (sha1-based ring with
  virtual nodes), so adding shards moves only ``1/n`` of the keyspace
  and every process routes identically regardless of
  ``PYTHONHASHSEED``.
* **Entries** keyed ``(page, device class)`` — the offline resolver's
  own granularity — carrying the serialised stable set, its
  computation time, and a byte-size estimate.
* **TTL + freshness horizon.**  An entry younger than the freshness
  horizon is a *hit*; older but within TTL is a *stale hit* (still
  served — stale hints beat no hints, the accuracy bridge quantifies
  by how much); past TTL it is *expired* and treated as a miss.
* **Per-shard memory budget** with deterministic LRU eviction, and
  per-shard counters plus a fixed-bucket latency histogram so p50/p99
  are bit-identical across runs.

Everything here is a pure function of its inputs; the wall clock never
appears (time is the service simulation's virtual ``now_hours``).
"""

from __future__ import annotations

import enum
import hashlib
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


def stable_hash(text: str) -> int:
    """64-bit sha1-based hash, independent of ``PYTHONHASHSEED``."""
    return int.from_bytes(hashlib.sha1(text.encode()).digest()[:8], "big")


class LookupStatus(enum.Enum):
    """Outcome of one store lookup."""

    HIT = "hit"                # entry present and fresh
    STALE_HIT = "stale_hit"    # entry present, past freshness, within TTL
    EXPIRED = "expired"        # entry present but past TTL: dropped, a miss
    MISS = "miss"              # no entry at all


@dataclass
class StoreEntry:
    """One per-(page, device-class) hint record."""

    page: str
    device_class: str
    #: Serialised stable set (``core.offline.stable_set_to_dict``) — the
    #: bytes a production store would actually hold.
    payload: dict
    #: Simulated hour the offline resolution that produced it ran.
    computed_at_hours: float
    size_bytes: int
    hits: int = 0

    @property
    def key(self) -> Tuple[str, str]:
        return (self.page, self.device_class)

    def age_hours(self, now_hours: float) -> float:
        return now_hours - self.computed_at_hours


@dataclass
class ShardCounters:
    """Traffic and occupancy counters for one shard."""

    lookups: int = 0
    hits: int = 0
    stale_hits: int = 0
    misses: int = 0
    expired: int = 0
    inserts: int = 0
    evictions: int = 0
    rejected: int = 0
    resident_bytes: int = 0

    def as_dict(self) -> dict:
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "stale_hits": self.stale_hits,
            "misses": self.misses,
            "expired": self.expired,
            "inserts": self.inserts,
            "evictions": self.evictions,
            "rejected": self.rejected,
            "resident_bytes": self.resident_bytes,
        }


class LatencyHistogram:
    """Fixed-bucket latency histogram with deterministic percentiles.

    Recording into buckets (rather than keeping raw samples) keeps a
    multi-million-lookup run O(1) per sample, and percentile extraction
    — the bucket's upper edge — is bit-identical across runs by
    construction.
    """

    def __init__(self, bucket_ms: float = 0.01, buckets: int = 5000):
        self.bucket_ms = bucket_ms
        self._counts = [0] * (buckets + 1)  # last bucket = overflow
        self.samples = 0
        self.total_ms = 0.0

    def record(self, latency_ms: float) -> None:
        index = int(latency_ms / self.bucket_ms)
        if index < 0:
            # A negative sample would otherwise wrap to the tail buckets
            # (Python's negative indexing) and silently inflate p99.
            index = 0
        elif index >= len(self._counts):
            index = len(self._counts) - 1
        self._counts[index] += 1
        self.samples += 1
        self.total_ms += latency_ms

    def percentile(self, fraction: float) -> float:
        """Upper edge of the bucket holding the ``fraction`` quantile."""
        if self.samples == 0:
            return 0.0
        target = fraction * self.samples
        seen = 0
        for index, count in enumerate(self._counts):
            seen += count
            if seen >= target:
                return (index + 1) * self.bucket_ms
        return len(self._counts) * self.bucket_ms

    @property
    def mean(self) -> float:
        return self.total_ms / self.samples if self.samples else 0.0

    @property
    def overflow(self) -> int:
        """Samples truncated into the top (catch-all) bucket."""
        return self._counts[-1]

    @classmethod
    def merged(cls, histograms: List["LatencyHistogram"]) -> "LatencyHistogram":
        """Combine same-geometry histograms (e.g. per-shard → global)."""
        if not histograms:
            return cls()
        first = histograms[0]
        out = cls(bucket_ms=first.bucket_ms, buckets=len(first._counts) - 1)
        for histogram in histograms:
            if len(histogram._counts) != len(out._counts):
                raise ValueError("histogram geometries differ")
            for index, count in enumerate(histogram._counts):
                out._counts[index] += count
            out.samples += histogram.samples
            out.total_ms += histogram.total_ms
        return out

    def summary(self) -> dict:
        return {
            "samples": self.samples,
            "mean_ms": round(self.mean, 6),
            "p50_ms": round(self.percentile(0.50), 6),
            "p90_ms": round(self.percentile(0.90), 6),
            "p99_ms": round(self.percentile(0.99), 6),
            "p999_ms": round(self.percentile(0.999), 6),
            # Tail truncation must be visible: a non-zero overflow means
            # the top percentiles are clipped at the last bucket edge.
            "overflow": self.overflow,
        }


class Shard:
    """One LRU shard: an ordered map under a byte budget."""

    def __init__(self, index: int, memory_budget_bytes: int):
        if memory_budget_bytes <= 0:
            raise ValueError("shard memory budget must be positive")
        self.index = index
        self.memory_budget_bytes = memory_budget_bytes
        #: key -> entry; insertion/access order is the LRU order.
        self._entries: Dict[Tuple[str, str], StoreEntry] = {}
        self.counters = ShardCounters()
        self.latency = LatencyHistogram()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Tuple[str, str]) -> Optional[StoreEntry]:
        return self._entries.get(key)

    # repro: hotpath
    def lookup(
        self,
        key: Tuple[str, str],
        now_hours: float,
        *,
        ttl_hours: float,
        freshness_hours: float,
    ) -> Tuple[Optional[StoreEntry], LookupStatus]:
        self.counters.lookups += 1
        entry = self._entries.get(key)
        if entry is None:
            self.counters.misses += 1
            return None, LookupStatus.MISS
        age = entry.age_hours(now_hours)
        if age > ttl_hours:
            # Past TTL: the store must not serve it (arbitrarily old
            # hints would poison loads); drop it and report a miss-like
            # status so the caller re-enqueues resolution.
            del self._entries[key]
            self.counters.resident_bytes -= entry.size_bytes
            self.counters.expired += 1
            return None, LookupStatus.EXPIRED
        # Promote to most-recently-used.
        del self._entries[key]
        self._entries[key] = entry
        entry.hits += 1
        if age > freshness_hours:
            self.counters.stale_hits += 1
            return entry, LookupStatus.STALE_HIT
        self.counters.hits += 1
        return entry, LookupStatus.HIT

    def insert(self, entry: StoreEntry) -> bool:
        """Install ``entry``, evicting LRU entries to fit the budget.

        Returns False (and counts a rejection) for an entry that could
        never fit — evicting the whole shard for one oversized record
        would be pathological.
        """
        if entry.size_bytes > self.memory_budget_bytes:
            self.counters.rejected += 1
            return False
        old = self._entries.pop(entry.key, None)
        if old is not None:
            self.counters.resident_bytes -= old.size_bytes
        while (
            self.counters.resident_bytes + entry.size_bytes
            > self.memory_budget_bytes
        ):
            lru_key = next(iter(self._entries))
            victim = self._entries.pop(lru_key)
            self.counters.resident_bytes -= victim.size_bytes
            self.counters.evictions += 1
        self._entries[entry.key] = entry
        self.counters.resident_bytes += entry.size_bytes
        self.counters.inserts += 1
        return True

    def entries(self) -> List[StoreEntry]:
        """Entries in LRU order (least recent first)."""
        return list(self._entries.values())

    def discard(self, key: Tuple[str, str]) -> Optional[StoreEntry]:
        """Silently remove an entry (migration bookkeeping, not a miss)."""
        entry = self._entries.pop(key, None)
        if entry is not None:
            self.counters.resident_bytes -= entry.size_bytes
        return entry

    def wipe(self) -> int:
        """Drop every entry (the shard process died); returns the count.

        Counters and the latency histogram survive — they are the
        *report's* memory, not the process's.
        """
        lost = len(self._entries)
        self._entries.clear()
        self.counters.resident_bytes = 0
        return lost


class HashRing:
    """Consistent-hash ring over shard indices with virtual nodes."""

    def __init__(self, shard_count: int, vnodes: int = 64):
        if shard_count < 1:
            raise ValueError("need at least one shard")
        if vnodes < 1:
            raise ValueError("need at least one virtual node per shard")
        points: List[Tuple[int, int]] = []
        for shard in range(shard_count):
            for vnode in range(vnodes):
                points.append((stable_hash(f"shard{shard}#v{vnode}"), shard))
        points.sort()
        self._hashes = [point for point, _ in points]
        self._shards = [shard for _, shard in points]

    def shard_for(self, key: str) -> int:
        """First ring point clockwise of ``key``'s hash."""
        position = bisect_right(self._hashes, stable_hash(key))
        if position == len(self._hashes):
            position = 0
        return self._shards[position]


@dataclass
class StoreConfig:
    """Knobs of the sharded store (see docs/API.md for the table)."""

    shard_count: int = 8
    vnodes: int = 64
    #: Per-shard resident-set budget; LRU eviction keeps it honest.
    shard_memory_bytes: int = 256 * 1024
    #: Entries older than this are dropped at lookup (treated as a miss).
    ttl_hours: float = 12.0
    #: Entries older than this (but within TTL) count as stale hits and
    #: trigger a refresh enqueue.
    freshness_hours: float = 2.0
    #: Copies of every entry (1 = no replication).  Writes fan out to
    #: the first ``replication`` distinct live shards on the ring; reads
    #: fail over along the same preference list.
    replication: int = 1
    #: Hot-key mitigation: a tiny per-frontend entry cache absorbing
    #: Zipf-head traffic before it reaches the shards (0 disables).
    frontend_cache_entries: int = 0
    #: How long a frontend-cached entry may be served without re-reading
    #: its shard (bounds added staleness from the cache).
    frontend_cache_ttl_hours: float = 0.05


class DependencyStore:
    """The fleet-wide hint store: a hash ring over LRU shards."""

    def __init__(self, config: Optional[StoreConfig] = None):
        self.config = config or StoreConfig()
        self.ring = HashRing(self.config.shard_count, self.config.vnodes)
        self.shards = [
            Shard(index, self.config.shard_memory_bytes)
            for index in range(self.config.shard_count)
        ]

    def shard_for_page(self, page_url: str) -> Shard:
        return self.shards[self.ring.shard_for(page_url)]

    # repro: hotpath
    def lookup(
        self, page_url: str, page: str, device_class: str, now_hours: float
    ) -> Tuple[Optional[StoreEntry], LookupStatus, Shard]:
        shard = self.shard_for_page(page_url)
        entry, status = shard.lookup(
            (page, device_class),
            now_hours,
            ttl_hours=self.config.ttl_hours,
            freshness_hours=self.config.freshness_hours,
        )
        return entry, status, shard

    def insert(self, page_url: str, entry: StoreEntry) -> bool:
        return self.shard_for_page(page_url).insert(entry)

    def totals(self) -> dict:
        """Counters summed across shards."""
        out = ShardCounters()
        for shard in self.shards:
            counters = shard.counters
            out.lookups += counters.lookups
            out.hits += counters.hits
            out.stale_hits += counters.stale_hits
            out.misses += counters.misses
            out.expired += counters.expired
            out.inserts += counters.inserts
            out.evictions += counters.evictions
            out.rejected += counters.rejected
            out.resident_bytes += counters.resident_bytes
        return out.as_dict()


def payload_size_bytes(payload: dict) -> int:
    """Byte-size estimate of a stored stable-set payload.

    Counts what a production row would hold: the URL list plus a fixed
    per-exemplar record (name/size/type/order) and row overhead.
    """
    urls = payload.get("urls", [])
    size = 64  # row header: key, timestamps, bookkeeping
    for url in urls:
        # Encoded bytes, not characters: a non-ASCII fleet must not
        # under-charge the shard budget.
        size += len(url.encode("utf-8")) + 2
    size += 48 * len(payload.get("exemplars", {}))
    return size

"""Tests for the streaming long-horizon runner."""

import math

import pytest

from repro.longrun import LongRunner, RunningStats, run_scenario
from repro.scenario import ScenarioSpec

SMALL = dict(
    pages=4,
    horizon_hours=1.5,
    rate_per_hour=300.0,
    shards=3,
    replication=2,
    rollup_hours=0.5,
    digest_filter_bits=8,
    shard_cycle_every_hours=0.5,
    shard_cycle_down_hours=0.2,
    shard_cycle_start_hours=0.25,
)


class TestRunningStats:
    def test_welford_matches_closed_form(self):
        stats = RunningStats()
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0]
        for value in values:
            stats.add(value)
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        out = stats.as_dict()
        assert out["count"] == len(values)
        assert out["mean"] == pytest.approx(mean)
        assert out["std"] == pytest.approx(math.sqrt(var))
        assert out["min"] == 1.0
        assert out["max"] == 9.0


class TestDeterminism:
    def test_repeat_runs_bit_identical(self):
        spec = ScenarioSpec(**SMALL)
        first = run_scenario(spec)
        second = run_scenario(spec)
        assert first["fingerprint"] == second["fingerprint"]
        assert first["chain"] == second["chain"]

    def test_seed_changes_stream(self):
        base = run_scenario(ScenarioSpec(**SMALL))
        reseeded = run_scenario(
            ScenarioSpec(**{**SMALL, "workload_seed": 7})
        )
        assert base["chain"] != reseeded["chain"]


class TestRollups:
    def test_window_count_covers_horizon(self):
        report = run_scenario(ScenarioSpec(**SMALL))
        expected = math.ceil(
            SMALL["horizon_hours"] / SMALL["rollup_hours"]
        )
        assert len(report["rollups"]) == expected

    def test_partial_final_window(self):
        spec = ScenarioSpec(
            **{**SMALL, "horizon_hours": 1.25, "rollup_hours": 0.5}
        )
        report = run_scenario(spec)
        rows = report["rollups"]
        assert len(rows) == 3
        assert rows[-1]["end_hours"] == pytest.approx(1.25)

    def test_rows_account_for_every_lookup(self):
        report = run_scenario(ScenarioSpec(**SMALL))
        windowed = sum(row["lookups"] for row in report["rollups"])
        assert windowed == report["totals"]["lookups"]
        assert (
            report["overall_latency"]["count"]
            == report["totals"]["lookups"]
        )

    def test_outage_windows_marked(self):
        # Outages [0.25, 0.55] and [0.75, 1.05] straddle the window
        # closes at 0.5 and 1.0, so those rows must name the victim.
        spec = ScenarioSpec(**{**SMALL, "shard_cycle_down_hours": 0.3})
        report = run_scenario(spec)
        assert any(row["down_shards"] for row in report["rollups"])
        assert report["totals"]["shard_wipes"] >= 1


class TestConstantMemory:
    def test_no_per_lookup_state_survives(self):
        runner = LongRunner(ScenarioSpec(**SMALL))
        runner.run_to(SMALL["horizon_hours"])
        # The bridge is forced off: no per-lookup samples anywhere.
        assert runner.service._samples == []
        # Resolver snapshot caches are trimmed at every batch tick.
        cached = sum(
            len(resolver._cache)
            for resolver in runner.service._resolvers.values()
        )
        assert cached == 0
        # Repeat-visit digests are bounded by user_pool x pages.
        assert len(runner._digests) <= SMALL["pages"] * 32


class TestLifecycle:
    def test_report_requires_finish(self):
        runner = LongRunner(ScenarioSpec(**SMALL))
        runner.run_to(0.5)
        with pytest.raises(RuntimeError, match="horizon"):
            runner.report()

    def test_clock_cannot_go_backwards(self):
        runner = LongRunner(ScenarioSpec(**SMALL))
        runner.run_to(1.0)
        with pytest.raises(ValueError):
            runner.run_to(0.5)

    def test_incremental_equals_straight(self):
        spec = ScenarioSpec(**SMALL)
        straight = run_scenario(spec)
        stepped = LongRunner(spec)
        for stop in (0.3, 0.65, 1.1, spec.horizon_hours):
            stepped.run_to(stop)
        assert stepped.report()["fingerprint"] == straight["fingerprint"]

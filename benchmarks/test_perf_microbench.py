"""Simulator performance micro-benchmarks.

Unlike the figure benches (which run an experiment once and assert its
shape), these measure the simulator itself over multiple rounds: event
throughput of the DES core, and wall time of a single cold page load
under the baseline and under Vroom.  They guard against performance
regressions that would make the figure benches crawl.

The sweep-engine benches at the bottom additionally write a
machine-readable perf report to ``BENCH_sweep.json`` at the repo root
(jobs/sec serial and parallel, measured speedup, snapshot-cache hit
rate), so the trajectory is visible across PRs.
"""

import json
import os
import time
from pathlib import Path

from repro.baselines.configs import run_config
from repro.calibration import DEFAULT_EVAL_HOUR
from repro.experiments.parallel import run_sweep
from repro.net.simulator import Simulator
from repro.pages.corpus import news_sports_corpus
from repro.pages.dynamics import LoadStamp
from repro.replay.cache import SnapshotCache
from repro.replay.recorder import record_snapshot

BENCH_REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"


def test_perf_simulator_event_throughput(benchmark):
    def run_10k_events():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.001, tick)
        sim.run()
        return count[0]

    events = benchmark(run_10k_events)
    assert events == 10_000


def _page_fixture():
    page = news_sports_corpus(count=1)[0]
    snapshot = page.materialize(LoadStamp(when_hours=DEFAULT_EVAL_HOUR))
    store = record_snapshot(snapshot)
    return page, snapshot, store


def test_perf_http2_page_load(benchmark):
    page, snapshot, store = _page_fixture()
    metrics = benchmark(
        lambda: run_config("http2", page, snapshot, store)
    )
    assert metrics.plt > 0


def test_perf_vroom_page_load(benchmark):
    page, snapshot, store = _page_fixture()
    metrics = benchmark(
        lambda: run_config("vroom", page, snapshot, store)
    )
    assert metrics.plt > 0


def test_perf_corpus_generation(benchmark):
    pages = benchmark(lambda: news_sports_corpus(count=10, seed=909))
    assert len(pages) == 10


# ---------------------------------------------------------------------------
# Sweep engine: snapshot cache and parallel fan-out
# ---------------------------------------------------------------------------

SWEEP_PAGES = 10
SWEEP_CONFIGS = ["http2", "vroom", "push-all-fetch-asap"]


def test_perf_snapshot_cache_cold_vs_hot(benchmark):
    """A cache hit must be orders of magnitude cheaper than recording."""
    pages = news_sports_corpus(count=SWEEP_PAGES, seed=909)
    stamp = LoadStamp(when_hours=DEFAULT_EVAL_HOUR)
    cache = SnapshotCache()

    t0 = time.perf_counter()
    for page in pages:
        cache.materialized(page, stamp)
    cold = time.perf_counter() - t0

    def hot_pass():
        for page in pages:
            cache.materialized(page, stamp)

    benchmark(hot_pass)
    t0 = time.perf_counter()
    hot_pass()
    hot = time.perf_counter() - t0

    assert cache.stats.misses == SWEEP_PAGES
    assert cache.stats.hits >= SWEEP_PAGES
    assert hot < cold, "cache hit should be cheaper than a cold recording"
    _merge_report(
        {
            "snapshot_cache": {
                "pages": SWEEP_PAGES,
                "cold_record_sec": cold,
                "hot_lookup_sec": hot,
                "hit_speedup": cold / hot if hot > 0 else float("inf"),
            }
        }
    )


def test_perf_parallel_sweep_vs_serial(benchmark):
    """10 pages x 3 configs: auto-sized parallel engine vs the serial path.

    Asserts bit-identical metrics between the two, records jobs/sec and
    the measured speedup in BENCH_sweep.json.  Workers auto-size to
    ``min(cpu_count, jobs)``: on a 1-CPU box that degenerates to the
    serial path (where a forced 4-worker pool used to *lose* to serial),
    so the >= 2.5x wall-clock assertion only applies when the effective
    pool has 4+ workers — smaller machines still record the trajectory.
    """
    pages = news_sports_corpus(count=SWEEP_PAGES, seed=909)

    serial_t0 = time.perf_counter()
    serial_run, serial_perf = run_sweep(
        pages, SWEEP_CONFIGS, workers=1, cache=SnapshotCache()
    )
    serial_elapsed = time.perf_counter() - serial_t0

    parallel_t0 = time.perf_counter()
    parallel_run, parallel_perf = benchmark.pedantic(
        lambda: run_sweep(
            pages,
            SWEEP_CONFIGS,
            workers=None,
            cache=SnapshotCache(),
        ),
        rounds=1,
        iterations=1,
    )
    parallel_elapsed = time.perf_counter() - parallel_t0

    # Determinism: the parallel grid must be bit-identical to serial.
    assert parallel_run.values == serial_run.values

    speedup = (
        serial_elapsed / parallel_elapsed if parallel_elapsed > 0 else 0.0
    )
    cpus = os.cpu_count() or 1
    effective_workers = parallel_perf.workers
    assert effective_workers == min(cpus, serial_perf.jobs)
    if effective_workers >= 4:
        assert speedup >= 2.5, (
            f"parallel sweep only {speedup:.2f}x faster than serial "
            f"with {effective_workers} workers on {cpus} CPUs"
        )
    _merge_report(
        {
            "parallel_sweep": {
                "pages": SWEEP_PAGES,
                "configs": SWEEP_CONFIGS,
                "jobs": serial_perf.jobs,
                "cpu_count": cpus,
                "workers": effective_workers,
                "mode": parallel_perf.mode,
                "serial_elapsed_sec": serial_elapsed,
                "parallel_elapsed_sec": parallel_elapsed,
                "serial_jobs_per_sec": serial_perf.jobs_per_sec,
                "parallel_jobs_per_sec": parallel_perf.jobs_per_sec,
                "speedup_vs_serial": speedup,
                "bit_identical_to_serial": True,
            }
        }
    )


def test_perf_cached_sweep_reuses_snapshots(benchmark):
    """Back-to-back sweeps share snapshots: second sweep hits 100%."""
    pages = news_sports_corpus(count=SWEEP_PAGES, seed=909)
    cache = SnapshotCache()
    run_sweep(pages, ["http2"], workers=1, cache=cache)

    _, warm_perf = benchmark.pedantic(
        lambda: run_sweep(pages, ["vroom"], workers=1, cache=cache),
        rounds=1,
        iterations=1,
    )
    assert warm_perf.cache_hit_rate == 1.0
    _merge_report(
        {
            "cached_sweep": {
                "pages": SWEEP_PAGES,
                "cache_hit_rate": warm_perf.cache_hit_rate,
                "jobs_per_sec": warm_perf.jobs_per_sec,
            }
        }
    )


def _merge_report(section: dict) -> None:
    """Fold one bench's numbers into BENCH_sweep.json (append-friendly)."""
    report = {}
    if BENCH_REPORT_PATH.exists():
        try:
            report = json.loads(BENCH_REPORT_PATH.read_text())
        except (ValueError, OSError):
            report = {}
    report.update(section)
    BENCH_REPORT_PATH.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
